//! Cross-crate integration tests: full scenarios exercising the public
//! API of every workspace crate together. These check *directional*
//! results — who wins, and that invariants hold — with small workloads so
//! the suite stays fast.

use topfull_suite::apps::{OnlineBoutique, TrainTicket};
use topfull_suite::baselines::{Breakwater, BreakwaterConfig, Dagor, DagorConfig};
use topfull_suite::cluster::{
    ApiSpec, CallNode, Engine, EngineConfig, Harness, NoControl, OpenLoopWorkload, ServiceSpec,
    Topology,
};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{TopFull, TopFullConfig};

fn config(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        ..EngineConfig::default()
    }
}

/// The Figure 1 topology: API1 → {A, B}, API2 → {A}; B is the narrow
/// service. Per-service shedding wastes A's capacity on API1 requests
/// that die at B; TopFull must not.
fn fig1_topology() -> (
    Topology,
    topfull_suite::cluster::ApiId,
    topfull_suite::cluster::ApiId,
) {
    let mut t = Topology::new("fig1");
    let a = t.add_service(ServiceSpec::new("A", 4)); // 4 pods × 1 ms = 4000 rps
    let b = t.add_service(ServiceSpec::new("B", 1)); // 1 pod × 1 ms = 1000 rps
    let api1 = t.add_api(ApiSpec::single(
        "api1",
        CallNode::with_children(
            a,
            SimDuration::from_millis(1),
            vec![CallNode::leaf(b, SimDuration::from_millis(1))],
        ),
    ));
    let api2 = t.add_api(ApiSpec::single(
        "api2",
        CallNode::leaf(a, SimDuration::from_millis(1)),
    ));
    (t, api1, api2)
}

#[test]
fn topfull_avoids_fig1_starvation() {
    // Offer 3000 rps each: A wants 6000 (cap 4000), B wants 3000 (cap
    // 1000). Ideal: API1 = 1000 (B-capped), API2 = 3000 (A leftover).
    let (topo, api1, api2) = fig1_topology();
    let w = OpenLoopWorkload::constant(vec![(api1, 3000.0), (api2, 3000.0)]);
    let engine = Engine::new(topo, config(3), Box::new(w));
    let tf = TopFull::new(TopFullConfig::default().with_mimd());
    let mut h = Harness::new(engine, Box::new(tf));
    h.run_for_secs(120);
    let g1 = h.result().mean_goodput_api(api1, 60.0, 120.0);
    let g2 = h.result().mean_goodput_api(api2, 60.0, 120.0);
    assert!(
        g2 > 1.2 * g1,
        "API2 must get the larger share of A once API1 is B-capped: {g1} vs {g2}"
    );
    assert!(
        g1 + g2 > 2200.0,
        "total near the 4000-capped optimum, got {}",
        g1 + g2
    );
}

#[test]
fn topfull_beats_dagor_on_the_starvation_scenario() {
    let run = |dagor: bool| {
        let (topo, api1, api2) = fig1_topology();
        let w = OpenLoopWorkload::constant(vec![(api1, 3000.0), (api2, 3000.0)]);
        let mut engine = Engine::new(topo, config(4), Box::new(w));
        let controller: Box<dyn topfull_suite::cluster::Controller> = if dagor {
            engine.set_admission(Box::new(Dagor::new(2, DagorConfig::default())));
            Box::new(NoControl)
        } else {
            Box::new(TopFull::new(TopFullConfig::default().with_mimd()))
        };
        let mut h = Harness::new(engine, controller);
        h.run_for_secs(120);
        h.result().mean_total_goodput(60.0, 120.0)
    };
    let dagor = run(true);
    let topfull = run(false);
    assert!(
        topfull > dagor,
        "TopFull must outperform DAGOR here: {topfull} vs {dagor}"
    );
}

#[test]
fn no_control_collapses_under_overload_but_breakwater_survives() {
    let run = |breakwater: bool| {
        let ob = OnlineBoutique::build();
        let rates: Vec<(topfull_suite::cluster::ApiId, f64)> =
            ob.apis().iter().map(|a| (*a, 600.0)).collect();
        let w = OpenLoopWorkload::constant(rates);
        let mut engine = Engine::new(ob.topology.clone(), config(5), Box::new(w));
        if breakwater {
            engine.set_admission(Box::new(Breakwater::new(
                engine.topology().num_services(),
                BreakwaterConfig::default(),
            )));
        }
        let mut h = Harness::new(engine, Box::new(NoControl));
        h.run_for_secs(90);
        h.result().mean_total_goodput(45.0, 90.0)
    };
    let none = run(false);
    let bw = run(true);
    assert!(
        bw > 1.2 * none,
        "Breakwater must beat no-control under overload: {bw} vs {none}"
    );
}

#[test]
fn hpa_plus_topfull_survives_boutique_surge() {
    use topfull_suite::cluster::autoscaler::HpaConfig;
    use topfull_suite::cluster::{ClosedLoopWorkload, RateSchedule};
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let users = RateSchedule::surge(
        300.0,
        3000.0,
        SimTime::from_secs(10),
        SimTime::from_secs(80),
    );
    let w = ClosedLoopWorkload::new(weights, users, SimDuration::from_secs(1));
    let mut engine = Engine::new(ob.topology.clone(), config(6), Box::new(w));
    engine.enable_hpa(HpaConfig::default());
    let tf = TopFull::new(TopFullConfig::default().with_mimd());
    let mut h = Harness::new(engine, Box::new(tf));
    h.run_for_secs(90);
    // The MIMD ablation reacts more slowly than the RL policy, so a few
    // crash-loops can slip through the initial spike; it must still be
    // far gentler than no control (which crash-cascades for the whole
    // surge — see fig15) and keep serving.
    assert!(
        h.engine.crash_events <= 10,
        "TopFull should mostly prevent crash-loops, got {}",
        h.engine.crash_events
    );
    let during = h.result().mean_total_goodput(10.0, 80.0);
    assert!(during > 500.0, "surge goodput too low: {during}");
}

#[test]
fn pod_failures_recover_under_topfull() {
    use topfull_suite::cluster::failure::FailureSpec;
    let mut tt = TrainTicket::build();
    // 20 slow pods ≈ near-capacity for this workload, so losing 15 is a
    // real 75% capacity cut (mirrors the Fig. 18 deployment shape).
    tt.topology.service_mut(tt.station).replicas = 20;
    tt.topology.service_mut(tt.station).pod_speed = 0.12;
    let rates: Vec<(topfull_suite::cluster::ApiId, f64)> =
        tt.apis().iter().map(|a| (*a, 300.0)).collect();
    let w = OpenLoopWorkload::constant(rates);
    let mut engine = Engine::new(tt.topology.clone(), config(7), Box::new(w));
    engine.inject_failures(vec![FailureSpec {
        at: SimTime::from_secs(30),
        service: tt.station,
        pods: 15,
    }]);
    let tf = TopFull::new(TopFullConfig::default().with_mimd());
    let mut h = Harness::new(engine, Box::new(tf));
    h.run_for_secs(120);
    // Some goodput survives the failure window (replacement pods need
    // `pod_startup` = 10 s, so 32–38 s is the degraded period)…
    let during = h.result().mean_total_goodput(32.0, 38.0);
    assert!(during > 100.0, "goodput during failures: {during}");
    // …and the 15 replacement pods restore station capacity afterwards.
    let after = h.result().mean_total_goodput(80.0, 120.0);
    assert!(after > during, "recovery expected: {during} → {after}");
    let station_pods = h.engine.ready_pods(tt.station);
    assert_eq!(station_pods, 20, "replacements restore the pod count");
}

#[test]
fn rl_policy_controls_an_online_boutique_overload() {
    // Train a tiny policy from scratch (fast profile, small budget) and
    // verify it actually controls a real overload end to end.
    use topfull_suite::rl::graph_env::GraphEnv;
    use topfull_suite::rl::ppo::PpoConfig;
    use topfull_suite::rl::trainer::{Trainer, TrainerConfig};
    let mut trainer = Trainer::new(TrainerConfig {
        ppo: PpoConfig {
            train_batch_size: 500,
            sgd_iters: 5,
            ..PpoConfig::fast()
        },
        episodes: 400,
        checkpoint_every: 100,
        validation_episodes: 6,
        workers: 4,
        // Seed chosen for a stable training outcome under the offline
        // RNG shim's streams (training at this tiny budget is seed-
        // sensitive; see CHANGES.md).
        seed: 0,
    });
    let report = trainer.train(GraphEnv::new);
    let ob = OnlineBoutique::build();
    let w = OpenLoopWorkload::constant(vec![(ob.getproduct, 1200.0)]);
    let engine = Engine::new(ob.topology.clone(), config(8), Box::new(w));
    let tf = TopFull::new(TopFullConfig::default().with_rl(report.best_model));
    let mut h = Harness::new(engine, Box::new(tf));
    h.run_for_secs(60);
    let late = h.result().mean_goodput_api(ob.getproduct, 30.0, 60.0);
    assert!(
        late > 250.0,
        "RL-controlled goodput should approach the ~500 rps bottleneck, got {late}"
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let run = || {
        let (topo, api1, api2) = fig1_topology();
        let w = OpenLoopWorkload::constant(vec![(api1, 2000.0), (api2, 2000.0)]);
        let engine = Engine::new(topo, config(9), Box::new(w));
        let tf = TopFull::new(TopFullConfig::default().with_mimd());
        let mut h = Harness::new(engine, Box::new(tf));
        h.run_for_secs(30);
        (
            h.result().mean_total_goodput(0.0, 30.0),
            h.engine.api_totals(api1),
            h.engine.api_totals(api2),
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce identical runs");
}

#[test]
fn alibaba_demo_runs_under_full_control_stack() {
    let demo = topfull_suite::apps::AlibabaDemo::build(7);
    let rates: Vec<(topfull_suite::cluster::ApiId, f64)> =
        demo.apis.iter().map(|a| (*a, 150.0)).collect();
    let w = OpenLoopWorkload::constant(rates);
    let engine = Engine::new(demo.topology.clone(), config(10), Box::new(w));
    let tf = TopFull::new(TopFullConfig::default().with_mimd());
    let mut h = Harness::new(engine, Box::new(tf));
    h.run_for_secs(60);
    let total = h.result().mean_total_goodput(30.0, 60.0);
    assert!(
        total > 500.0,
        "the 127-service demo must serve load: {total}"
    );
}
