//! Golden determinism fingerprint for the decomposed engine and the
//! parallel run executor.
//!
//! The simulation is specified to be a pure function of `(topology,
//! config, workload, seed)`: same inputs, same event sequence, same
//! artifacts — on any machine, at any worker count. This test pins that
//! contract to a recorded constant: an FNV-1a hash over each run's
//! processed-event count, its per-API goodput series, and its resilience
//! totals. If the engine refactor (or any future change) perturbs even
//! one event, the fingerprint moves and the constant must be
//! re-recorded **deliberately**, with the behavioral change explained in
//! the commit.
//!
//! The parallel test runs the identical plan on four workers and must
//! reproduce the serial fingerprint bit-for-bit — the run executor is
//! not allowed to reorder, drop, or perturb anything.

use topfull_bench::exec::{self, ArmOutcome};
use topfull_bench::runner::RunPlan;
use topfull_bench::scenarios::{boutique_closed_loop, Roster};

/// Recorded fingerprint of [`plan_arms`] under [`fingerprint`]. Update
/// only for an intentional behavioral change.
const GOLDEN: u64 = 0xef5a_adab_332d_da25;

const RUN_SECS: u64 = 30;

fn mk_engine() -> cluster::Engine {
    // An overloaded boutique with deadlines enabled, so the fingerprint
    // covers admission, SLO accounting, and the resilience plane.
    let (_, mut e) = boutique_closed_loop(1200, 42);
    e.set_resilience(cluster::ResilienceConfig {
        deadlines: Some(cluster::DeadlineConfig::default()),
        breakers: None,
    });
    e
}

fn plan_arms(workers: usize) -> Vec<ArmOutcome> {
    let arms = vec![
        ("no-control", Roster::None),
        ("dagor", Roster::Dagor { alpha: 0.05 }),
        ("topfull-mimd", Roster::TopFullMimd),
        ("breakwater", Roster::Breakwater),
    ];
    let mut plan = RunPlan::new().with_workers(workers);
    for (label, roster) in arms {
        plan.submit(move || exec::run_arm(label, roster, mk_engine(), RUN_SECS));
    }
    plan.run()
}

/// FNV-1a (64-bit). Deliberately not `DefaultHasher`, whose output may
/// change between Rust releases.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn fingerprint(outcomes: &[ArmOutcome]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for o in outcomes {
        fnv1a(&mut h, o.label.as_bytes());
        fnv1a(&mut h, &o.events_processed.to_le_bytes());
        fnv1a(&mut h, &o.crash_events.to_le_bytes());
        for s in &o.result.samples {
            for g in &s.goodput {
                // Exact bits: determinism means identical floats, not
                // approximately-equal floats.
                fnv1a(&mut h, &g.to_bits().to_le_bytes());
            }
        }
        let r = &o.resilience;
        for c in [
            r.doomed_cancelled,
            r.deadline_rejected,
            r.client_cancelled,
            r.retries_issued,
            r.retries_suppressed,
            r.breaker_rejected,
            r.breaker_transitions,
        ] {
            fnv1a(&mut h, &c.to_le_bytes());
        }
    }
    h
}

#[test]
fn serial_run_matches_golden_fingerprint() {
    let got = fingerprint(&plan_arms(1));
    assert_eq!(
        got, GOLDEN,
        "serial fingerprint drifted: got {got:#018x}, recorded {GOLDEN:#018x} — \
         the engine's behavior changed; re-record only if intentional"
    );
}

#[test]
fn parallel_run_matches_golden_fingerprint() {
    let got = fingerprint(&plan_arms(4));
    assert_eq!(
        got, GOLDEN,
        "parallel fingerprint diverged from the recorded serial one: \
         got {got:#018x}, recorded {GOLDEN:#018x} — the run executor \
         perturbed a run"
    );
}

/// The decision journal is part of the determinism contract: the JSONL
/// rendering of every arm's journal must be byte-identical between a
/// serial plan and a four-worker plan. Journal writes all happen on the
/// thread driving the control loop, so worker count must not reorder,
/// drop, or reword a single entry.
#[test]
fn journal_jsonl_is_identical_across_worker_counts() {
    let serial = plan_arms(1);
    let parallel = plan_arms(4);
    assert_eq!(serial.len(), parallel.len());
    let mut any_entries = false;
    for (s, p) in serial.iter().zip(&parallel) {
        let s_jsonl = obs::to_jsonl(&s.result.journal);
        let p_jsonl = obs::to_jsonl(&p.result.journal);
        assert_eq!(
            s_jsonl, p_jsonl,
            "arm {}: journal JSONL differs between 1 and 4 workers",
            s.label
        );
        assert_eq!(
            obs::journal_fingerprint(&s_jsonl),
            obs::journal_fingerprint(&p_jsonl),
            "arm {}: journal fingerprint differs between 1 and 4 workers",
            s.label
        );
        any_entries |= !s.result.journal.is_empty();
    }
    assert!(
        any_entries,
        "the overloaded boutique arms should journal at least one decision"
    );
}
