//! Request-plane resilience integration and property tests: arbitrary
//! deadline/budget/breaker configurations must never deadlock the
//! simulation, the budgeted-retry arm must never end up goodput-worse
//! than unbounded retries, and every run must be deterministic per seed.

use proptest::prelude::*;
use topfull_suite::apps::OnlineBoutique;
use topfull_suite::cluster::resilience::{
    BreakerConfig, DeadlineConfig, ResilienceConfig, ResilienceStats, RetryBudgetConfig,
};
use topfull_suite::cluster::{Engine, EngineConfig, RetryStormWorkload};
use topfull_suite::simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 40;

/// An overloaded Online Boutique with a retrying client population.
fn storm_engine(
    seed: u64,
    users: u32,
    max_retries: u32,
    budget: Option<RetryBudgetConfig>,
    resilience: ResilienceConfig,
) -> Engine {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let mut w = RetryStormWorkload::new(
        weights,
        users,
        SimDuration::from_secs(1),
        max_retries,
        SimDuration::from_millis(50),
    );
    if let Some(b) = budget {
        w = w.with_retry_budget(b);
    }
    let mut e = Engine::new(
        ob.topology.clone(),
        EngineConfig {
            seed,
            ..EngineConfig::default()
        },
        Box::new(w),
    );
    e.set_resilience(resilience);
    e
}

/// Sum of per-API totals: (good, admitted, finished).
fn totals(e: &Engine) -> (u64, u64, u64) {
    let n = e.topology().num_apis();
    let mut good = 0;
    let mut admitted = 0;
    let mut finished = 0;
    for i in 0..n {
        let t = e.api_totals(topfull_suite::cluster::ApiId(i as u32));
        good += t.good;
        admitted += t.admitted;
        finished += t.good + t.slo_violated + t.failed;
    }
    (good, admitted, finished)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary resilience configurations never deadlock: virtual time
    /// reaches the horizon, events keep flowing, accounting stays sane.
    #[test]
    fn arbitrary_configs_never_deadlock(
        seed in 0u64..1000,
        budget_ms in 0u64..20_000,
        cancel_doomed in any::<bool>(),
        with_deadlines in any::<bool>(),
        with_breakers in any::<bool>(),
        failure_threshold in 0.0f64..1.0,
        min_calls in 1u32..50,
        open_for_ms in 1u64..10_000,
        half_open_probes in 0u32..10,
        max_tokens in 0.0f64..200.0,
        token_ratio in 0.0f64..1.0,
        retry_cost in 0.0f64..5.0,
    ) {
        let cfg = ResilienceConfig {
            deadlines: with_deadlines.then_some(DeadlineConfig {
                // 0 stands in for "derive from timeout/SLO".
                budget: (budget_ms > 0).then(|| SimDuration::from_millis(budget_ms)),
                cancel_doomed,
            }),
            breakers: with_breakers.then_some(BreakerConfig {
                failure_threshold,
                min_calls,
                open_for: SimDuration::from_millis(open_for_ms),
                half_open_probes,
            }),
        };
        let budget = RetryBudgetConfig { max_tokens, token_ratio, retry_cost };
        let mut e = storm_engine(seed, 400, 10, Some(budget), cfg);
        e.run_until(SimTime::from_secs(RUN_SECS));
        // The horizon was reached and the run made real progress.
        prop_assert!(e.events_processed() > 1000, "simulation stalled");
        let (_, admitted, finished) = totals(&e);
        prop_assert!(finished <= admitted, "finished {finished} > admitted {admitted}");
        prop_assert!(admitted > 0, "nothing ever admitted");
    }

    /// Same seed + same config ⇒ bit-identical totals and counters.
    #[test]
    fn resilient_runs_are_deterministic_per_seed(
        seed in 0u64..1000,
        cancel_doomed in any::<bool>(),
        with_breakers in any::<bool>(),
    ) {
        let run = || {
            let cfg = ResilienceConfig {
                deadlines: Some(DeadlineConfig { budget: None, cancel_doomed }),
                breakers: with_breakers.then_some(BreakerConfig::default()),
            };
            let mut e = storm_engine(
                seed, 400, 10, Some(RetryBudgetConfig::default()), cfg,
            );
            e.run_until(SimTime::from_secs(RUN_SECS));
            let r = e.resilience_totals();
            (totals(&e), r)
        };
        let (a, ra) = run();
        let (b, rb) = run();
        prop_assert_eq!(a, b, "totals diverged for seed {}", seed);
        prop_assert_eq!(ra, rb, "resilience counters diverged for seed {}", seed);
    }
}

/// The budgeted arm never does meaningfully worse than unbounded
/// retries: the budget only suppresses work that was going to fail, so
/// goodput must be at least on par across seeds.
#[test]
fn budgeted_retries_never_goodput_worse_than_unbounded() {
    for seed in [7, 23, 101] {
        let arm = |budget: Option<RetryBudgetConfig>| {
            let cfg = ResilienceConfig {
                deadlines: Some(DeadlineConfig::default()),
                breakers: None,
            };
            let mut e = storm_engine(seed, 1800, 100, budget, cfg);
            e.run_until(SimTime::from_secs(60));
            totals(&e).0
        };
        let unbounded = arm(None);
        let budgeted = arm(Some(RetryBudgetConfig::default()));
        // 5% tolerance: the two arms sample different RNG streams, so
        // exact dominance per-seed is not guaranteed, only the shape.
        assert!(
            budgeted as f64 >= unbounded as f64 * 0.95,
            "seed {seed}: budgeted {budgeted} < unbounded {unbounded}"
        );
    }
}

/// With deadlines + a retry budget under sustained overload, every
/// deadline-side mechanism visibly engages. Breakers are off here on
/// purpose: they shed load so aggressively that queues never get long
/// enough for deadlines to expire.
#[test]
fn deadline_mechanisms_engage_under_storm() {
    let cfg = ResilienceConfig {
        deadlines: Some(DeadlineConfig {
            // A tight explicit budget so queued calls expire well before
            // the 10 s client timeout (bounded queues overflow first at
            // looser budgets, failing requests before expiry).
            budget: Some(SimDuration::from_millis(200)),
            cancel_doomed: true,
        }),
        breakers: None,
    };
    let mut e = storm_engine(23, 2600, 100, Some(RetryBudgetConfig::default()), cfg);
    e.run_until(SimTime::from_secs(60));
    let r = e.resilience_totals();
    assert!(r.retries_issued > 0, "{r:?}");
    assert!(r.retries_suppressed > 0, "{r:?}");
    assert!(r.doomed_cancelled > 0, "{r:?}");
    assert!(r.deadline_rejected > 0, "{r:?}");
    assert_ne!(r, ResilienceStats::default());
}

/// Breakers on a storming cluster open and reject at dispatch.
#[test]
fn breakers_engage_under_storm() {
    let cfg = ResilienceConfig {
        deadlines: None,
        breakers: Some(BreakerConfig {
            failure_threshold: 0.3,
            min_calls: 10,
            ..BreakerConfig::default()
        }),
    };
    let mut e = storm_engine(23, 2600, 100, Some(RetryBudgetConfig::default()), cfg);
    e.run_until(SimTime::from_secs(60));
    let r = e.resilience_totals();
    assert!(r.breaker_rejected > 0, "{r:?}");
    assert!(r.breaker_transitions > 0, "{r:?}");
}
