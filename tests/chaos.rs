//! Gray-failure chaos integration tests: the hardened control loop must
//! survive a full fault schedule — slow pods, telemetry dropout, metric
//! noise, controller stalls, stale observations, and a hostile rate
//! controller — without panicking, without emitting unbounded or
//! non-finite rate limits, and recovering goodput once the faults clear.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use topfull_suite::apps::OnlineBoutique;
use topfull_suite::cluster::{
    Engine, EngineConfig, FaultSpec, Harness, OpenLoopWorkload, RateSchedule, RunResult,
    WatchdogConfig,
};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{RateController, RateState, TopFull, TopFullConfig};

fn config(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        ..EngineConfig::default()
    }
}

/// Online Boutique under steady load with the full gray-failure
/// schedule: brownout, dropout, noise, stall, staleness.
fn chaos_engine(seed: u64) -> Engine {
    let ob = OnlineBoutique::build();
    let rates = vec![
        (
            ob.getproduct,
            RateSchedule::steps(vec![
                (SimTime::ZERO, 150.0),
                (SimTime::from_secs(15), 300.0),
            ]),
        ),
        (ob.getcart, RateSchedule::constant(100.0)),
        (ob.postcheckout, RateSchedule::constant(60.0)),
    ];
    let mut engine = Engine::new(
        ob.topology.clone(),
        config(seed),
        Box::new(OpenLoopWorkload::new(rates)),
    );
    engine.inject_faults(vec![
        FaultSpec::SlowPods {
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(70),
            service: ob.productcatalog,
            factor: 8.0,
        },
        FaultSpec::TelemetryDropout {
            from: SimTime::from_secs(60),
            until: SimTime::from_secs(90),
            service: None,
        },
        FaultSpec::TelemetryNoise {
            from: SimTime::from_secs(90),
            until: SimTime::from_secs(110),
            sigma: 0.5,
        },
        FaultSpec::ControllerStall {
            from: SimTime::from_secs(100),
            until: SimTime::from_secs(112),
        },
        FaultSpec::TelemetryStaleness {
            from: SimTime::from_secs(115),
            until: SimTime::from_secs(130),
            by: SimDuration::from_secs(10),
        },
    ]);
    engine
}

const FLOOR: f64 = 1.0;
const CEIL: f64 = 10_000.0;

fn assert_limits_bounded(r: &RunResult) {
    for s in &r.samples {
        for (i, l) in s.rate_limit.iter().enumerate() {
            assert!(!l.is_nan(), "NaN rate limit for api {i} at {:?}", s.at);
            if l.is_finite() {
                assert!(
                    (FLOOR..=CEIL).contains(l),
                    "rate limit {l} for api {i} at {:?} outside [{FLOOR}, {CEIL}]",
                    s.at
                );
            } else {
                assert!(*l > 0.0, "negative-infinite limit for api {i}");
            }
        }
        for (i, g) in s.goodput.iter().enumerate() {
            assert!(
                g.is_finite() && *g >= 0.0,
                "bad goodput {g} for api {i} at {:?}",
                s.at
            );
        }
    }
}

fn run_hardened(seed: u64) -> (RunResult, topfull_suite::cluster::WatchdogStats) {
    let cfg = TopFullConfig::default()
        .with_mimd()
        .with_rate_bounds(FLOOR, CEIL)
        .hardened();
    let mut h = Harness::with_watchdog(
        chaos_engine(seed),
        Box::new(TopFull::new(cfg)),
        WatchdogConfig::default(),
    );
    h.run_for_secs(240);
    let stats = h.watchdog_stats();
    (h.into_result(), stats)
}

/// The full schedule runs without panics, every recorded limit is
/// bounded, the run is deterministic, and goodput recovers to ≥90% of
/// the pre-fault level once the faults clear.
#[test]
fn hardened_loop_survives_full_fault_schedule() {
    let (r1, stats1) = run_hardened(11);
    let (r2, stats2) = run_hardened(11);

    assert_limits_bounded(&r1);

    // Determinism: identical seeds give bit-identical timelines.
    assert_eq!(r1.samples.len(), r2.samples.len());
    for (a, b) in r1.samples.iter().zip(&r2.samples) {
        assert_eq!(a.at, b.at);
        assert_eq!(a.goodput, b.goodput, "goodput diverged at {:?}", a.at);
        assert_eq!(a.rate_limit, b.rate_limit, "limits diverged at {:?}", a.at);
    }
    assert_eq!(stats1, stats2);

    // The watchdog actually fired: the stall skipped ticks and the
    // 30 s dropout pushed it through freeze into decay and back out.
    assert!(stats1.stalled_ticks > 0, "stall fault never observed");
    assert!(stats1.frozen_ticks > 0, "dropout never froze limits");
    assert!(stats1.decayed_ticks > 0, "dropout never reached decay");
    assert!(stats1.reentries > 0, "watchdog never re-entered control");

    // Recovery: post-fault goodput within 90% of pre-fault.
    let pre = r1.mean_total_goodput(20.0, 40.0);
    let post = r1.mean_total_goodput(200.0, 240.0);
    assert!(pre > 100.0, "pre-fault baseline implausibly low: {pre}");
    assert!(
        post >= 0.9 * pre,
        "goodput failed to recover: pre {pre:.1} rps, post {post:.1} rps"
    );
}

/// A step policy that cycles through hostile outputs: NaN, infinities,
/// and actions far outside the contract's `[-0.5, 0.5]`.
struct RogueRateController {
    script: Vec<f64>,
    cursor: AtomicUsize,
}

impl RogueRateController {
    fn new() -> Self {
        RogueRateController {
            script: vec![
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                10.0,
                -10.0,
                0.4,
                -0.4,
            ],
            cursor: AtomicUsize::new(0),
        }
    }
}

impl RateController for RogueRateController {
    fn decide(&self, _s: RateState) -> f64 {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.script[i % self.script.len()]
    }

    fn name(&self) -> &str {
        "rogue"
    }
}

/// A hostile step policy inside the hardened loop can't poison the
/// cluster: no panics, every limit stays bounded, and the safe wrapper
/// eventually benches the rogue in favor of the MIMD fallback.
#[test]
fn hardened_loop_contains_rogue_rate_controller() {
    let safe = Arc::new(topfull_suite::topfull::SafeRateController::with_defaults(
        Arc::new(RogueRateController::new()),
    ));
    let cfg = TopFullConfig::default()
        .with_rate_controller(safe.clone())
        .with_rate_bounds(FLOOR, CEIL);
    let mut h = Harness::with_watchdog(
        chaos_engine(7),
        Box::new(TopFull::new(cfg)),
        WatchdogConfig::default(),
    );
    h.run_for_secs(120);
    assert_limits_bounded(h.result());
    assert!(
        safe.tripped(),
        "a controller emitting NaN/±inf every few calls must get benched"
    );
}

/// A total telemetry blackout engages the watchdog: limits freeze, then
/// decay toward the floor, and control re-enters once light returns.
#[test]
fn watchdog_freezes_then_decays_during_blackout() {
    let ob = OnlineBoutique::build();
    let rates = vec![
        (ob.getproduct, RateSchedule::constant(300.0)),
        (ob.getcart, RateSchedule::constant(100.0)),
    ];
    let mut engine = Engine::new(
        ob.topology.clone(),
        config(5),
        Box::new(OpenLoopWorkload::new(rates)),
    );
    engine.inject_faults(vec![FaultSpec::TelemetryDropout {
        from: SimTime::from_secs(30),
        until: SimTime::from_secs(60),
        service: None,
    }]);
    let cfg = TopFullConfig::default()
        .with_mimd()
        .with_rate_bounds(FLOOR, CEIL);
    let mut h = Harness::with_watchdog(
        engine,
        Box::new(TopFull::new(cfg)),
        WatchdogConfig::default(),
    );
    h.run_for_secs(90);
    let stats = h.watchdog_stats();
    let wd = WatchdogConfig::default();
    assert_eq!(stats.frozen_ticks as u32, wd.freeze_ticks);
    assert!(
        stats.decayed_ticks > 0,
        "a 30 s blackout must outlast the freeze window"
    );
    assert_eq!(stats.reentries, 1, "light returned exactly once");
    assert_limits_bounded(h.result());
}

/// Shard-kill chaos: 1 of 3 gateway shards dies mid-surge. The plane
/// strikes it out within the strike-out window, redistributes its quota
/// to the survivors, and total goodput recovers to within 10% of what a
/// 2-shard fleet sustains at steady state.
#[test]
fn shard_kill_mid_surge_recovers_to_two_shard_steady_state() {
    use topfull_suite::cluster::ShardFault;
    use topfull_suite::topfull::{ShardedConfig, ShardedHarness};

    let surged = |seed: u64| {
        let ob = OnlineBoutique::build();
        let rates = vec![
            (
                ob.getproduct,
                RateSchedule::steps(vec![
                    (SimTime::ZERO, 150.0),
                    (SimTime::from_secs(30), 1200.0),
                ]),
            ),
            (ob.getcart, RateSchedule::constant(100.0)),
        ];
        Engine::new(
            ob.topology.clone(),
            config(seed),
            Box::new(OpenLoopWorkload::new(rates)),
        )
    };
    let topfull = || {
        Box::new(TopFull::new(TopFullConfig::default().with_mimd()))
            as Box<dyn topfull_suite::cluster::Controller>
    };
    let mean_total = |r: &RunResult, from: f64, to: f64| r.mean_total_goodput(from, to);

    // Reference: a healthy 2-shard fleet under the same surge.
    let mut two = ShardedHarness::new(surged(21), topfull(), ShardedConfig::uniform(2))
        .expect("valid config");
    two.run_for_secs(120);

    // Chaos arm: 3 shards, shard 1 SIGKILLed at t=60, mid-surge.
    let mut cfg = ShardedConfig::uniform(3);
    cfg.faults = vec![ShardFault::Kill {
        shard: 1,
        at: SimTime::from_secs(60),
    }];
    let strike_out = cfg.plane.strike_out;
    let mut three = ShardedHarness::new(surged(21), topfull(), cfg).expect("valid config");
    three.run_for_secs(120);

    let stats = three.plane_stats();
    assert!(stats.strike_outs >= 1, "killed shard never struck out");
    assert_eq!(stats.reentries, 0, "a killed shard cannot return");
    assert!(stats.redistributions >= 1, "quota never redistributed");

    // The strike-out decision lands within the window: the journal's
    // membership entry is stamped no later than kill + strike_out + 1
    // control ticks.
    let journal = three.journal().snapshot();
    let struck_at = journal
        .iter()
        .find_map(|e| match e {
            obs::JournalEntry::ShardMembership { t, event, .. } if event.contains("struck out") => {
                Some(*t)
            }
            _ => None,
        })
        .expect("strike-out journaled");
    assert!(
        struck_at <= 60.0 + strike_out as f64 + 1.0,
        "strike-out too slow: t={struck_at}"
    );

    // Recovery: once the strike-out window plus a few settling ticks
    // pass, the 2-survivor fleet's goodput is within 10% of the
    // 2-shard steady state over the same interval.
    let recover_from = 60.0 + strike_out as f64 + 5.0;
    let reference = mean_total(two.result(), recover_from, 120.0);
    let recovered = mean_total(three.result(), recover_from, 120.0);
    assert!(reference > 50.0, "2-shard reference implausibly low");
    assert!(
        recovered >= 0.9 * reference,
        "post-kill goodput {recovered:.1} below 90% of 2-shard steady {reference:.1}"
    );
}
