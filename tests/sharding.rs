//! Sharded control plane integration tests: the limit splitter's
//! conservation invariants (proptest), plane transparency when healthy,
//! dropout failover with ramped re-entry, the controller-loss
//! degradation ladder (never fail-open, never fail-closed), and journal
//! determinism across experiment worker counts.

use proptest::prelude::*;
use topfull_suite::apps::OnlineBoutique;
use topfull_suite::cluster::{
    Engine, EngineConfig, Harness, OpenLoopWorkload, RateSchedule, ShardFault,
};
use topfull_suite::simnet::SimTime;
use topfull_suite::topfull::{split_limit, ShardedConfig, ShardedHarness, TopFull, TopFullConfig};

const MIN_QUANTUM: f64 = 1.0;

/// Surged Online Boutique engine, the workhorse of these tests.
fn surge_engine(seed: u64) -> Engine {
    let ob = OnlineBoutique::build();
    let rates = vec![
        (
            ob.getproduct,
            RateSchedule::steps(vec![
                (SimTime::ZERO, 150.0),
                (SimTime::from_secs(20), 1200.0),
            ]),
        ),
        (ob.getcart, RateSchedule::constant(100.0)),
    ];
    Engine::new(
        ob.topology.clone(),
        EngineConfig {
            seed,
            ..EngineConfig::default()
        },
        Box::new(OpenLoopWorkload::new(rates)),
    )
}

fn controller() -> Box<dyn topfull_suite::cluster::Controller> {
    Box::new(TopFull::new(TopFullConfig::default().with_mimd()))
}

fn mean_goodput(samples: &[topfull_suite::cluster::harness::TickSample], from: f64) -> f64 {
    let xs: Vec<f64> = samples
        .iter()
        .filter(|s| s.at.as_secs_f64() >= from)
        .map(|s| s.goodput.iter().sum())
        .collect();
    topfull_suite::simnet::stats::mean(&xs)
}

// ---------------------------------------------------------------------
// Satellite: proptest invariants of the limit splitter.

proptest! {
    /// Live quotas sum to the global limit (±1 token), every live shard
    /// gets at least the min-quantum, dead shards get exactly zero.
    #[test]
    fn split_conserves_and_floors(
        global in 0.0f64..5000.0,
        arrivals in prop::collection::vec(0.0f64..1000.0, 1..8),
        live_bits in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let n = arrivals.len().min(live_bits.len());
        let arrivals = &arrivals[..n];
        let mut live = live_bits[..n].to_vec();
        live[0] = true; // at least one survivor
        let quotas = split_limit(global, arrivals, &live, MIN_QUANTUM, None);
        let n_live = live.iter().filter(|l| **l).count() as f64;
        let expected = global.max(n_live * MIN_QUANTUM);
        let sum: f64 = quotas.iter().sum();
        prop_assert!(
            (sum - expected).abs() <= 1.0,
            "quotas sum {sum} vs expected {expected}"
        );
        for (i, q) in quotas.iter().enumerate() {
            if live[i] {
                prop_assert!(*q >= MIN_QUANTUM - 1e-9, "live shard {i} below floor: {q}");
            } else {
                prop_assert_eq!(*q, 0.0, "dead shard {} got quota", i);
            }
        }
    }

    /// Killing one shard and re-splitting conserves the total: the dead
    /// shard's quota flows to the survivors, not into thin air.
    #[test]
    fn redistribution_conserves_total(
        global in 50.0f64..5000.0,
        arrivals in prop::collection::vec(0.1f64..1000.0, 3..8),
        victim in 1usize..8,
    ) {
        let n = arrivals.len();
        let victim = victim % n;
        let all_live = vec![true; n];
        let before = split_limit(global, &arrivals, &all_live, MIN_QUANTUM, None);
        let mut live = all_live.clone();
        live[victim] = false; // n >= 3, so at least two survivors remain
        let after = split_limit(global, &arrivals, &live, MIN_QUANTUM, None);
        let (sb, sa): (f64, f64) = (before.iter().sum(), after.iter().sum());
        prop_assert!(
            (sb - sa).abs() <= 1.0 + MIN_QUANTUM,
            "redistribution leaked quota: {sb} -> {sa}"
        );
        prop_assert_eq!(after[victim], 0.0);
    }

    /// An unlimited global stays unlimited for live shards unless a
    /// re-entry cap bounds them; finite caps always bound the quota.
    #[test]
    fn caps_bound_quotas(
        global in 100.0f64..5000.0,
        arrivals in prop::collection::vec(0.0f64..1000.0, 2..6),
        cap in 2.0f64..50.0,
    ) {
        let n = arrivals.len();
        let live = vec![true; n];
        let mut caps = vec![f64::INFINITY; n];
        caps[0] = cap;
        let quotas = split_limit(global, &arrivals, &live, MIN_QUANTUM, Some(&caps));
        prop_assert!(
            quotas[0] <= cap.max(MIN_QUANTUM) + 1e-9,
            "re-entry cap violated: {} > {cap}",
            quotas[0]
        );
        for (i, q) in quotas.iter().enumerate() {
            prop_assert!(q.is_finite(), "finite global must give finite quota {i}");
            prop_assert!(*q >= MIN_QUANTUM - 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// Plane transparency: with healthy shards the sharded stack is a
// deployment detail, not a control change.

#[test]
fn healthy_sharded_plane_matches_single_gateway() {
    let mut single = Harness::new(surge_engine(7), controller());
    single.run_for_secs(90);
    let mut sharded = ShardedHarness::new(surge_engine(7), controller(), ShardedConfig::uniform(3))
        .expect("valid config");
    sharded.run_for_secs(90);
    let (a, b) = (
        mean_goodput(&single.result().samples, 45.0),
        mean_goodput(&sharded.result().samples, 45.0),
    );
    assert!(
        (a - b).abs() / a.max(1.0) < 0.05,
        "3-shard goodput {b:.1} strays from single-gateway {a:.1}"
    );
    let stats = sharded.plane_stats();
    assert!(stats.merges > 0, "controller ran on merged observations");
    assert_eq!(stats.strike_outs, 0, "no failover on a healthy fleet");
}

// ---------------------------------------------------------------------
// Dropout failover: strike-out, redistribution, ramped re-entry.

#[test]
fn dropout_strikes_out_and_reenters_with_ramp() {
    let mut cfg = ShardedConfig::uniform(3);
    cfg.faults = vec![ShardFault::Dropout {
        shard: 1,
        from: SimTime::from_secs(30),
        until: SimTime::from_secs(60),
    }];
    let mut h = ShardedHarness::new(surge_engine(11), controller(), cfg).expect("valid config");
    h.run_for_secs(100);
    let stats = h.plane_stats();
    assert!(stats.strike_outs >= 1, "shard 1 must strike out: {stats:?}");
    assert!(stats.reentries >= 1, "shard 1 must re-enter: {stats:?}");
    assert!(
        stats.redistributions >= 2,
        "strike-out and re-entry both redistribute: {stats:?}"
    );
    let journal = h.journal().snapshot();
    let events: Vec<String> = journal
        .iter()
        .filter_map(|e| match e {
            obs::JournalEntry::ShardMembership { event, shard, .. } => {
                Some(format!("shard {shard}: {event}"))
            }
            _ => None,
        })
        .collect();
    let all = events.join("\n");
    assert!(all.contains("struck out"), "journal: {all}");
    assert!(
        all.contains("re-entering with ramped quota"),
        "journal: {all}"
    );
    assert!(all.contains("ramp complete"), "journal: {all}");
    // Goodput after the shard returns recovers to the healthy level.
    let late = mean_goodput(&h.result().samples, 75.0);
    assert!(late > 100.0, "post-re-entry goodput too low: {late:.1}");
}

// ---------------------------------------------------------------------
// Controller loss: hold, then MIMD fallback — never fail-open (an
// unbounded limit) and never fail-closed (a zero limit).

#[test]
fn controller_loss_degrades_without_failing_open_or_closed() {
    let mut cfg = ShardedConfig::uniform(3);
    cfg.faults = vec![ShardFault::ControllerLoss {
        from: SimTime::from_secs(40),
        until: SimTime::from_secs(70),
    }];
    let ttl = cfg.plane.limit_ttl;
    let mut h = ShardedHarness::new(surge_engine(13), controller(), cfg).expect("valid config");
    h.run_for_secs(100);
    let guards = h.guard_stats();
    assert!(guards.held_ticks > 0, "limits must be held inside the TTL");
    assert!(
        guards.fallback_ticks > 0,
        "the MIMD fallback must engage past the TTL: {guards:?}"
    );
    assert!(
        guards.resyncs >= 3,
        "all shards resync on return: {guards:?}"
    );
    assert!(h.lost_ticks > 0, "loss window must cost controller ticks");
    // Once every shard is past its TTL (limit_ttl ticks into the
    // window), the enforced limits are the fallback's: finite, bounded
    // away from zero (>= 3 live shards x min-quantum).
    let blind_from = 40.0 + ttl as f64 + 2.0;
    for s in &h.result().samples {
        let t = s.at.as_secs_f64();
        if !(blind_from..70.0).contains(&t) {
            continue;
        }
        for (api, l) in s.rate_limit.iter().enumerate() {
            assert!(
                l.is_finite(),
                "t={t}: api {api} fail-open (unbounded limit) while blind"
            );
            assert!(
                *l >= 3.0 * MIN_QUANTUM - 1e-9,
                "t={t}: api {api} fail-closed (limit {l}) while blind"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Determinism: the sharded journal is identical regardless of how many
// experiment workers run around it.

#[test]
fn sharded_journal_fingerprint_is_worker_count_invariant() {
    let run_one = |seed: u64| {
        let mut cfg = ShardedConfig::uniform(3);
        cfg.faults = vec![ShardFault::Dropout {
            shard: 2,
            from: SimTime::from_secs(20),
            until: SimTime::from_secs(35),
        }];
        let mut h =
            ShardedHarness::new(surge_engine(seed), controller(), cfg).expect("valid config");
        h.run_for_secs(50);
        obs::journal_fingerprint(&obs::to_jsonl(&h.journal().snapshot()))
    };
    let fingerprints = |workers: usize| -> Vec<u64> {
        let mut plan = topfull_bench::runner::RunPlan::new().with_workers(workers);
        for seed in [3u64, 5, 7] {
            plan.submit(move || run_one(seed));
        }
        plan.run()
    };
    let serial = fingerprints(1);
    let parallel = fingerprints(4);
    assert_eq!(serial, parallel, "journal must not depend on worker count");
    assert_ne!(serial[0], serial[1], "different seeds journal differently");
}
