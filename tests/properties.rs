//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary topologies, workloads and controller inputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use topfull_suite::cluster::types::{ApiId, ServiceId};
use topfull_suite::cluster::{
    ApiSpec, CallNode, Engine, EngineConfig, FaultSpec, Harness, OpenLoopWorkload, ServiceSpec,
    Topology, WatchdogConfig,
};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{
    cluster_apis, RateController, RateState, SafeRateController, TopFull, TopFullConfig,
};

/// Strategy: random API paths over `n_services`.
fn paths_strategy(n_services: u32, n_apis: usize) -> impl Strategy<Value = Vec<Vec<ServiceId>>> {
    prop::collection::vec(prop::collection::btree_set(0..n_services, 1..6), 1..=n_apis).prop_map(
        |apis| {
            apis.into_iter()
                .map(|set| set.into_iter().map(ServiceId).collect())
                .collect()
        },
    )
}

/// A step policy replaying an arbitrary (possibly hostile) script:
/// NaN, infinities, and values far outside the `[-0.5, 0.5]` contract.
struct ScriptedRateController {
    script: Vec<f64>,
    cursor: AtomicUsize,
}

impl RateController for ScriptedRateController {
    fn decide(&self, _s: RateState) -> f64 {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.script[i % self.script.len()]
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

/// Decode a generated `(kind, from, len, param)` row into a fault.
fn decode_fault(
    kind: u32,
    from: u64,
    len: u64,
    param: f64,
    a: ServiceId,
    b: ServiceId,
) -> FaultSpec {
    let from_t = SimTime::from_secs(from);
    let until = SimTime::from_secs(from + len);
    match kind {
        0 => FaultSpec::PodKill {
            at: from_t,
            service: a,
            pods: 1,
        },
        1 => FaultSpec::SlowPods {
            from: from_t,
            until,
            service: b,
            factor: param,
        },
        2 => FaultSpec::NetworkDegrade {
            from: from_t,
            until,
            service: None,
            extra_latency: SimDuration::from_millis(param as u64),
            loss: (param / 100.0).clamp(0.0, 0.3),
        },
        3 => FaultSpec::TelemetryDropout {
            from: from_t,
            until,
            service: None,
        },
        4 => FaultSpec::TelemetryStaleness {
            from: from_t,
            until,
            by: SimDuration::from_secs((param as u64 % 8) + 1),
        },
        5 => FaultSpec::TelemetryNoise {
            from: from_t,
            until,
            sigma: param / 10.0,
        },
        _ => FaultSpec::ControllerStall {
            from: from_t,
            until,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation 2: clusters partition the involved APIs, every cluster's
    /// overloaded services are disjoint from other clusters', and every
    /// cluster contains at least one API and one overloaded service.
    #[test]
    fn clustering_is_a_partition(
        paths in paths_strategy(12, 10),
        overloaded_mask in prop::collection::vec(any::<bool>(), 12),
    ) {
        let overloaded: Vec<ServiceId> = overloaded_mask
            .iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| ServiceId(i as u32))
            .collect();
        let clusters = cluster_apis(&paths, &overloaded);
        // APIs appear in at most one cluster.
        let mut seen_apis = std::collections::HashSet::new();
        for c in &clusters {
            prop_assert!(!c.apis.is_empty());
            prop_assert!(!c.overloaded.is_empty());
            for a in &c.apis {
                prop_assert!(seen_apis.insert(*a), "API {a} in two clusters");
            }
        }
        // Overloaded services appear in at most one cluster.
        let mut seen_svc = std::collections::HashSet::new();
        for c in &clusters {
            for s in &c.overloaded {
                prop_assert!(seen_svc.insert(*s), "{s} in two clusters");
            }
        }
        // Exactly the involved APIs are covered.
        let over_set: std::collections::HashSet<ServiceId> =
            overloaded.iter().copied().collect();
        for (i, path) in paths.iter().enumerate() {
            let involved = path.iter().any(|s| over_set.contains(s));
            prop_assert_eq!(
                involved,
                seen_apis.contains(&ApiId(i as u32)),
                "API {} coverage mismatch", i
            );
        }
        // Equation 2 soundness: two APIs sharing an overloaded service
        // are in the same cluster.
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                let share = paths[i]
                    .iter()
                    .any(|s| over_set.contains(s) && paths[j].contains(s));
                if share {
                    let ci = clusters.iter().position(|c| c.apis.contains(&ApiId(i as u32)));
                    let cj = clusters.iter().position(|c| c.apis.contains(&ApiId(j as u32)));
                    prop_assert_eq!(ci, cj, "APIs {} and {} must share a cluster", i, j);
                }
            }
        }
    }

    /// Engine conservation: every admitted request terminates exactly
    /// once (good, SLO-violated, or failed) once the system drains.
    #[test]
    fn request_accounting_conserves(
        seed in 0u64..500,
        rate in 20.0f64..400.0,
        cost_ms in 1u64..20,
        replicas in 1u32..4,
    ) {
        let mut topo = Topology::new("prop");
        let s = topo.add_service(ServiceSpec::new("s", replicas).queue_capacity(64));
        let api = topo.add_api(ApiSpec::single(
            "a",
            CallNode::leaf(s, SimDuration::from_millis(cost_ms)),
        ));
        let w = OpenLoopWorkload::constant(vec![(api, rate)]);
        let mut engine = Engine::new(
            topo,
            EngineConfig { seed, ..EngineConfig::default() },
            Box::new(w),
        );
        engine.run_until(SimTime::from_secs(10));
        // Let in-flight work drain: the workload stops producing after we
        // stop advancing ticks, so just run a little beyond.
        let t = engine.api_totals(api);
        prop_assert!(t.offered >= t.admitted + t.rejected_entry - 1);
        // Terminated ≤ admitted (some may be in flight at the horizon).
        prop_assert!(t.good + t.slo_violated + t.failed <= t.admitted);
        // Unterminated requests are bounded by what fits in the system:
        // the queues (replicas × 64) plus in-flight work and one tick of
        // arrivals in transit.
        let capacity_bound = u64::from(replicas) * 64 + u64::from(replicas) + 20;
        prop_assert!(
            t.admitted - (t.good + t.slo_violated + t.failed) <= capacity_bound,
            "too many unterminated requests: {:?}", t
        );
    }

    /// Goodput can never exceed the admitted rate, and utilization stays
    /// within [0, 1].
    #[test]
    fn observation_invariants(
        seed in 0u64..200,
        rate in 50.0f64..800.0,
    ) {
        let mut topo = Topology::new("prop2");
        let a = topo.add_service(ServiceSpec::new("a", 2));
        let b = topo.add_service(ServiceSpec::new("b", 1));
        let api = topo.add_api(ApiSpec::single(
            "x",
            CallNode::with_children(
                a,
                SimDuration::from_millis(2),
                vec![CallNode::leaf(b, SimDuration::from_millis(5))],
            ),
        ));
        let w = OpenLoopWorkload::constant(vec![(api, rate)]);
        let mut engine = Engine::new(
            topo,
            EngineConfig { seed, ..EngineConfig::default() },
            Box::new(w),
        );
        for t in 1..=8u64 {
            engine.run_until(SimTime::from_secs(t));
            let obs = engine.latest_observation().expect("tick passed").clone();
            for svc in &obs.services {
                prop_assert!((0.0..=1.0).contains(&svc.utilization));
            }
            let aw = obs.api(api);
            prop_assert!(aw.goodput <= aw.admitted + 1e-9 + 60.0,
                "goodput {} admitted {}", aw.goodput, aw.admitted);
            prop_assert!(aw.admitted <= aw.offered + 1e-9);
        }
    }

    /// Safety net: for ANY fault schedule and ANY rate-controller output
    /// stream (NaN, ±inf, huge steps), the hardened loop keeps every
    /// recorded rate limit either `+inf` (released) or finite within
    /// `[min_rate, max_rate]`, and never panics.
    #[test]
    fn hardened_limits_bounded_under_arbitrary_chaos(
        seed in 0u64..200,
        rate in 200.0f64..900.0,
        fault_rows in prop::collection::vec(
            (0u32..7, 0u64..25, 1u64..12, 1.0f64..12.0),
            0..5,
        ),
        script_rows in prop::collection::vec((0u32..6, -50.0f64..50.0), 3..10),
    ) {
        let mut topo = Topology::new("chaos-prop");
        let a = topo.add_service(ServiceSpec::new("a", 3));
        let b = topo.add_service(ServiceSpec::new("b", 1).queue_capacity(64));
        let api1 = topo.add_api(ApiSpec::single(
            "x",
            CallNode::with_children(
                a,
                SimDuration::from_millis(1),
                vec![CallNode::leaf(b, SimDuration::from_millis(3))],
            ),
        ));
        let api2 = topo.add_api(ApiSpec::single(
            "y",
            CallNode::leaf(a, SimDuration::from_millis(2)),
        ));
        let w = OpenLoopWorkload::constant(vec![(api1, rate), (api2, rate / 2.0)]);
        let mut engine = Engine::new(
            topo,
            EngineConfig { seed, ..EngineConfig::default() },
            Box::new(w),
        );
        engine.inject_faults(
            fault_rows
                .iter()
                .map(|&(k, f, l, p)| decode_fault(k, f, l, p, a, b))
                .collect(),
        );

        let script: Vec<f64> = script_rows
            .iter()
            .map(|&(kind, v)| match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => v,
            })
            .collect();
        const FLOOR: f64 = 1.0;
        const CEIL: f64 = 5_000.0;
        let cfg = TopFullConfig::default()
            .with_rate_controller(Arc::new(SafeRateController::with_defaults(Arc::new(
                ScriptedRateController { script, cursor: AtomicUsize::new(0) },
            ))))
            .with_rate_bounds(FLOOR, CEIL);
        let mut h = Harness::with_watchdog(
            engine,
            Box::new(TopFull::new(cfg)),
            WatchdogConfig::default(),
        );
        h.run_for_secs(40);

        for s in &h.result().samples {
            for (i, l) in s.rate_limit.iter().enumerate() {
                prop_assert!(!l.is_nan(), "NaN limit for api {} at {:?}", i, s.at);
                if l.is_finite() {
                    prop_assert!(
                        (FLOOR..=CEIL).contains(l),
                        "limit {} for api {} at {:?} outside [{}, {}]",
                        l, i, s.at, FLOOR, CEIL
                    );
                } else {
                    prop_assert!(*l > 0.0, "-inf limit for api {}", i);
                }
            }
        }
    }
}
