#!/usr/bin/env bash
# Tier-1 verification gate — the exact commands CI and the roadmap
# require to pass on every PR (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

# Live serving plane smoke: real TCP gateway + worker pool must serve a
# short open-loop burst end to end (wall-clock, ~2s).
./target/release/topfull live scenarios/live_smoke.json --duration 2 --json > /dev/null

echo "tier-1 verify: OK"
