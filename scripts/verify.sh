#!/usr/bin/env bash
# Tier-1 verification gate — the exact commands CI and the roadmap
# require to pass on every PR (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

echo "tier-1 verify: OK"
