#!/usr/bin/env bash
# Tier-1 verification gate — the exact commands CI and the roadmap
# require to pass on every PR (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

# Live serving plane smoke: real TCP gateway + worker pool must serve a
# short open-loop burst end to end (wall-clock, ~4s) while the telemetry
# endpoint answers GET /metrics with valid Prometheus text exposition.
./target/release/topfull live scenarios/live_smoke.json --duration 4 --json \
  > /tmp/topfull_live_smoke.json &
live_pid=$!
scrape_metrics() {
  # std-only scrape: the endpoint closes the connection after one
  # response, so a read loop over /dev/tcp terminates by itself.
  exec 3<>/dev/tcp/127.0.0.1/19184
  printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
  cat <&3
  exec 3<&- 3>&-
}
sleep 2
m1=$(scrape_metrics)
sleep 1
m2=$(scrape_metrics)
wait "$live_pid"
grep -q '^# TYPE topfull_request_duration_seconds histogram' <<<"$m1" \
  || { echo "metrics smoke: latency histogram missing"; exit 1; }
grep -q 'topfull_gateway_requests_total{api="ping",verdict="admitted"}' <<<"$m1" \
  || { echo "metrics smoke: per-API admit counter missing"; exit 1; }
grep -q 'topfull_gateway_requests_total{api="ping",verdict="rejected"}' <<<"$m1" \
  || { echo "metrics smoke: per-API reject counter missing"; exit 1; }
c1=$(grep -o 'verdict="admitted"} [0-9.]*' <<<"$m1" | awk '{print int($2)}')
c2=$(grep -o 'verdict="admitted"} [0-9.]*' <<<"$m2" | awk '{print int($2)}')
[ "$c2" -ge "$c1" ] && [ "$c2" -gt 0 ] \
  || { echo "metrics smoke: admit counter not monotone ($c1 -> $c2)"; exit 1; }

# Decision-journal smoke: `topfull explain` must render the journal
# embedded in a committed experiment artifact.
./target/release/topfull explain artifacts/results/fig10.json \
  | grep -q 'rate actions:' \
  || { echo "explain smoke: no rate actions in fig10 journal"; exit 1; }

echo "tier-1 verify: OK"
