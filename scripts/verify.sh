#!/usr/bin/env bash
# Tier-1 verification gate — the exact commands CI and the roadmap
# require to pass on every PR (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace matters: the repo root is itself a package, so a bare
# `cargo build` would skip dependency crates' binaries (topfull,
# topfull-sim) and every smoke below would run stale code.
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Live serving plane smoke: real TCP gateway + worker pool must serve a
# short open-loop burst end to end (wall-clock, ~4s) while the telemetry
# endpoint answers GET /metrics with valid Prometheus text exposition.
./target/release/topfull live scenarios/live_smoke.json --duration 4 --json \
  > /tmp/topfull_live_smoke.json &
live_pid=$!
scrape_metrics() {
  # std-only scrape: the endpoint closes the connection after one
  # response, so a read loop over /dev/tcp terminates by itself.
  exec 3<>/dev/tcp/127.0.0.1/19184
  printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
  cat <&3
  exec 3<&- 3>&-
}
sleep 2
m1=$(scrape_metrics)

# Concurrent-connections smoke: while the live run is still serving its
# open-loop load, hit the gateway (pinned to port 19186 in the scenario)
# with simultaneous clients — half pipelined, half sequential — and
# require a reply line for every request on every connection. This is
# the event-loop gateway's core claim: many sockets multiplexed without
# any one of them starving the others.
gateway_client() { # $1 = pipelined|sequential, $2 = id base
  local n=40 i replies=0
  exec 4<>/dev/tcp/127.0.0.1/19186
  if [ "$1" = pipelined ]; then
    { for ((i = 0; i < n; i++)); do printf 'REQ %s 0\n' "$(($2 + i))"; done; } >&4
    for ((i = 0; i < n; i++)); do
      IFS= read -r -t 5 _ <&4 && replies=$((replies + 1))
    done
  else
    for ((i = 0; i < n; i++)); do
      printf 'REQ %s 0\n' "$(($2 + i))" >&4
      IFS= read -r -t 5 _ <&4 && replies=$((replies + 1))
    done
  fi
  exec 4<&- 4>&-
  [ "$replies" -eq "$n" ]
}
client_pids=()
for c in 0 1 2 3; do gateway_client pipelined $((9000000 + c * 1000)) & client_pids+=($!); done
for c in 4 5 6 7; do gateway_client sequential $((9000000 + c * 1000)) & client_pids+=($!); done
for p in "${client_pids[@]}"; do
  wait "$p" || { echo "concurrent smoke: a client missed replies"; exit 1; }
done

# Coalescing smoke: a pipelined burst of duplicate keyed reads (same
# API, same key) must collapse onto one flight — every request still
# gets a reply, and /metrics shows nonzero coalesce hits afterwards.
coalesce_client() {
  local n=24 i replies=0
  exec 5<>/dev/tcp/127.0.0.1/19186
  { for ((i = 0; i < n; i++)); do printf 'REQ %s 0 7\n' $((9900000 + i)); done; } >&5
  for ((i = 0; i < n; i++)); do
    IFS= read -r -t 5 _ <&5 && replies=$((replies + 1))
  done
  exec 5<&- 5>&-
  [ "$replies" -eq "$n" ]
}
coalesce_client || { echo "coalesce smoke: duplicate-read burst missed replies"; exit 1; }

# Causal-tracing smoke: send keyless traced requests (4-token wire form
# `REQ <id> <api> - <trace>`) until one is admitted end to end; its
# trace must then be retrievable by id from the gateway's /trace route
# with the full stage chain (token bucket -> worker -> reply).
trace_client() {
  local i rid line
  exec 6<>/dev/tcp/127.0.0.1/19186
  for ((i = 0; i < 30; i++)); do
    rid=$((9990500 + i))
    printf 'REQ %s 0 - %s\n' "$rid" "$rid" >&6
    IFS= read -r -t 5 line <&6 || break
    case "$line" in OK*) echo "$rid"; exec 6<&- 6>&-; return 0 ;; esac
  done
  exec 6<&- 6>&-
  return 1
}
traced_id=$(trace_client) \
  || { echo "trace smoke: no hand-traced request was served"; exit 1; }
scrape_trace() {
  exec 3<>/dev/tcp/127.0.0.1/19184
  printf 'GET /trace/%s HTTP/1.1\r\nHost: localhost\r\n\r\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}
tr=$(scrape_trace "$traced_id")
grep -q '"stage":"worker"' <<<"$tr" \
  || { echo "trace smoke: /trace/$traced_id missing the worker stage"; exit 1; }
grep -q '"stage":"reply"' <<<"$tr" \
  || { echo "trace smoke: /trace/$traced_id missing the reply stage"; exit 1; }

sleep 1
m2=$(scrape_metrics)
wait "$live_pid"
grep -q '^# TYPE topfull_request_duration_seconds histogram' <<<"$m1" \
  || { echo "metrics smoke: latency histogram missing"; exit 1; }
grep -q 'topfull_gateway_requests_total{api="ping",verdict="admitted"}' <<<"$m1" \
  || { echo "metrics smoke: per-API admit counter missing"; exit 1; }
grep -q 'topfull_gateway_requests_total{api="ping",verdict="rejected"}' <<<"$m1" \
  || { echo "metrics smoke: per-API reject counter missing"; exit 1; }
c1=$(grep -o 'verdict="admitted"} [0-9.]*' <<<"$m1" | awk '{print int($2)}')
c2=$(grep -o 'verdict="admitted"} [0-9.]*' <<<"$m2" | awk '{print int($2)}')
[ "$c2" -ge "$c1" ] && [ "$c2" -gt 0 ] \
  || { echo "metrics smoke: admit counter not monotone ($c1 -> $c2)"; exit 1; }
hits=$(grep -o 'topfull_coalesce_hit_total{[^}]*} [0-9.]*' <<<"$m2" \
  | awk '{s += int($2)} END {print s + 0}')
[ "$hits" -gt 0 ] \
  || { echo "coalesce smoke: no coalesce hits on /metrics after duplicate burst"; exit 1; }

# SLO observability smoke: the scrape must carry the per-API burn-rate
# gauges (the live analogue of the harness's SloMonitor) and at least
# one exemplar-bearing latency bucket — the loadgen traces every 64th
# request, and completions stamp their bucket with the trace id.
grep -q '^# TYPE topfull_slo_burn_rate gauge' <<<"$m2" \
  || { echo "slo smoke: burn-rate gauge missing from /metrics"; exit 1; }
grep -q '^# TYPE topfull_slo_budget_remaining gauge' <<<"$m2" \
  || { echo "slo smoke: budget gauge missing from /metrics"; exit 1; }
grep -q '# {trace_id="' <<<"$m2" \
  || { echo "slo smoke: no exemplar on any latency bucket"; exit 1; }
grep -q '^# TYPE topfull_loop_stage_seconds histogram' <<<"$m2" \
  || { echo "slo smoke: per-stage event-loop histograms missing"; exit 1; }

# Sharded live smoke: 3 real gateway shards under one logical
# controller, shard 1 SIGKILLed mid-run. The fleet must drain cleanly
# (exit 0), journal the strike-out, and redistribute the dead shard's
# quota to the survivors.
./target/release/topfull live scenarios/live_shards_smoke.json \
  --duration 4 --kill-shard 1@2 --json > /tmp/topfull_live_shards.json &
shards_pid=$!
scrape_shard_metrics() {
  exec 3<>/dev/tcp/127.0.0.1/19185
  printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
  cat <&3
  exec 3<&- 3>&-
}
sleep 1
sm=$(scrape_shard_metrics)
wait "$shards_pid" \
  || { echo "shard smoke: fleet did not drain cleanly after kill"; exit 1; }
grep -q 'shard="2"' <<<"$sm" \
  || { echo "shard smoke: fleet registry missing shard labels"; exit 1; }
grep -q 'struck out' /tmp/topfull_live_shards.json \
  || { echo "shard smoke: kill never journaled a strike-out"; exit 1; }
grep -Eq '"strike_outs": *1' /tmp/topfull_live_shards.json \
  || { echo "shard smoke: plane stats missing the strike-out"; exit 1; }

# Journal-fingerprint determinism: the same sharded scenario must
# journal identically no matter how many experiment workers surround it.
TOPFULL_WORKERS=1 ./target/release/topfull-sim run scenarios/sharded_surge.json --json \
  > /tmp/topfull_shard_w1.json
TOPFULL_WORKERS=4 ./target/release/topfull-sim run scenarios/sharded_surge.json --json \
  > /tmp/topfull_shard_w4.json
fp1=$(./target/release/topfull explain /tmp/topfull_shard_w1.json --fingerprint)
fp4=$(./target/release/topfull explain /tmp/topfull_shard_w4.json --fingerprint)
[ -n "$fp1" ] && [ "$fp1" = "$fp4" ] \
  || { echo "fingerprint smoke: journal diverged across workers ($fp1 vs $fp4)"; exit 1; }

# Admission-journal determinism: the front-door scenario (coalescing
# verdict windows + priority-threshold moves in the journal) must
# fingerprint identically across worker counts too.
TOPFULL_WORKERS=1 ./target/release/topfull-sim run scenarios/read_flash_crowd.json --json \
  > /tmp/topfull_adm_w1.json
TOPFULL_WORKERS=4 ./target/release/topfull-sim run scenarios/read_flash_crowd.json --json \
  > /tmp/topfull_adm_w4.json
afp1=$(./target/release/topfull explain /tmp/topfull_adm_w1.json --fingerprint)
afp4=$(./target/release/topfull explain /tmp/topfull_adm_w4.json --fingerprint)
[ -n "$afp1" ] && [ "$afp1" = "$afp4" ] \
  || { echo "admission fingerprint smoke: journal diverged across workers ($afp1 vs $afp4)"; exit 1; }
./target/release/topfull explain /tmp/topfull_adm_w1.json | grep -q 'frontdoor' \
  || { echo "admission fingerprint smoke: no front-door windows in journal"; exit 1; }

# Decision-journal smoke: `topfull explain` must render the journal
# embedded in a committed experiment artifact.
./target/release/topfull explain artifacts/results/multishard.json \
  | grep -q 'rate actions:' \
  || { echo "explain smoke: no rate actions in multishard journal"; exit 1; }

# Trace + burn-journal smoke on committed artifacts: `topfull trace`
# must render the checked-in live-run trace sample as a waterfall, and
# `topfull explain` must interleave the `figures slo` artifact's
# SloBurn escalations.
./target/release/topfull trace artifacts/traces/sample.jsonl \
  | grep -q 'worker' \
  || { echo "trace smoke: committed sample renders no worker stage"; exit 1; }
./target/release/topfull trace artifacts/traces/sample.jsonl --id 9990003 \
  | grep -q 'trace 9990003' \
  || { echo "trace smoke: --id filter lost the requested trace"; exit 1; }
./target/release/topfull explain artifacts/results/slo.json \
  | grep -q 'slo-burn' \
  || { echo "explain smoke: no slo-burn entries in the slo figure journal"; exit 1; }
./target/release/topfull explain artifacts/results/slo.json \
  | grep -q 'page escalation' \
  || { echo "explain smoke: slo journal summary missing page escalations"; exit 1; }

# Scenario corpus dry-run: every committed scenario artifact must
# validate without running — plain scenarios through the simulator's
# check mode, workflow genomes through the workflow compiler, matrix
# specs cell by cell.
for f in scenarios/*.json scenarios/found/*.json; do
  case "$f" in *.workflow.json) continue ;; esac
  ./target/release/topfull-sim check "$f" > /dev/null \
    || { echo "scenario check failed: $f"; exit 1; }
done
for f in scenarios/workflows/*.workflow.json scenarios/found/*.workflow.json; do
  ./target/release/topfull workflow "$f" --check > /dev/null \
    || { echo "workflow check failed: $f"; exit 1; }
done
for f in scenarios/matrix/*.json; do
  ./target/release/topfull matrix "$f" --check > /dev/null \
    || { echo "matrix check failed: $f"; exit 1; }
done

# Fuzz smoke: a fixed seed must be byte-for-byte reproducible, and the
# shipped controller must survive it with no objective tripped (the
# found-and-fixed corpus in scenarios/found/ is pinned by regression
# tests instead). Exit 3 would mean the fuzzer found a new weakness.
rm -rf /tmp/topfull_fuzz_a /tmp/topfull_fuzz_b
./target/release/topfull fuzz --seed 1 --iters 12 --out /tmp/topfull_fuzz_a --json \
  > /tmp/topfull_fuzz_a.json \
  || { echo "fuzz smoke: fuzzer tripped an objective on the shipped controller"; exit 1; }
./target/release/topfull fuzz --seed 1 --iters 12 --out /tmp/topfull_fuzz_b --json \
  > /tmp/topfull_fuzz_b.json \
  || { echo "fuzz smoke: fuzzer tripped an objective on the shipped controller"; exit 1; }
cmp -s /tmp/topfull_fuzz_a.json /tmp/topfull_fuzz_b.json \
  || { echo "fuzz smoke: same seed produced different reports"; exit 1; }

# Matrix smoke: the committed arm matrix must expand to all 12 cells
# (2 workloads x 2 fault plans x 3 arms) and report identically no
# matter how many workers execute it.
./target/release/topfull matrix scenarios/matrix/overload_arms.json --workers 1 --json \
  > /tmp/topfull_matrix_w1.json
./target/release/topfull matrix scenarios/matrix/overload_arms.json --workers 4 --json \
  > /tmp/topfull_matrix_w4.json
cmp -s /tmp/topfull_matrix_w1.json /tmp/topfull_matrix_w4.json \
  || { echo "matrix smoke: report depends on worker count"; exit 1; }
cells=$(grep -c '"journal_fingerprint"' /tmp/topfull_matrix_w1.json)
[ "$cells" -eq 12 ] \
  || { echo "matrix smoke: expected 12 cells, got $cells"; exit 1; }
grep -q '"cells": 12' /tmp/topfull_matrix_w1.json \
  || { echo "matrix smoke: cell count missing from report"; exit 1; }

echo "tier-1 verify: OK"
