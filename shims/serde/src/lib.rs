//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, this shim converts through an
//! owned JSON-like [`Value`] tree: `Serialize` renders to a `Value`,
//! `Deserialize` reads from one. `serde_json` (the sibling shim) handles
//! the text encoding. The derive macros (`serde_derive`, re-exported
//! here) generate `to_value` / `from_value` bodies supporting the
//! attribute forms this workspace actually uses: `#[serde(default)]`,
//! `#[serde(default = "path")]`, and container-level
//! `#[serde(tag = "...", rename_all = "snake_case")]`.
//!
//! Behavioral parity notes (matching serde_json where the workspace can
//! observe it): non-finite floats serialize to `null`; newtype structs
//! are transparent; unit enum variants serialize as strings; missing
//! fields deserialize as `None` for `Option` and error otherwise.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the interchange format between the traits
/// and the `serde_json` text codec.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Any JSON integer; `i128` covers the full `u64` and `i64` ranges.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered, so serialized output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus breadcrumb context.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn missing_field(key: &str) -> Self {
        Error {
            msg: format!("missing field `{key}`"),
        }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error {
            msg: format!("expected {what}, found {kind}"),
        }
    }

    /// Add field context to an inner error.
    pub fn in_field(self, key: &str) -> Self {
        Error {
            msg: format!("{}: {}", key, self.msg),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Build from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can deserialize into
// the dynamic tree (`serde_json::from_str::<Value>`) to inspect raw
// structure — e.g. to validate keys — before a typed parse.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Derive-support helpers (called from generated code).
// ---------------------------------------------------------------------

/// Required-field lookup. A missing field is probed against `Null` so
/// `Option<T>` fields behave as optional, matching serde.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => match v.get(key) {
            Some(fv) => T::from_value(fv).map_err(|e| e.in_field(key)),
            None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(key)),
        },
        other => Err(Error::expected("object", other)),
    }
}

/// `#[serde(default)]` / `#[serde(default = "path")]` field lookup.
pub fn de_field_or<T, F>(v: &Value, key: &str, default: F) -> Result<T, Error>
where
    T: Deserialize,
    F: FnOnce() -> T,
{
    match v {
        Value::Object(_) => match v.get(key) {
            Some(fv) => T::from_value(fv).map_err(|e| e.in_field(key)),
            None => Ok(default()),
        },
        other => Err(Error::expected("object", other)),
    }
}

/// Externally-tagged enum helper: a single-key object is
/// `{"Variant": payload}`.
pub fn as_variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(fields) if fields.len() == 1 => Some((fields[0].0.as_str(), &fields[0].1)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Primitive and container impls.
// ---------------------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // serde_json renders non-finite floats as null.
                if self.is_finite() {
                    Value::Float(f64::from(*self))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) if xs.len() == 2 => {
                Ok((A::from_value(&xs[0])?, B::from_value(&xs[1])?))
            }
            other => Err(Error::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) if xs.len() == 3 => Ok((
                A::from_value(&xs[0])?,
                B::from_value(&xs[1])?,
                C::from_value(&xs[2])?,
            )),
            other => Err(Error::expected("3-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) if xs.len() == 4 => Ok((
                A::from_value(&xs[0])?,
                B::from_value(&xs[1])?,
                C::from_value(&xs[2])?,
                D::from_value(&xs[3])?,
            )),
            other => Err(Error::expected("4-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        let got: Option<u32> = de_field(&v, "b").unwrap();
        assert!(got.is_none());
        let got: u32 = de_field(&v, "a").unwrap();
        assert_eq!(got, 1);
        assert!(de_field::<u32>(&v, "b").is_err());
    }

    #[test]
    fn default_field_lookup() {
        let v = Value::Object(vec![]);
        let got: u64 = de_field_or(&v, "seed", || 42).unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(u8::from_value(&Value::Int(7)).unwrap(), 7);
        // Floats promote from ints but not vice versa.
        assert_eq!(f64::from_value(&Value::Int(7)).unwrap(), 7.0);
        assert!(u8::from_value(&Value::Float(7.0)).is_err());
    }
}
