//! Offline shim for `parking_lot`'s `Mutex` / `RwLock` over the std
//! primitives. Poisoning is erased (lock acquisition recovers the guard
//! on poison), matching parking_lot's poison-free semantics.

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
