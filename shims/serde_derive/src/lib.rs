//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. No syn/quote: the item is parsed directly from
//! `proc_macro::TokenTree`s and the impl is generated as a string.
//!
//! Supported shapes — exactly what this workspace derives on:
//! - named-field structs, with `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes;
//! - tuple structs (newtypes serialize transparently);
//! - enums with unit / newtype / tuple / struct variants, externally
//!   tagged by default or internally tagged via container-level
//!   `#[serde(tag = "...", rename_all = "snake_case")]`.
//!
//! Generics, lifetimes, and other serde attributes are intentionally
//! unsupported and produce a compile error rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    data: Data,
    /// Container `#[serde(tag = "...")]` (internally tagged enum).
    tag: Option<String>,
    /// Container `#[serde(rename_all = "snake_case")]`.
    snake: bool,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Path of the default fn, when `#[serde(default [= "path"])]` is set.
    default: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Serde attribute content relevant at either container or field level.
#[derive(Default)]
struct SerdeAttrs {
    default: Option<String>,
    tag: Option<String>,
    snake: bool,
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parse the tokens inside `#[serde( ... )]`.
fn parse_serde_attr(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        let value = match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Literal(l)) => Some(strip_quotes(&l.to_string())),
                    other => panic!("serde attr `{key}` expects a string literal, got {other:?}"),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("default", None) => {
                attrs.default = Some("::std::default::Default::default".to_string());
            }
            ("default", Some(path)) => attrs.default = Some(path),
            ("tag", Some(t)) => attrs.tag = Some(t),
            ("rename_all", Some(style)) => {
                assert_eq!(
                    style, "snake_case",
                    "only rename_all = \"snake_case\" is supported"
                );
                attrs.snake = true;
            }
            (other, _) => panic!("unsupported serde attribute `{other}`"),
        }
    }
}

/// Consume one leading attribute (`# [ ... ]`) if present; feed serde
/// attrs into `attrs`, skip everything else (doc comments etc.).
fn take_attr(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    attrs: &mut SerdeAttrs,
) -> bool {
    match iter.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            iter.next();
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(id)) = inner.next() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                parse_serde_attr(args.stream(), attrs);
                            }
                        }
                    }
                }
                other => panic!("malformed attribute: {other:?}"),
            }
            true
        }
        _ => false,
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Skip a type (after `:`), stopping at a top-level `,`. Tracks `<`/`>`
/// depth so commas inside generic args don't split fields.
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                iter.next();
                return;
            }
            _ => {}
        }
        iter.next();
    }
}

/// Parse `{ name: Type, ... }` fields with their serde attrs.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut attrs = SerdeAttrs::default();
        while take_attr(&mut iter, &mut attrs) {}
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    fields
}

/// Count tuple-struct / tuple-variant fields: top-level commas + 1.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in stream {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        return 0;
    }
    commas + 1 - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let mut attrs = SerdeAttrs::default();
        while take_attr(&mut iter, &mut attrs) {}
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Optional trailing comma.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut attrs = SerdeAttrs::default();
    loop {
        if take_attr(&mut iter, &mut attrs) {
            continue;
        }
        match iter.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                skip_visibility(&mut iter);
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break;
            }
            other => panic!("unexpected token before item keyword: {other:?}"),
        }
    }
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        assert_ne!(
            p.as_char(),
            '<',
            "serde shim derive does not support generic type `{name}`"
        );
    }
    let data = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                Data::NamedStruct(parse_named_fields(g.stream()))
            } else {
                Data::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(keyword, "struct");
            Data::TupleStruct(count_tuple_fields(g.stream()))
        }
        other => panic!("unsupported item body for `{name}`: {other:?}"),
    };
    Item {
        name,
        data,
        tag: attrs.tag,
        snake: attrs.snake,
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn snake_case(s: &str) -> String {
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl Item {
    fn variant_name(&self, v: &Variant) -> String {
        if self.snake {
            snake_case(&v.name)
        } else {
            v.name.clone()
        }
    }
}

fn ser_named_fields(fields: &[Field], prefix: &str) -> String {
    let mut out = String::from("let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&{prefix}{n})));\n",
            n = f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            format!(
                "{}serde::Value::Object(__fields)",
                ser_named_fields(fields, "self.")
            )
        }
        Data::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = item.variant_name(v);
                let arm = match (&v.kind, &item.tag) {
                    (VariantKind::Unit, None) => format!(
                        "{name}::{v} => serde::Value::Str(\"{vname}\".to_string()),\n",
                        v = v.name
                    ),
                    (VariantKind::Unit, Some(tag)) => format!(
                        "{name}::{v} => serde::Value::Object(vec![(\"{tag}\".to_string(), \
                         serde::Value::Str(\"{vname}\".to_string()))]),\n",
                        v = v.name
                    ),
                    (VariantKind::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(\"{vname}\"\
                             .to_string(), {payload})]),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                    (VariantKind::Tuple(_), Some(_)) => panic!(
                        "tuple variant `{}` not supported in internally-tagged enum `{name}`",
                        v.name
                    ),
                    (VariantKind::Struct(fields), tag) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = match tag {
                            Some(t) => format!(
                                "let mut __fields: Vec<(String, serde::Value)> = \
                                 vec![(\"{t}\".to_string(), serde::Value::Str(\"{vname}\"\
                                 .to_string()))];\n"
                            ),
                            None => "let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n"
                                .to_string(),
                        };
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((\"{n}\".to_string(), \
                                 serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        let payload = if tag.is_some() {
                            "serde::Value::Object(__fields)".to_string()
                        } else {
                            format!(
                                "serde::Value::Object(vec![(\"{vname}\".to_string(), \
                                 serde::Value::Object(__fields))])"
                            )
                        };
                        format!(
                            "{name}::{v} {{ {binds} }} => {{ {inner} {payload} }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn de_named_fields(fields: &[Field], src: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = match &f.default {
            Some(path) => format!("serde::de_field_or({src}, \"{n}\", {path})?", n = f.name),
            None => format!("serde::de_field({src}, \"{n}\")?", n = f.name),
        };
        out.push_str(&format!("{n}: {expr},\n", n = f.name));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            format!("Ok({name} {{\n{}}})", de_named_fields(fields, "__v"))
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__xs[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     serde::Value::Array(__xs) if __xs.len() == {n} => \
                         Ok({name}({elems})),\n\
                     __other => Err(serde::Error::expected(\"{n}-element array\", __other)),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Data::Enum(variants) => match &item.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = item.variant_name(v);
                    match &v.kind {
                        VariantKind::Unit => {
                            arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v} {{\n{fields}}}),\n",
                                v = v.name,
                                fields = de_named_fields(fields, "__v")
                            ));
                        }
                        VariantKind::Tuple(_) => panic!(
                            "tuple variant `{}` not supported in internally-tagged enum `{name}`",
                            v.name
                        ),
                    }
                }
                format!(
                    "let __tag: String = serde::de_field(__v, \"{tag}\")?;\n\
                     match __tag.as_str() {{\n{arms}\
                         __other => Err(serde::Error::custom(format!(\
                             \"unknown {name} variant `{{__other}}`\"))),\n\
                     }}"
                )
            }
            None => {
                let units: Vec<&Variant> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .collect();
                let payloads: Vec<&Variant> = variants
                    .iter()
                    .filter(|v| !matches!(v.kind, VariantKind::Unit))
                    .collect();
                let mut out = String::new();
                if !units.is_empty() {
                    let mut arms = String::new();
                    for v in &units {
                        arms.push_str(&format!(
                            "\"{vname}\" => return Ok({name}::{v}),\n",
                            vname = item.variant_name(v),
                            v = v.name
                        ));
                    }
                    out.push_str(&format!(
                        "if let serde::Value::Str(__s) = __v {{\n\
                             match __s.as_str() {{\n{arms}_ => {{}}\n}}\n\
                         }}\n"
                    ));
                }
                if !payloads.is_empty() {
                    let mut arms = String::new();
                    for v in &payloads {
                        let vname = item.variant_name(v);
                        match &v.kind {
                            VariantKind::Tuple(1) => arms.push_str(&format!(
                                "\"{vname}\" => return Ok({name}::{v}(\
                                 serde::Deserialize::from_value(__inner)?)),\n",
                                v = v.name
                            )),
                            VariantKind::Tuple(n) => {
                                let elems: Vec<String> = (0..*n)
                                    .map(|i| format!("serde::Deserialize::from_value(&__xs[{i}])?"))
                                    .collect();
                                arms.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                         let serde::Value::Array(__xs) = __inner else {{\n\
                                             return Err(serde::Error::expected(\
                                                 \"{n}-element array\", __inner));\n\
                                         }};\n\
                                         if __xs.len() != {n} {{\n\
                                             return Err(serde::Error::expected(\
                                                 \"{n}-element array\", __inner));\n\
                                         }}\n\
                                         return Ok({name}::{v}({elems}));\n\
                                     }}\n",
                                    v = v.name,
                                    elems = elems.join(", ")
                                ));
                            }
                            VariantKind::Struct(fields) => arms.push_str(&format!(
                                "\"{vname}\" => return Ok({name}::{v} {{\n{fields}}}),\n",
                                v = v.name,
                                fields = de_named_fields(fields, "__inner")
                            )),
                            VariantKind::Unit => unreachable!(),
                        }
                    }
                    out.push_str(&format!(
                        "if let Some((__k, __inner)) = serde::as_variant(__v) {{\n\
                             match __k {{\n{arms}_ => {{}}\n}}\n\
                         }}\n"
                    ));
                }
                out.push_str(&format!(
                    "Err(serde::Error::custom(\"unrecognized {name} variant\"))"
                ));
                out
            }
        },
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
