//! Offline shim for the subset of `proptest` this workspace uses:
//! `Strategy` with `prop_map`, range / `any` / collection strategies, the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce; there is no shrinking — the failing inputs are printed via
//! the assertion message instead.

use rand::rngs::SmallRng;
use rand::Rng;

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG.
    pub struct TestRng(pub(crate) super::SmallRng);

    impl TestRng {
        /// Seed from the test name (FNV-1a), so each test gets a stable,
        /// distinct stream.
        pub fn deterministic(name: &str) -> Self {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(super::SmallRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }
    }
}

use test_runner::TestRng;

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `any::<T>()`: the type's natural full-range strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a natural full-range generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection size specification: a count or a range of counts.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<std::ops::Range<i32>> for SizeRange {
    fn from(r: std::ops::Range<i32>) -> Self {
        SizeRange::from(r.start as usize..r.end as usize)
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`, target size drawn from
    /// `size`. May come out smaller if the element domain is too small
    /// to produce enough distinct values (mirrors proptest's behavior of
    /// bounded retries).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `proptest::prelude`-style glob import surface.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

/// The `prop::` namespace (`prop::collection::vec(...)` etc.).
pub mod prop {
    pub use crate::collection;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` inner
/// attribute followed by test functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let s = crate::prop::collection::vec(0u32..10, 3..=5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
        let set = crate::prop::collection::btree_set(0u32..4, 1..4);
        for _ in 0..100 {
            let v = set.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_works(
            x in 0u64..100,
            flips in prop::collection::vec(any::<bool>(), 4),
            (a, b) in (0i32..5, 5i32..10),
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(flips.len(), 4);
            prop_assert!(a < b, "a {} b {}", a, b);
        }
    }
}
