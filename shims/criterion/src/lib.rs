//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion::bench_function`, `Criterion::benchmark_group`,
//! `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs a short calibrated loop and
//! prints mean ns/iter — enough for the repo's relative overhead
//! benches, with the same source-level API.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    /// Target wall time per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow iteration count until one batch is ~10ms.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || b.iters >= 1 << 30 {
                break;
            }
            b.iters *= 2;
        }
        // Measure.
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        while total < self.measure {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }
        let ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("bench: {name:<40} {ns:>12.1} ns/iter ({total_iters} iters)");
        self
    }

    /// Group benchmarks under a common name prefix (criterion's
    /// `BenchmarkGroup`, minus the statistical configuration — the
    /// shim's calibrated loop ignores sample-size hints).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group of benchmarks; results print as `group/name`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's fixed measuring
    /// window makes sample counts moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        self.c.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
