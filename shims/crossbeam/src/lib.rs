//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with spawned closures that receive the
//! scope handle. Implemented over `std::thread::scope` (stable since
//! Rust 1.63), so soundness comes from std.
//!
//! API differences from real crossbeam are confined to what the
//! workspace never relies on: `scope` itself returns
//! `Ok(...)`unconditionally (std scopes propagate child panics by
//! resuming them on join, which the workspace treats as fatal anyway).

pub mod thread {
    use std::marker::PhantomData;

    /// Handle passed to `scope`'s closure and to each spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle
        /// (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
            'env: 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope {
                        inner,
                        _marker: PhantomData,
                    };
                    f(&scope)
                }),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            // std's ScopedJoinHandle::join already returns Result rather
            // than resuming the panic, matching crossbeam.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || self.inner.join()))
                .and_then(|r| r)
        }
    }

    /// Run `f` with a scope; all threads spawned in the scope are joined
    /// before this returns.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope {
                    inner: s,
                    _marker: PhantomData,
                };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|x| scope.spawn(move |_| *x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn child_panic_surfaces_via_join() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        });
        // Join inside the scope returns Err; the scope itself succeeds.
        assert!(res.unwrap().is_err());
    }
}
