//! Offline shim for the subset of `rand_distr` 0.4 this workspace uses:
//! `Normal`, `LogNormal`, and `Exp`, all over `f64`. Sampling uses the
//! Box–Muller transform (normal) and inverse-CDF (exponential) —
//! statistically exact, deterministic given the shimmed `rand` streams.

pub use rand::distributions::Distribution;
use rand::RngCore;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation (or rate) was negative, zero where positive is
    /// required, or non-finite.
    BadParam,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

#[inline]
fn unit_open_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1]: avoids ln(0) in Box–Muller / inverse-CDF.
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open_f64(rng);
    let u2 = unit_open_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadParam);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: exp(N(mu, sigma)).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution with rate lambda.
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error::BadParam);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open_f64(rng).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Exp::new(4.0).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
        assert!(xs.iter().all(|x| *x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn lognormal_unit_mean_construction() {
        // LogNormal::new(-s^2/2, s) has mean 1 — the jitter construction
        // used by the cluster engine.
        let mut rng = SmallRng::seed_from_u64(3);
        let s = 0.3;
        let d = LogNormal::new(-s * s / 2.0, s).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-2.0).is_err());
    }
}
