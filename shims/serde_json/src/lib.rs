//! Offline JSON codec for the serde shim: `to_string`,
//! `to_string_pretty`, and `from_str` over [`serde::Value`].

use serde::{Deserialize, Serialize, Value};

pub use serde::Value as JsonValue;

/// Parse or data-model error. Carries a byte offset for parse errors.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
    /// Byte offset in the input, when known.
    at: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, at: usize) -> Self {
        Error {
            msg: msg.into(),
            at: Some(at),
        }
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            msg: e.to_string(),
            at: None,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.at {
            Some(at) => write!(f, "{} at byte {at}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON. Infallible for this shim's data model, but
/// keeps serde_json's `Result` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (2-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognizably float ("1.0", as serde_json).
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn newline_indent(out: &mut String, indent: usize, level: usize) {
    out.push('\n');
    out.extend(std::iter::repeat_n(' ', indent * level));
}

fn write_value(v: &Value, out: &mut String, pretty: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = pretty {
                    newline_indent(out, ind, level + 1);
                }
                write_value(x, out, pretty, level + 1);
            }
            if let Some(ind) = pretty {
                newline_indent(out, ind, level);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = pretty {
                    newline_indent(out, ind, level + 1);
                }
                write_escaped(k, out);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(x, out, pretty, level + 1);
            }
            if let Some(ind) = pretty {
                newline_indent(out, ind, level);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::parse("invalid literal", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid utf-8", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| Error::parse("invalid \\u escape", self.pos))?,
                            );
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos - 1)),
                    }
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
        let s =
            std::str::from_utf8(chunk).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse("invalid number", start))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::parse("invalid number", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\"\\\n".to_string()).unwrap(), r#""hi\"\\\n""#);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<String>(r#""aA\n""#).unwrap(), "aA\n");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), 2.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",1.0],["b",2.5]]"#);
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = from_str::<u32>("[1,").unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
        assert!(from_str::<u32>("42 garbage").is_err());
        assert!(from_str::<u32>("{\"a\": }").is_err());
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
