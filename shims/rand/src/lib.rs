//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation: `SmallRng` is
//! xoshiro256++ seeded through SplitMix64 (the same construction real
//! `rand` 0.8 uses for its 64-bit `SmallRng`), plus the `Rng` /
//! `SeedableRng` / `SliceRandom` surfaces and a uniform `Standard`
//! distribution. Statistical quality matches the upstream generator;
//! exact streams differ, which is fine — nothing in the workspace pins
//! upstream bit-streams.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Iterator of samples from `distr`, consuming the RNG.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire) without the rejection step: bias is
    // ≤ span/2^64, far below anything a simulation can observe.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0..=127);
            assert!(x <= 127);
            let y: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&y));
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }
}
