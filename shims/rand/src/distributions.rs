//! Distribution trait and the uniform `Standard` distribution.

use crate::{unit_f64, RngCore};

/// Types that can produce samples of `T` from raw randomness.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// Iterator of samples, consuming the RNG (mirrors upstream).
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: RngCore,
        Self: Sized,
    {
        DistIter::new(self, rng)
    }
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Iterator yielding an endless stream of samples.
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
