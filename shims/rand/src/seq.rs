//! Slice sampling helpers (`SliceRandom`).

use crate::{u64_below, RngCore};

pub trait SliceRandom {
    type Item;

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: RngCore + ?Sized;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: RngCore + ?Sized;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R>(&self, rng: &mut R) -> Option<&T>
    where
        R: RngCore + ?Sized,
    {
        if self.is_empty() {
            None
        } else {
            Some(&self[u64_below(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: RngCore + ?Sized,
    {
        for i in (1..self.len()).rev() {
            let j = u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [1u32, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
