//! # topfull-suite — facade over the TopFull reproduction workspace
//!
//! Re-exports every workspace crate so examples and integration tests can
//! depend on a single package:
//!
//! * [`simnet`] — discrete-event simulation substrate.
//! * [`cluster`] — microservice cluster simulator (pods, execution paths,
//!   gateway, autoscaler, failures).
//! * [`apps`] — benchmark topologies (Online Boutique, Train Ticket,
//!   Alibaba real-trace demo).
//! * [`rl`] — from-scratch PPO and the Sim2Real training pipeline.
//! * [`topfull`] — the paper's contribution: adaptive top-down overload
//!   control.
//! * [`baselines`] — DAGOR, Breakwater and no-control comparators.
//! * [`topfull_cli`] — the `topfull-sim` JSON scenario runner.

pub use apps;
pub use baselines;
pub use cluster;
pub use rl;
pub use simnet;
pub use topfull;
pub use topfull_cli;
