//! Policy diagnostics: inspect what a trained rate controller will do.
//!
//! The whole controller hinges on a 2-dim → 1-dim function, so it can be
//! audited exhaustively: [`action_surface`] samples the policy over the
//! (goodput-ratio, latency-ratio) grid, and [`PolicyAudit`] checks the
//! qualitative properties a safe overload-control policy must have —
//! aggressive cuts under deep overload, gentle probing near the optimum,
//! recovery when underutilized (§4.3: "an effective rate controller
//! should make aggressive decisions in the initial phase of overload
//! according to its severity and then finely adjust the rate-limit").
//!
//! The experiment harness prints audits next to training reports, and the
//! controller tests gate on them before trusting a policy.

use crate::policy::PolicyValue;
use serde::Serialize;

/// The policy's action over a state grid.
#[derive(Clone, Debug, Serialize)]
pub struct ActionSurface {
    /// Goodput-ratio axis values.
    pub ratios: Vec<f64>,
    /// Latency-ratio axis values.
    pub latencies: Vec<f64>,
    /// `actions[i][j]` = action at `(ratios[i], latencies[j])`.
    pub actions: Vec<Vec<f64>>,
}

/// Sample the deterministic policy over a regular grid.
pub fn action_surface(
    policy: &PolicyValue,
    ratio_range: (f64, f64),
    latency_range: (f64, f64),
    steps: usize,
) -> ActionSurface {
    let steps = steps.max(2);
    let axis = |lo: f64, hi: f64| -> Vec<f64> {
        (0..steps)
            .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
            .collect()
    };
    let ratios = axis(ratio_range.0, ratio_range.1);
    let latencies = axis(latency_range.0, latency_range.1);
    let actions = ratios
        .iter()
        .map(|r| {
            latencies
                .iter()
                .map(|l| policy.act_deterministic(&[*r, *l]))
                .collect()
        })
        .collect();
    ActionSurface {
        ratios,
        latencies,
        actions,
    }
}

impl ActionSurface {
    /// Render as a compact ASCII heat map (rows = goodput ratio,
    /// columns = latency ratio; `-`/`+` intensity = cut/raise).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "rows: goodput/limit {:.2}..{:.2}; cols: latency/SLO {:.2}..{:.2}",
            self.ratios.first().copied().unwrap_or(0.0),
            self.ratios.last().copied().unwrap_or(0.0),
            self.latencies.first().copied().unwrap_or(0.0),
            self.latencies.last().copied().unwrap_or(0.0),
        );
        for row in &self.actions {
            for a in row {
                let c = match *a {
                    x if x <= -0.4 => 'X',
                    x if x <= -0.2 => 'x',
                    x if x < -0.02 => '-',
                    x if x < 0.02 => '.',
                    x if x < 0.2 => '+',
                    _ => 'P',
                };
                s.push(c);
            }
            s.push('\n');
        }
        s
    }
}

/// Qualitative audit of a rate-controller policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PolicyAudit {
    /// Cuts hard (≤ -0.3) under deep overload (low ratio, high latency).
    pub cuts_under_deep_overload: bool,
    /// Raises (> 0) when fully utilized with low latency.
    pub raises_when_healthy: bool,
    /// Action magnitude near the presumed optimum (ratio ≈ 1,
    /// latency ≈ 0.5) is small (|a| < 0.15) — fine adjustment.
    pub gentle_near_optimum: bool,
    /// Monotone-ish in latency: at ratio 1, the action at latency 2.0 is
    /// at most the action at latency 0.2.
    pub latency_monotone: bool,
}

impl PolicyAudit {
    /// Run the audit.
    pub fn run(policy: &PolicyValue) -> PolicyAudit {
        let act = |r: f64, l: f64| policy.act_deterministic(&[r, l]);
        PolicyAudit {
            cuts_under_deep_overload: act(0.3, 3.0) <= -0.3 && act(0.2, 5.0) <= -0.3,
            raises_when_healthy: act(1.0, 0.05) > 0.0 && act(1.2, 0.1) > 0.0,
            gentle_near_optimum: act(0.95, 0.5).abs() < 0.15,
            latency_monotone: act(1.0, 2.0) <= act(1.0, 0.2),
        }
    }

    /// All properties hold.
    pub fn passes(&self) -> bool {
        self.cuts_under_deep_overload
            && self.raises_when_healthy
            && self.gentle_near_optimum
            && self.latency_monotone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_env::GraphEnv;
    use crate::ppo::PpoConfig;
    use crate::trainer::{Trainer, TrainerConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn surface_has_grid_shape() {
        let p = PolicyValue::new(2, &mut SmallRng::seed_from_u64(1));
        let s = action_surface(&p, (0.0, 2.0), (0.0, 5.0), 8);
        assert_eq!(s.ratios.len(), 8);
        assert_eq!(s.latencies.len(), 8);
        assert_eq!(s.actions.len(), 8);
        assert!(s.actions.iter().all(|r| r.len() == 8));
        assert!(s.actions.iter().flatten().all(|a| (-0.5..=0.5).contains(a)));
    }

    #[test]
    fn render_is_one_char_per_cell() {
        let p = PolicyValue::new(2, &mut SmallRng::seed_from_u64(2));
        let s = action_surface(&p, (0.0, 2.0), (0.0, 5.0), 6);
        let text = s.render();
        let rows: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.chars().count() == 6));
    }

    #[test]
    fn untrained_policy_fails_the_audit() {
        // An untrained network is near-zero everywhere: it won't cut hard
        // under deep overload.
        let p = PolicyValue::new(2, &mut SmallRng::seed_from_u64(3));
        let audit = PolicyAudit::run(&p);
        assert!(!audit.cuts_under_deep_overload);
        assert!(!audit.passes());
    }

    #[test]
    #[ignore = "trains a policy (~1 min); run with --ignored"]
    fn trained_policy_passes_the_audit() {
        let mut trainer = Trainer::new(TrainerConfig {
            ppo: PpoConfig::fast(),
            episodes: 2000,
            checkpoint_every: 200,
            validation_episodes: 8,
            workers: 4,
            seed: 77,
        });
        let report = trainer.train(GraphEnv::new);
        let audit = PolicyAudit::run(&report.best_model);
        assert!(audit.cuts_under_deep_overload, "{audit:?}");
        assert!(audit.raises_when_healthy, "{audit:?}");
        assert!(audit.latency_monotone, "{audit:?}");
    }
}
