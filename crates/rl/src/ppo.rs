//! Proximal Policy Optimization with adaptive KL penalty.
//!
//! The update follows RLlib's PPO (which the paper uses, §5): clipped
//! surrogate objective plus a KL penalty whose coefficient adapts toward
//! a KL target, generalized advantage estimation, minibatched SGD with
//! Adam. Defaults come from the paper's Table 1:
//!
//! | parameter | value |
//! |---|---|
//! | steps in episode | 50 |
//! | learning rate | 5e-5 |
//! | KL coeff | 0.2 |
//! | KL target | 0.01 |
//! | minibatch size | 128 |
//! | PPO clip | 0.3 |

use crate::nn::{clip_grad_norm, Adam};
use crate::policy::PolicyValue;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// PPO hyper-parameters (defaults = paper Table 1 + RLlib defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Steps per episode (episodes are time-limited, not terminal).
    pub steps_per_episode: usize,
    pub learning_rate: f64,
    pub kl_coeff: f64,
    pub kl_target: f64,
    pub minibatch_size: usize,
    pub clip_param: f64,
    /// Environment steps per training iteration.
    pub train_batch_size: usize,
    /// SGD passes over each batch.
    pub sgd_iters: usize,
    pub gamma: f64,
    pub gae_lambda: f64,
    pub vf_coeff: f64,
    pub grad_clip: f64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            steps_per_episode: 50,
            learning_rate: 5e-5,
            kl_coeff: 0.2,
            kl_target: 0.01,
            minibatch_size: 128,
            clip_param: 0.3,
            train_batch_size: 2000,
            sgd_iters: 10,
            gamma: 0.99,
            gae_lambda: 0.95,
            vf_coeff: 1.0,
            grad_clip: 10.0,
        }
    }
}

impl PpoConfig {
    /// A faster-converging profile for the experiment harness (larger
    /// learning rate, same structure). The paper-exact Table 1 settings
    /// are `PpoConfig::default()`.
    pub fn fast() -> Self {
        PpoConfig {
            learning_rate: 3e-4,
            ..PpoConfig::default()
        }
    }
}

/// One recorded episode (time-limited; values bootstrapped at the end).
#[derive(Clone, Debug, Default)]
pub struct Episode {
    pub states: Vec<[f64; 2]>,
    /// Unclipped Gaussian samples.
    pub raw_actions: Vec<f64>,
    pub log_probs: Vec<f64>,
    pub rewards: Vec<f64>,
    /// Value of the state *after* the last step (bootstrap).
    pub bootstrap_value: f64,
}

impl Episode {
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    pub fn total_reward(&self) -> f64 {
        self.rewards.iter().sum()
    }
}

/// Flattened training sample.
#[derive(Clone, Copy, Debug)]
struct Sample {
    state: [f64; 2],
    raw: f64,
    logp_old: f64,
    mean_old: f64,
    advantage: f64,
    ret: f64,
}

/// Statistics of one PPO update.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateStats {
    pub mean_kl: f64,
    pub policy_loss: f64,
    pub value_loss: f64,
    pub kl_coeff: f64,
    pub mean_reward_per_episode: f64,
}

/// The PPO learner: owns the model and optimizer state.
pub struct Ppo {
    pub config: PpoConfig,
    pub model: PolicyValue,
    kl_coeff: f64,
    opt_pi: Adam,
    opt_logstd: Adam,
    opt_vf: Adam,
}

impl Ppo {
    /// New learner around `model`.
    pub fn new(model: PolicyValue, config: PpoConfig) -> Self {
        let n_pi = model.pi.params.len();
        let n_vf = model.vf.params.len();
        Ppo {
            kl_coeff: config.kl_coeff,
            opt_pi: Adam::new(config.learning_rate, n_pi),
            opt_logstd: Adam::new(config.learning_rate, 1),
            opt_vf: Adam::new(config.learning_rate, n_vf),
            model,
            config,
        }
    }

    /// Current adaptive KL coefficient.
    pub fn kl_coeff(&self) -> f64 {
        self.kl_coeff
    }

    /// GAE over one episode, returning `(advantages, returns)`.
    fn gae(&self, ep: &Episode, values: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = ep.len();
        let (gamma, lambda) = (self.config.gamma, self.config.gae_lambda);
        let mut adv = vec![0.0; n];
        let mut next_value = ep.bootstrap_value;
        let mut next_adv = 0.0;
        for t in (0..n).rev() {
            let delta = ep.rewards[t] + gamma * next_value - values[t];
            next_adv = delta + gamma * lambda * next_adv;
            adv[t] = next_adv;
            next_value = values[t];
        }
        let ret: Vec<f64> = adv.iter().zip(values).map(|(a, v)| a + v).collect();
        (adv, ret)
    }

    /// One training update over a batch of episodes.
    pub fn update(&mut self, episodes: &[Episode], rng: &mut SmallRng) -> UpdateStats {
        // Flatten with GAE.
        let mut samples = Vec::new();
        for ep in episodes {
            if ep.is_empty() {
                continue;
            }
            let values: Vec<f64> = ep.states.iter().map(|s| self.model.value(s)).collect();
            let (adv, ret) = self.gae(ep, &values);
            for t in 0..ep.len() {
                samples.push(Sample {
                    state: ep.states[t],
                    raw: ep.raw_actions[t],
                    logp_old: ep.log_probs[t],
                    mean_old: 0.0, // filled below (old-policy mean)
                    advantage: adv[t],
                    ret: ret[t],
                });
            }
        }
        if samples.is_empty() {
            return UpdateStats::default();
        }
        // Old-policy means for the KL term, captured before any SGD step.
        for s in samples.iter_mut() {
            s.mean_old = self.model.pi.forward(&s.state)[0];
        }
        let log_std_old = self.model.log_std;
        // Advantage normalization.
        let mean_adv = samples.iter().map(|s| s.advantage).sum::<f64>() / samples.len() as f64;
        let var_adv = samples
            .iter()
            .map(|s| (s.advantage - mean_adv).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        let std_adv = var_adv.sqrt().max(1e-8);
        for s in samples.iter_mut() {
            s.advantage = (s.advantage - mean_adv) / std_adv;
        }

        let clip = self.config.clip_param;
        let mut stats = UpdateStats::default();
        let mut idx: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..self.config.sgd_iters {
            idx.shuffle(rng);
            for chunk in idx.chunks(self.config.minibatch_size) {
                let n = chunk.len() as f64;
                let mut g_pi = vec![0.0; self.model.pi.params.len()];
                let mut g_logstd = 0.0;
                let mut g_vf = vec![0.0; self.model.vf.params.len()];
                let std_new = self.model.log_std.exp();
                for &i in chunk {
                    let s = &samples[i];
                    // Policy forward (with tape for backprop).
                    let (out, tape) = self.model.pi.forward_tape(&s.state);
                    let mean = out[0];
                    let z = (s.raw - mean) / std_new;
                    let logp = -0.5 * z * z - self.model.log_std - 0.918_938_533_204_672_7;
                    let ratio = (logp - s.logp_old).exp();
                    let surr1 = ratio * s.advantage;
                    let surr2 = ratio.clamp(1.0 - clip, 1.0 + clip) * s.advantage;
                    // Clipped-surrogate gradient w.r.t. logp.
                    let g_logp_surr = if surr1 <= surr2 {
                        -ratio * s.advantage
                    } else {
                        0.0
                    };
                    // KL(old ‖ new) gradient.
                    let s_old = log_std_old.exp();
                    let dm = mean - s.mean_old;
                    let g_mean_kl = self.kl_coeff * dm / (std_new * std_new);
                    let g_logstd_kl =
                        self.kl_coeff * (1.0 - (s_old * s_old + dm * dm) / (std_new * std_new));
                    // Chain rule: dlogp/dmean = z/std, dlogp/dlogstd = z²−1.
                    let d_mean = g_logp_surr * (z / std_new) + g_mean_kl;
                    g_logstd += (g_logp_surr * (z * z - 1.0) + g_logstd_kl) / n;
                    self.model.pi.backward(&tape, &[d_mean / n], &mut g_pi);
                    stats.policy_loss += -surr1.min(surr2) / n;
                    // Value function.
                    let (vout, vtape) = self.model.vf.forward_tape(&s.state);
                    let verr = vout[0] - s.ret;
                    stats.value_loss += 0.5 * verr * verr / n;
                    self.model
                        .vf
                        .backward(&vtape, &[self.config.vf_coeff * verr / n], &mut g_vf);
                }
                clip_grad_norm(&mut g_pi, self.config.grad_clip);
                clip_grad_norm(&mut g_vf, self.config.grad_clip);
                self.opt_pi.step(&mut self.model.pi.params, &g_pi);
                let mut ls = [self.model.log_std];
                self.opt_logstd.step(&mut ls, &[g_logstd]);
                self.model.log_std = ls[0].clamp(-4.0, 1.0);
                self.opt_vf.step(&mut self.model.vf.params, &g_vf);
            }
        }
        // Measure the realized KL and adapt the coefficient (RLlib rule).
        let std_new = self.model.log_std.exp();
        let s_old = log_std_old.exp();
        let mut kl = 0.0;
        for s in &samples {
            let m_new = self.model.pi.forward(&s.state)[0];
            let dm = s.mean_old - m_new;
            kl += (self.model.log_std - log_std_old)
                + (s_old * s_old + dm * dm) / (2.0 * std_new * std_new)
                - 0.5;
        }
        kl /= samples.len() as f64;
        if kl > 2.0 * self.config.kl_target {
            self.kl_coeff *= 1.5;
        } else if kl < self.config.kl_target / 2.0 {
            self.kl_coeff *= 0.5;
        }
        stats.mean_kl = kl;
        stats.kl_coeff = self.kl_coeff;
        stats.mean_reward_per_episode =
            episodes.iter().map(Episode::total_reward).sum::<f64>() / episodes.len().max(1) as f64;
        let total_updates =
            (self.config.sgd_iters * samples.len().div_ceil(self.config.minibatch_size)) as f64;
        stats.policy_loss /= total_updates.max(1.0) / self.config.sgd_iters as f64;
        stats.value_loss /= total_updates.max(1.0) / self.config.sgd_iters as f64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn table1_defaults() {
        let c = PpoConfig::default();
        assert_eq!(c.steps_per_episode, 50);
        assert_eq!(c.learning_rate, 5e-5);
        assert_eq!(c.kl_coeff, 0.2);
        assert_eq!(c.kl_target, 0.01);
        assert_eq!(c.minibatch_size, 128);
        assert_eq!(c.clip_param, 0.3);
    }

    #[test]
    fn gae_matches_hand_computation() {
        // Two-step episode, γ=λ=1: adv[t] = Σ r - V bootstrapped.
        let cfg = PpoConfig {
            gamma: 1.0,
            gae_lambda: 1.0,
            ..PpoConfig::default()
        };
        let model = PolicyValue::new(2, &mut rng(1));
        let ppo = Ppo::new(model, cfg);
        let ep = Episode {
            states: vec![[0.0, 0.0], [0.0, 0.0]],
            raw_actions: vec![0.0, 0.0],
            log_probs: vec![0.0, 0.0],
            rewards: vec![1.0, 2.0],
            bootstrap_value: 3.0,
        };
        let values = vec![0.5, 0.25];
        let (adv, ret) = ppo.gae(&ep, &values);
        // adv[1] = 2 + 3 - 0.25 = 4.75; adv[0] = 1 + 0.25 - 0.5 + 4.75 = 5.5
        assert!((adv[1] - 4.75).abs() < 1e-12);
        assert!((adv[0] - 5.5).abs() < 1e-12);
        assert!((ret[0] - 6.0).abs() < 1e-12);
        assert!((ret[1] - 5.0).abs() < 1e-12);
    }

    /// A 1-step bandit: reward = −(action − 0.3)². PPO should move the
    /// policy mean toward 0.3.
    fn bandit_episode(model: &PolicyValue, rng: &mut SmallRng) -> Episode {
        let state = [rng.gen::<f64>(), rng.gen::<f64>()];
        let (raw, a, logp) = model.act_stochastic(&state, rng);
        let reward = -(a - 0.3).powi(2);
        Episode {
            states: vec![state],
            raw_actions: vec![raw],
            log_probs: vec![logp],
            rewards: vec![reward],
            bootstrap_value: 0.0,
        }
    }

    #[test]
    fn ppo_solves_a_bandit() {
        let mut r = rng(5);
        let model = PolicyValue::new(2, &mut r);
        let mut ppo = Ppo::new(
            model,
            PpoConfig {
                learning_rate: 3e-3,
                train_batch_size: 256,
                minibatch_size: 64,
                sgd_iters: 5,
                ..PpoConfig::default()
            },
        );
        for _ in 0..60 {
            let eps: Vec<Episode> = (0..256)
                .map(|_| bandit_episode(&ppo.model, &mut r))
                .collect();
            ppo.update(&eps, &mut r);
        }
        // The deterministic action should now be near 0.3 everywhere.
        let mut worst: f64 = 0.0;
        for s in [[0.1, 0.1], [0.5, 0.9], [0.9, 0.2]] {
            let a = ppo.model.act_deterministic(&s);
            worst = worst.max((a - 0.3).abs());
        }
        assert!(worst < 0.12, "bandit optimum 0.3, worst deviation {worst}");
    }

    #[test]
    fn value_function_learns_returns() {
        // Constant reward 1, γ=0 → returns are 1 everywhere.
        let mut r = rng(6);
        let model = PolicyValue::new(2, &mut r);
        let mut ppo = Ppo::new(
            model,
            PpoConfig {
                learning_rate: 1e-2,
                gamma: 0.0,
                sgd_iters: 5,
                minibatch_size: 64,
                ..PpoConfig::default()
            },
        );
        for _ in 0..40 {
            let eps: Vec<Episode> = (0..64)
                .map(|_| {
                    let state = [r.gen::<f64>(), r.gen::<f64>()];
                    let (raw, _, logp) = ppo.model.act_stochastic(&state, &mut r);
                    Episode {
                        states: vec![state],
                        raw_actions: vec![raw],
                        log_probs: vec![logp],
                        rewards: vec![1.0],
                        bootstrap_value: 0.0,
                    }
                })
                .collect();
            ppo.update(&eps, &mut r);
        }
        let v = ppo.model.value(&[0.5, 0.5]);
        assert!((v - 1.0).abs() < 0.2, "value ≈1, got {v}");
    }

    #[test]
    fn kl_coefficient_adapts() {
        let mut r = rng(7);
        let model = PolicyValue::new(2, &mut r);
        // Huge LR forces big policy jumps → KL blows past target → coeff
        // must increase.
        let mut ppo = Ppo::new(
            model,
            PpoConfig {
                learning_rate: 5e-2,
                sgd_iters: 10,
                minibatch_size: 32,
                ..PpoConfig::default()
            },
        );
        let c0 = ppo.kl_coeff();
        for _ in 0..5 {
            let eps: Vec<Episode> = (0..64)
                .map(|_| bandit_episode(&ppo.model, &mut r))
                .collect();
            ppo.update(&eps, &mut r);
        }
        assert!(ppo.kl_coeff() > c0, "KL coeff should rise under big steps");
    }

    #[test]
    fn empty_update_is_safe() {
        let mut r = rng(8);
        let model = PolicyValue::new(2, &mut r);
        let mut ppo = Ppo::new(model, PpoConfig::default());
        let stats = ppo.update(&[], &mut r);
        assert_eq!(stats.mean_kl, 0.0);
    }

    #[test]
    fn update_is_deterministic_given_seed() {
        let run = || {
            let mut r = rng(9);
            let model = PolicyValue::new(2, &mut r);
            let mut ppo = Ppo::new(model, PpoConfig::fast());
            for _ in 0..3 {
                let eps: Vec<Episode> = (0..32)
                    .map(|_| bandit_episode(&ppo.model, &mut r))
                    .collect();
                ppo.update(&eps, &mut r);
            }
            ppo.model.act_deterministic(&[0.4, 0.6])
        };
        assert_eq!(run(), run());
    }
}
