//! The paper's lightweight DAG simulator for pre-training (§4.3).
//!
//! "The simulator contains DAGs, each DAG represents an API execution
//! path, and each node in a DAG represents a microservice. Each node is
//! assigned with latency and load capacity, which is randomly generated
//! within a range. The node is classified as overloaded when requests
//! exceed its load capacity." Node dynamics follow the paper's three
//! rules: under overload, more input → higher latency and *lower*
//! goodput; less input → lower latency and higher goodput; without
//! overload, latency is low and goodput equals the incoming rate. Latency
//! and goodput carry "random noise proportional to its scale of overload
//! conditions".
//!
//! Hyper-parameters follow "Base model training": 1–3 DAGs of 1–5 nodes
//! each per episode. Mid-episode capacity jumps emulate autoscaler
//! allocations so the pre-trained policy also learns rapid *recovery*
//! (§6.3 depends on this).

use crate::env::{RlEnv, StepResult};
use rand::rngs::SmallRng;
use rand::Rng;

/// Latency SLO inside the simulator (1 s, like the applications).
const SLO: f64 = 1.0;

/// One simulated microservice node.
#[derive(Clone, Debug)]
struct Node {
    /// Serving capacity, requests/s.
    capacity: f64,
    /// Base latency when idle, seconds.
    base_latency: f64,
    /// Backlog in request-units; grows while input exceeds capacity.
    backlog: f64,
}

impl Node {
    /// Advance one control interval with `input` rps; returns
    /// `(output_rps, latency_s)` including overload noise.
    fn step(&mut self, input: f64, rng: &mut SmallRng) -> (f64, f64) {
        let over = if self.capacity > 0.0 {
            input / self.capacity
        } else {
            f64::INFINITY
        };
        // Backlog integrates the excess; drains when under capacity.
        self.backlog = (self.backlog + (input - self.capacity)).max(0.0);
        // Rule 3: not overloaded and no backlog → output = input, low lat.
        // Rules 1–2: overloaded → output degrades with over-rate (more
        // input, less goodput), latency grows with the queue.
        let (output, latency) = if over <= 1.0 && self.backlog <= 0.0 {
            (input, self.base_latency)
        } else {
            let out = self.capacity / over.max(1.0).sqrt();
            let lat = self.base_latency + self.backlog / self.capacity.max(1.0);
            (out, lat)
        };
        // Noise proportional to the scale of overload.
        let noise_scale = (over - 1.0).clamp(0.0, 3.0);
        let noisy_out = output * (1.0 + 0.05 * noise_scale * (rng.gen::<f64>() - 0.5));
        let noisy_lat = latency * (1.0 + 0.10 * noise_scale * (rng.gen::<f64>() - 0.5));
        (noisy_out.max(0.0), noisy_lat.max(0.0))
    }
}

/// One DAG = one API execution path (a chain of nodes).
#[derive(Clone, Debug)]
struct Dag {
    nodes: Vec<Node>,
    /// Share of the admitted load this DAG receives.
    weight: f64,
}

/// The pre-training environment. Each episode draws fresh DAGs, node
/// characteristics and demand; the agent controls one aggregate rate
/// limit, exactly the quantity a per-cluster TopFull controller moves.
pub struct GraphEnv {
    dags: Vec<Dag>,
    /// Total offered demand (rps).
    demand: f64,
    /// The rate limit under control.
    limit: f64,
    /// Previous total goodput, for ΔGoodput.
    prev_goodput: f64,
    /// Normalization scale for rewards.
    scale: f64,
    /// Step at which capacity jumps (autoscaler allocation), if any.
    scale_up_at: Option<usize>,
    step_count: usize,
    /// Latency SLO violation penalty coefficient (ρ in Equation 3).
    pub rho: f64,
}

impl Default for GraphEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphEnv {
    pub fn new() -> Self {
        GraphEnv {
            dags: Vec::new(),
            demand: 0.0,
            limit: 1.0,
            prev_goodput: 0.0,
            scale: 1.0,
            scale_up_at: None,
            step_count: 0,
            rho: 1.0,
        }
    }

    /// Run the DAGs for one interval at the current limit; returns
    /// `(total_goodput, max_latency)`.
    fn simulate(&mut self, rng: &mut SmallRng) -> (f64, f64) {
        let admitted = self.demand.min(self.limit);
        let mut total_good = 0.0;
        let mut max_lat: f64 = 0.0;
        let wsum: f64 = self.dags.iter().map(|d| d.weight).sum();
        for d in self.dags.iter_mut() {
            let mut rate = admitted * d.weight / wsum;
            let mut lat_sum = 0.0;
            for n in d.nodes.iter_mut() {
                let (out, lat) = n.step(rate, rng);
                rate = rate.min(out);
                lat_sum += lat;
            }
            // Responses beyond the SLO are not good.
            let good = if lat_sum <= SLO { rate } else { 0.0 };
            total_good += good;
            max_lat = max_lat.max(lat_sum);
        }
        (total_good, max_lat)
    }

    fn observe(&self, goodput: f64, latency: f64) -> [f64; 2] {
        let ratio = if self.limit > 0.0 {
            (goodput / self.limit).clamp(0.0, 2.0)
        } else {
            0.0
        };
        [ratio, (latency / SLO).clamp(0.0, 5.0)]
    }

    /// Bottleneck capacity across DAGs (for tests/diagnostics): the total
    /// load at which some node first saturates, approximated as the sum of
    /// per-DAG minimum capacities.
    pub fn bottleneck_capacity(&self) -> f64 {
        let wsum: f64 = self.dags.iter().map(|d| d.weight).sum();
        self.dags
            .iter()
            .map(|d| {
                let min_cap = d
                    .nodes
                    .iter()
                    .map(|n| n.capacity)
                    .fold(f64::INFINITY, f64::min);
                min_cap * wsum / d.weight
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Current rate limit (for tests).
    pub fn limit(&self) -> f64 {
        self.limit
    }
}

impl RlEnv for GraphEnv {
    fn reset(&mut self, rng: &mut SmallRng) -> [f64; 2] {
        // "we used 1-3 for the number of DAGs and 1-5 nodes for each DAG".
        let n_dags = rng.gen_range(1..=3);
        self.dags = (0..n_dags)
            .map(|_| Dag {
                nodes: (0..rng.gen_range(1..=5))
                    .map(|_| Node {
                        capacity: rng.gen_range(100.0..1000.0),
                        base_latency: rng.gen_range(0.001..0.020),
                        backlog: 0.0,
                    })
                    .collect(),
                weight: rng.gen_range(0.5..2.0),
            })
            .collect();
        let cap = self.bottleneck_capacity();
        // Overload scenarios: demand usually exceeds the bottleneck.
        self.demand = cap * rng.gen_range(0.8..3.0);
        // Initial limit anywhere from deep throttling to wide open.
        self.limit = cap * rng.gen_range(0.2..2.5);
        self.scale = cap.max(1.0);
        self.scale_up_at = if rng.gen_bool(0.4) {
            Some(rng.gen_range(15..40))
        } else {
            None
        };
        self.step_count = 0;
        // Pre-existing congestion when the limit is too high.
        let (g, l) = self.simulate(rng);
        self.prev_goodput = g;
        self.observe(g, l)
    }

    fn step(&mut self, action: f64, rng: &mut SmallRng) -> StepResult {
        self.step_count += 1;
        // Autoscaler allocation lands: capacities jump.
        if self.scale_up_at == Some(self.step_count) {
            let k = rng.gen_range(1.5..3.0);
            for d in self.dags.iter_mut() {
                for n in d.nodes.iter_mut() {
                    n.capacity *= k;
                }
            }
        }
        // Multiplicative rate adjustment, floored so recovery is possible.
        self.limit = (self.limit * (1.0 + action)).max(self.scale * 0.01);
        let (good, lat) = self.simulate(rng);
        // Equation 3: ΔGoodput − ρ·max(0, latency − SLO), normalized.
        let reward = (good - self.prev_goodput) / self.scale
            - self.rho * ((lat - SLO).max(0.0) / SLO).min(5.0);
        self.prev_goodput = good;
        StepResult {
            state: self.observe(good, lat),
            reward,
            done: self.step_count >= self.horizon(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn reset_draws_paper_scale_dags() {
        let mut env = GraphEnv::new();
        let mut r = rng(1);
        for _ in 0..50 {
            env.reset(&mut r);
            assert!((1..=3).contains(&env.dags.len()));
            for d in &env.dags {
                assert!((1..=5).contains(&d.nodes.len()));
            }
        }
    }

    #[test]
    fn state_is_bounded() {
        let mut env = GraphEnv::new();
        let mut r = rng(2);
        let s0 = env.reset(&mut r);
        assert!((0.0..=2.0).contains(&s0[0]));
        assert!((0.0..=5.0).contains(&s0[1]));
        for _ in 0..50 {
            let res = env.step(0.5, &mut r);
            assert!((0.0..=2.0).contains(&res.state[0]));
            assert!((0.0..=5.0).contains(&res.state[1]));
            assert!(res.reward.is_finite());
        }
    }

    #[test]
    fn throttling_reduces_latency_under_overload() {
        let mut env = GraphEnv::new();
        let mut r = rng(3);
        env.reset(&mut r);
        // Force a severe overload state.
        env.limit = env.bottleneck_capacity() * 3.0;
        env.demand = env.limit;
        for _ in 0..5 {
            env.step(0.0, &mut r);
        }
        let lat_over = env.step(0.0, &mut r).state[1];
        // Now throttle hard for a while.
        for _ in 0..20 {
            env.step(-0.5, &mut r);
        }
        let lat_throttled = env.step(0.0, &mut r).state[1];
        assert!(
            lat_throttled < lat_over,
            "throttling must drain backlog: {lat_over} → {lat_throttled}"
        );
    }

    #[test]
    fn goodput_ratio_near_one_when_under_capacity() {
        let mut env = GraphEnv::new();
        let mut r = rng(4);
        env.reset(&mut r);
        env.limit = env.bottleneck_capacity() * 0.5;
        env.demand = env.limit * 2.0; // plenty of demand, limit binds
                                      // Drain any initial backlog.
        for d in env.dags.iter_mut() {
            for n in d.nodes.iter_mut() {
                n.backlog = 0.0;
            }
        }
        let res = env.step(0.0, &mut r);
        assert!(
            res.state[0] > 0.9,
            "below capacity goodput ≈ limit, ratio {}",
            res.state[0]
        );
        assert!(res.state[1] < 0.2, "low latency under capacity");
    }

    #[test]
    fn increasing_into_overload_is_penalized() {
        let mut env = GraphEnv::new();
        let mut r = rng(5);
        env.reset(&mut r);
        let cap = env.bottleneck_capacity();
        env.limit = cap * 0.9;
        env.demand = cap * 4.0;
        // Ramp the limit way past capacity.
        let mut last = 0.0;
        for _ in 0..15 {
            last = env.step(0.5, &mut r).reward;
        }
        assert!(last < 0.0, "sustained overload must earn negative reward");
    }

    #[test]
    fn episode_terminates_at_horizon() {
        let mut env = GraphEnv::new();
        let mut r = rng(6);
        env.reset(&mut r);
        for i in 1..=env.horizon() {
            let res = env.step(0.0, &mut r);
            assert_eq!(res.done, i == env.horizon());
        }
    }

    #[test]
    fn capacity_jump_allows_higher_goodput() {
        let mut env = GraphEnv::new();
        let mut r = rng(7);
        env.reset(&mut r);
        env.scale_up_at = Some(1);
        let cap_before = env.bottleneck_capacity();
        env.step(0.0, &mut r);
        let cap_after = env.bottleneck_capacity();
        assert!(cap_after > cap_before * 1.4, "capacities jumped");
    }
}
