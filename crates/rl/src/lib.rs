//! # rl — from-scratch PPO for the TopFull rate controller
//!
//! The paper's rate controller is a PPO agent (§4.3, Table 1) with a
//! two-dimensional state (goodput/rate-limit ratio, end-to-end percentile
//! latency), a one-dimensional continuous action in `[-0.5, 0.5]`
//! (multiplicative rate-limit step), and reward
//! `ΔGoodput − ρ·max(0, latency − SLO)`. The offline environment has no
//! RL framework, so this crate implements the whole stack:
//!
//! * [`nn`] — flat-parameter MLPs with manual backprop and [`nn::Adam`].
//! * [`policy`] — diagonal-Gaussian policy + value function.
//! * [`ppo`] — clipped-surrogate PPO with RLlib-style adaptive KL penalty
//!   and GAE; hyper-parameters default to the paper's Table 1.
//! * [`mod@env`] — the environment abstraction.
//! * [`graph_env`] — the paper's lightweight DAG simulator used for
//!   pre-training ("Simulator's design principle", §4.3).
//! * [`cluster_env`] — the specialization environment wrapping the full
//!   [`cluster`] simulator (the "real-world application" stage of the
//!   paper's Sim2Real pipeline, one fidelity level down).
//! * [`trainer`] — episode collection (parallel, deterministic),
//!   checkpointing, validation-based model selection, and the two-stage
//!   Sim2Real pipeline.
//! * [`diagnostics`] — action-surface sampling and qualitative audits of
//!   trained policies.

pub mod cluster_env;
pub mod diagnostics;
pub mod env;
pub mod graph_env;
pub mod nn;
pub mod policy;
pub mod ppo;
pub mod trainer;

pub use env::RlEnv;
pub use policy::PolicyValue;
pub use ppo::{Ppo, PpoConfig};
pub use trainer::{Trainer, TrainerConfig};

/// Action-space bounds from the paper: "The RL agent selects an action
/// from the continuous space between -0.5 and 0.5" (§4.3).
pub const ACTION_LOW: f64 = -0.5;
/// See [`ACTION_LOW`].
pub const ACTION_HIGH: f64 = 0.5;
/// State dimensionality: goodput/limit ratio and normalized tail latency.
pub const STATE_DIM: usize = 2;
