//! Diagonal-Gaussian policy and value function.
//!
//! The actor maps the 2-dim state to the mean of a 1-dim Gaussian whose
//! log-std is a free learnable parameter (RLlib's default for continuous
//! PPO); the critic is a separate MLP. Sampled actions are clipped to the
//! paper's `[-0.5, 0.5]` action space at *application* time while
//! log-probabilities are computed on the unclipped sample, matching
//! RLlib's space-clipping behaviour.

use crate::nn::Mlp;
use crate::{ACTION_HIGH, ACTION_LOW};
use rand::rngs::SmallRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// Actor-critic parameters: policy mean net, log-std, and value net.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyValue {
    pub pi: Mlp,
    /// Global log standard deviation of the action Gaussian.
    pub log_std: f64,
    pub vf: Mlp,
}

impl PolicyValue {
    /// Fresh networks: `state_dim → 64 → 64 → 1` for both heads.
    pub fn new(state_dim: usize, rng: &mut SmallRng) -> Self {
        PolicyValue {
            pi: Mlp::new(&[state_dim, 64, 64, 1], rng),
            // std ≈ 0.2: explores a meaningful fraction of [-0.5, 0.5].
            log_std: -1.6,
            vf: Mlp::new(&[state_dim, 64, 64, 1], rng),
        }
    }

    /// Deterministic action (the mean), clipped to the action space. A
    /// non-finite mean (diverged or corrupted weights, NaN in the state)
    /// yields the neutral action 0.0 — `clamp` alone would pass NaN
    /// through to the rate limiter.
    pub fn act_deterministic(&self, state: &[f64]) -> f64 {
        let mean = self.pi.forward(state)[0];
        if mean.is_finite() {
            mean.clamp(ACTION_LOW, ACTION_HIGH)
        } else {
            0.0
        }
    }

    /// Sample an action; returns `(raw_sample, clipped_action, log_prob)`.
    ///
    /// `raw_sample` feeds the PPO update; `clipped_action` is what the
    /// environment executes.
    pub fn act_stochastic(&self, state: &[f64], rng: &mut SmallRng) -> (f64, f64, f64) {
        let mean = self.pi.forward(state)[0];
        let std = self.log_std.exp();
        let raw = Normal::new(mean, std).expect("valid normal").sample(rng);
        let logp = self.log_prob_given_mean(mean, raw);
        (raw, raw.clamp(ACTION_LOW, ACTION_HIGH), logp)
    }

    /// Log-probability of `raw` under the current policy at `state`.
    pub fn log_prob(&self, state: &[f64], raw: f64) -> f64 {
        self.log_prob_given_mean(self.pi.forward(state)[0], raw)
    }

    fn log_prob_given_mean(&self, mean: f64, raw: f64) -> f64 {
        let std = self.log_std.exp();
        let z = (raw - mean) / std;
        -0.5 * z * z - self.log_std - 0.5 * LN_2PI
    }

    /// State value estimate.
    pub fn value(&self, state: &[f64]) -> f64 {
        self.vf.forward(state)[0]
    }

    /// Analytic KL divergence `KL(old ‖ new)` between two Gaussians with
    /// means at `state` under each policy.
    pub fn kl_from(&self, old: &PolicyValue, state: &[f64]) -> f64 {
        let m_old = old.pi.forward(state)[0];
        let m_new = self.pi.forward(state)[0];
        let s_old = old.log_std.exp();
        let s_new = self.log_std.exp();
        (self.log_std - old.log_std)
            + (s_old * s_old + (m_old - m_new).powi(2)) / (2.0 * s_new * s_new)
            - 0.5
    }

    /// Policy entropy (state-independent for a global std).
    pub fn entropy(&self) -> f64 {
        0.5 * (LN_2PI + 1.0) + self.log_std
    }

    /// Save as JSON.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("serializable");
        std::fs::write(path, json)
    }

    /// Load from JSON.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pv() -> PolicyValue {
        PolicyValue::new(2, &mut SmallRng::seed_from_u64(1))
    }

    #[test]
    fn non_finite_state_yields_neutral_action() {
        let p = pv();
        for s in [
            [f64::NAN, 0.5],
            [0.5, f64::INFINITY],
            [f64::NEG_INFINITY, f64::NAN],
        ] {
            let a = p.act_deterministic(&s);
            assert!(a.is_finite(), "action must stay finite, got {a}");
            assert!((ACTION_LOW..=ACTION_HIGH).contains(&a));
        }
    }

    #[test]
    fn deterministic_action_is_in_bounds() {
        let p = pv();
        for s in [[-5.0, 5.0], [0.0, 0.0], [100.0, -100.0]] {
            let a = p.act_deterministic(&s);
            assert!((ACTION_LOW..=ACTION_HIGH).contains(&a));
        }
    }

    #[test]
    fn stochastic_actions_explore() {
        let p = pv();
        let mut rng = SmallRng::seed_from_u64(9);
        let actions: Vec<f64> = (0..100)
            .map(|_| p.act_stochastic(&[0.5, 0.5], &mut rng).1)
            .collect();
        let mean = actions.iter().sum::<f64>() / actions.len() as f64;
        let var = actions.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / 100.0;
        assert!(var > 1e-4, "sampling must explore, var={var}");
        assert!(actions
            .iter()
            .all(|a| (ACTION_LOW..=ACTION_HIGH).contains(a)));
    }

    #[test]
    fn log_prob_integrates_to_one_ish() {
        // Riemann-sum the density over a wide interval ≈ 1.
        let p = pv();
        let s = [0.3, 0.7];
        let mean = p.pi.forward(&s)[0];
        let step = 0.001;
        let mut total = 0.0;
        let mut x = mean - 3.0;
        while x < mean + 3.0 {
            total += p.log_prob(&s, x).exp() * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 0.01, "density sums to {total}");
    }

    #[test]
    fn kl_of_identical_policies_is_zero() {
        let p = pv();
        let kl = p.kl_from(&p, &[0.1, 0.9]);
        assert!(kl.abs() < 1e-12);
    }

    #[test]
    fn kl_grows_with_mean_shift() {
        let p = pv();
        let mut q = p.clone();
        // Nudge the output bias of the mean net.
        let n = q.pi.params.len();
        q.pi.params[n - 1] += 0.5;
        let kl = q.kl_from(&p, &[0.1, 0.9]);
        assert!(kl > 0.0);
    }

    #[test]
    fn entropy_tracks_log_std() {
        let mut p = pv();
        let e1 = p.entropy();
        p.log_std += 1.0;
        assert!((p.entropy() - e1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("topfull-rl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        let p = pv();
        p.save(&path).unwrap();
        let q = PolicyValue::load(&path).unwrap();
        // JSON float round-trips can differ in the last ulp.
        let da = (p.act_deterministic(&[0.2, 0.4]) - q.act_deterministic(&[0.2, 0.4])).abs();
        let dv = (p.value(&[0.2, 0.4]) - q.value(&[0.2, 0.4])).abs();
        assert!(da < 1e-12, "action drift {da}");
        assert!(dv < 1e-12, "value drift {dv}");
        std::fs::remove_file(&path).ok();
    }
}
