//! Minimal neural-network substrate: tanh MLPs with manual backprop,
//! flat parameter storage, and the Adam optimizer.
//!
//! The paper's models are tiny — "Our RL model is lightweight, having
//! two-dimensional state space and one-dimensional action space" (§6.4) —
//! so a per-sample forward/backward over `Vec<f64>` is both simple and
//! fast enough (inference is a few thousand flops; the paper reports
//! 2.33 × 10⁶ cycles per inference on a Xeon).
//!
//! Parameters live in one flat `Vec<f64>` (weights then biases, layer by
//! layer), which makes the optimizer and serialization trivial.

use rand::rngs::SmallRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A multi-layer perceptron with tanh hidden activations and a linear
/// output layer, parameters stored flat.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// Layer widths, input first: e.g. `[2, 64, 64, 1]`.
    pub dims: Vec<usize>,
    /// All parameters: per layer, row-major `out×in` weights then `out`
    /// biases.
    pub params: Vec<f64>,
}

/// Forward-pass cache needed for backprop.
pub struct Tape {
    /// Activations per layer, `act[0]` = input, `act[L]` = output.
    act: Vec<Vec<f64>>,
}

impl Mlp {
    /// Number of parameters for the given dims.
    pub fn param_count(dims: &[usize]) -> usize {
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Xavier-style random initialization.
    pub fn new(dims: &[usize], rng: &mut SmallRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut params = Vec::with_capacity(Self::param_count(dims));
        for w in dims.windows(2) {
            let (nin, nout) = (w[0], w[1]);
            let std = (2.0 / (nin + nout) as f64).sqrt();
            let dist = Normal::new(0.0, std).expect("valid normal");
            for _ in 0..nin * nout {
                params.push(dist.sample(rng));
            }
            params.extend(std::iter::repeat_n(0.0, nout));
        }
        Mlp {
            dims: dims.to_vec(),
            params,
        }
    }

    /// Offset of layer `l`'s weights within `params`.
    fn layer_offset(&self, l: usize) -> usize {
        self.dims
            .windows(2)
            .take(l)
            .map(|w| w[0] * w[1] + w[1])
            .sum()
    }

    /// Forward pass without a tape (inference).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_tape(x).0
    }

    /// Forward pass returning the output and the backprop tape.
    pub fn forward_tape(&self, x: &[f64]) -> (Vec<f64>, Tape) {
        assert_eq!(x.len(), self.dims[0], "input dim mismatch");
        let n_layers = self.dims.len() - 1;
        let mut act = Vec::with_capacity(n_layers + 1);
        act.push(x.to_vec());
        for l in 0..n_layers {
            let (nin, nout) = (self.dims[l], self.dims[l + 1]);
            let off = self.layer_offset(l);
            let w = &self.params[off..off + nin * nout];
            let b = &self.params[off + nin * nout..off + nin * nout + nout];
            let prev = &act[l];
            let mut out = vec![0.0; nout];
            for o in 0..nout {
                let mut s = b[o];
                let row = &w[o * nin..(o + 1) * nin];
                for i in 0..nin {
                    s += row[i] * prev[i];
                }
                // tanh on hidden layers, linear output.
                out[o] = if l + 1 < n_layers { s.tanh() } else { s };
            }
            act.push(out);
        }
        let out = act.last().expect("output").clone();
        (out, Tape { act })
    }

    /// Backprop `d_out` (∂loss/∂output) through the tape; accumulates
    /// parameter gradients into `grad` (same length as `params`) and
    /// returns ∂loss/∂input.
    pub fn backward(&self, tape: &Tape, d_out: &[f64], grad: &mut [f64]) -> Vec<f64> {
        assert_eq!(grad.len(), self.params.len());
        let n_layers = self.dims.len() - 1;
        assert_eq!(d_out.len(), self.dims[n_layers]);
        let mut delta = d_out.to_vec();
        for l in (0..n_layers).rev() {
            let (nin, nout) = (self.dims[l], self.dims[l + 1]);
            let off = self.layer_offset(l);
            // For hidden layers, delta arrives post-activation; convert
            // through tanh': 1 - y².
            if l + 1 < n_layers {
                let y = &tape.act[l + 1];
                for o in 0..nout {
                    delta[o] *= 1.0 - y[o] * y[o];
                }
            }
            let prev = &tape.act[l];
            // Parameter grads.
            for o in 0..nout {
                let g_row = &mut grad[off + o * nin..off + (o + 1) * nin];
                for i in 0..nin {
                    g_row[i] += delta[o] * prev[i];
                }
            }
            for o in 0..nout {
                grad[off + nin * nout + o] += delta[o];
            }
            // Input grads for the next (shallower) layer.
            let w = &self.params[off..off + nin * nout];
            let mut d_in = vec![0.0; nin];
            for o in 0..nout {
                let row = &w[o * nin..(o + 1) * nin];
                for i in 0..nin {
                    d_in[i] += row[i] * delta[o];
                }
            }
            delta = d_in;
        }
        delta
    }
}

/// Adam optimizer over a flat parameter vector.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the usual (0.9, 0.999) moments.
    pub fn new(lr: f64, n_params: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// One descent step: `params -= lr * m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grad.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Global-norm gradient clipping; returns the pre-clip norm.
pub fn clip_grad_norm(grad: &mut [f64], max_norm: f64) -> f64 {
    let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn param_count_is_consistent() {
        let dims = [2, 64, 64, 1];
        let net = Mlp::new(&dims, &mut rng());
        assert_eq!(net.params.len(), Mlp::param_count(&dims));
        assert_eq!(Mlp::param_count(&[2, 3]), 2 * 3 + 3);
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let net = Mlp::new(&[2, 8, 3], &mut rng());
        let y1 = net.forward(&[0.5, -0.2]);
        let y2 = net.forward(&[0.5, -0.2]);
        assert_eq!(y1.len(), 3);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // Loss = sum(outputs); check dL/dθ numerically.
        let mut net = Mlp::new(&[3, 5, 4, 2], &mut rng());
        let x = [0.3, -0.7, 1.1];
        let (_, tape) = net.forward_tape(&x);
        let mut grad = vec![0.0; net.params.len()];
        net.backward(&tape, &[1.0, 1.0], &mut grad);
        let eps = 1e-6;
        // Spot-check a spread of parameters (all would be slow-ish).
        for &pi in &[0usize, 7, 20, 33, 41, net.params.len() - 1] {
            let orig = net.params[pi];
            net.params[pi] = orig + eps;
            let up: f64 = net.forward(&x).iter().sum();
            net.params[pi] = orig - eps;
            let dn: f64 = net.forward(&x).iter().sum();
            net.params[pi] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - grad[pi]).abs() < 1e-5,
                "param {pi}: numeric {numeric} vs analytic {}",
                grad[pi]
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let net = Mlp::new(&[2, 6, 1], &mut rng());
        let x = [0.4, -0.9];
        let (_, tape) = net.forward_tape(&x);
        let mut grad = vec![0.0; net.params.len()];
        let d_in = net.backward(&tape, &[1.0], &mut grad);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let up = net.forward(&xp)[0];
            xp[i] -= 2.0 * eps;
            let dn = net.forward(&xp)[0];
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - d_in[i]).abs() < 1e-5,
                "input {i}: numeric {numeric} vs analytic {}",
                d_in[i]
            );
        }
    }

    #[test]
    fn adam_fits_a_regression() {
        // Fit y = 2x₁ - 3x₂ + 1 with a linear net (no hidden layer).
        let mut net = Mlp::new(&[2, 1], &mut rng());
        let mut opt = Adam::new(0.05, net.params.len());
        let data: Vec<([f64; 2], f64)> = (0..50)
            .map(|i| {
                let x1 = (i as f64 / 25.0) - 1.0;
                let x2 = ((i * 7 % 50) as f64 / 25.0) - 1.0;
                ([x1, x2], 2.0 * x1 - 3.0 * x2 + 1.0)
            })
            .collect();
        for _ in 0..400 {
            let mut grad = vec![0.0; net.params.len()];
            for (x, y) in &data {
                let (out, tape) = net.forward_tape(x);
                let err = out[0] - y;
                net.backward(&tape, &[2.0 * err / data.len() as f64], &mut grad);
            }
            opt.step(&mut net.params, &grad);
        }
        let mse: f64 = data
            .iter()
            .map(|(x, y)| (net.forward(x)[0] - y).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 1e-3, "Adam should fit the line, mse={mse}");
    }

    #[test]
    fn nonlinear_fit_with_hidden_layer() {
        // Fit y = x² on [-1, 1]; impossible for a linear model.
        let mut net = Mlp::new(&[1, 16, 1], &mut rng());
        let mut opt = Adam::new(0.01, net.params.len());
        let xs: Vec<f64> = (0..41).map(|i| -1.0 + i as f64 / 20.0).collect();
        for _ in 0..2000 {
            let mut grad = vec![0.0; net.params.len()];
            for &x in &xs {
                let (out, tape) = net.forward_tape(&[x]);
                let err = out[0] - x * x;
                net.backward(&tape, &[2.0 * err / xs.len() as f64], &mut grad);
            }
            opt.step(&mut net.params, &grad);
        }
        let worst = xs
            .iter()
            .map(|&x| (net.forward(&[x])[0] - x * x).abs())
            .fold(0.0, f64::max);
        assert!(worst < 0.08, "x² fit worst-case error {worst}");
    }

    #[test]
    fn grad_clip_preserves_direction() {
        let mut g = vec![3.0, 4.0];
        let norm = clip_grad_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        assert!((g[0] - 0.6).abs() < 1e-12);
        assert!((g[1] - 0.8).abs() < 1e-12);
        // Under the cap: untouched.
        let mut g2 = vec![0.1, 0.1];
        clip_grad_norm(&mut g2, 1.0);
        assert_eq!(g2, vec![0.1, 0.1]);
    }

    #[test]
    fn serde_round_trip() {
        let net = Mlp::new(&[2, 4, 1], &mut rng());
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(net.forward(&[0.2, 0.8]), back.forward(&[0.2, 0.8]));
    }
}
