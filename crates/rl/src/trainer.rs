//! Training loop: parallel episode collection, checkpointing, validation
//! selection, and the two-stage Sim2Real pipeline.
//!
//! "During the training, we checkpoint the RL model every 50 episodes. We
//! select the pre-trained model by validating the performance of the
//! checkpointed RL models on a fixed set of scenarios in the simulator"
//! (§4.3). The same loop trains both stages: pre-training on
//! [`crate::graph_env::GraphEnv`] and specialization on
//! [`crate::cluster_env::ClusterEnv`] (the paper's "target real-world
//! application", here the detailed cluster simulator).
//!
//! Collection is parallel (one worker per environment replica, fixed
//! per-worker seeds, merged in worker order) so training is deterministic
//! for a given seed and worker count.

use crate::env::RlEnv;
use crate::policy::PolicyValue;
use crate::ppo::{Episode, Ppo, PpoConfig, UpdateStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::rng::derive_seed;

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    pub ppo: PpoConfig,
    /// Total episodes to train (paper: 48 000 pre-training, 800
    /// specialization).
    pub episodes: usize,
    /// Checkpoint cadence in episodes (paper: 50).
    pub checkpoint_every: usize,
    /// Validation episodes per checkpoint (fixed seeds).
    pub validation_episodes: usize,
    /// Parallel rollout workers.
    pub workers: usize,
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            ppo: PpoConfig::default(),
            episodes: 1000,
            checkpoint_every: 50,
            validation_episodes: 16,
            workers: 4,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
pub struct TrainReport {
    /// The validation-selected best model.
    pub best_model: PolicyValue,
    pub best_validation_reward: f64,
    /// The final (last-iteration) model.
    pub final_model: PolicyValue,
    /// `(episodes_so_far, mean_train_reward, validation_reward)` per
    /// checkpoint.
    pub history: Vec<(usize, f64, f64)>,
    pub episodes_run: usize,
}

/// Episode runner shared by training and validation.
fn run_episode<E: RlEnv>(
    env: &mut E,
    model: &PolicyValue,
    rng: &mut SmallRng,
    deterministic: bool,
) -> Episode {
    let mut state = env.reset(rng);
    let mut ep = Episode::default();
    loop {
        ep.states.push(state);
        let (raw, action, logp) = if deterministic {
            let a = model.act_deterministic(&state);
            (a, a, 0.0)
        } else {
            model.act_stochastic(&state, rng)
        };
        let res = env.step(action, rng);
        ep.raw_actions.push(raw);
        ep.log_probs.push(logp);
        ep.rewards.push(res.reward);
        state = res.state;
        if res.done {
            ep.bootstrap_value = model.value(&state);
            break;
        }
    }
    ep
}

/// Mean total reward of deterministic episodes on fixed seeds.
pub fn validate<E: RlEnv>(
    make_env: &(impl Fn() -> E + Sync),
    model: &PolicyValue,
    episodes: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for i in 0..episodes {
        let mut env = make_env();
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, "validate") ^ i as u64);
        total += run_episode(&mut env, model, &mut rng, true).total_reward();
    }
    total / episodes.max(1) as f64
}

/// The trainer.
pub struct Trainer {
    pub config: TrainerConfig,
    pub ppo: Ppo,
}

impl Trainer {
    /// Start from a fresh model.
    pub fn new(config: TrainerConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(derive_seed(config.seed, "init"));
        let model = PolicyValue::new(crate::STATE_DIM, &mut rng);
        Trainer {
            ppo: Ppo::new(model, config.ppo),
            config,
        }
    }

    /// Start from a pre-trained model (the transfer-learning stage).
    pub fn from_model(config: TrainerConfig, model: PolicyValue) -> Self {
        Trainer {
            ppo: Ppo::new(model, config.ppo),
            config,
        }
    }

    /// Train on environments built by `make_env` (one per worker), with
    /// periodic validation on fresh instances.
    pub fn train<E, F>(&mut self, make_env: F) -> TrainReport
    where
        E: RlEnv + Send,
        F: Fn() -> E + Sync,
    {
        let eps_per_iter =
            (self.config.ppo.train_batch_size / self.config.ppo.steps_per_episode).max(1);
        let workers = self.config.workers.max(1);
        let mut episodes_run = 0usize;
        let mut since_checkpoint = 0usize;
        let mut history = Vec::new();
        let mut best_model = self.ppo.model.clone();
        let mut best_val = f64::NEG_INFINITY;
        let mut update_rng = SmallRng::seed_from_u64(derive_seed(self.config.seed, "sgd"));
        let mut iter = 0u64;
        #[allow(unused_assignments)]
        let mut last_stats = UpdateStats::default();

        while episodes_run < self.config.episodes {
            let n = eps_per_iter.min(self.config.episodes - episodes_run).max(1);
            // Split n episodes across workers; merge in worker order so
            // results are independent of scheduling.
            let model = &self.ppo.model;
            let seed = self.config.seed;
            let per_worker: Vec<usize> = (0..workers)
                .map(|w| n / workers + usize::from(w < n % workers))
                .collect();
            let episodes: Vec<Episode> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = per_worker
                    .iter()
                    .enumerate()
                    .map(|(w, &count)| {
                        let make_env = &make_env;
                        scope.spawn(move |_| {
                            let mut env = make_env();
                            let mut rng = SmallRng::seed_from_u64(
                                derive_seed(seed, "rollout") ^ (iter << 8) ^ w as u64,
                            );
                            (0..count)
                                .map(|_| run_episode(&mut env, model, &mut rng, false))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("rollout worker"))
                    .collect()
            })
            .expect("rollout scope");

            last_stats = self.ppo.update(&episodes, &mut update_rng);
            episodes_run += n;
            since_checkpoint += n;
            iter += 1;

            if since_checkpoint >= self.config.checkpoint_every
                || episodes_run >= self.config.episodes
            {
                since_checkpoint = 0;
                let val = validate(
                    &make_env,
                    &self.ppo.model,
                    self.config.validation_episodes,
                    self.config.seed,
                );
                history.push((episodes_run, last_stats.mean_reward_per_episode, val));
                if val > best_val {
                    best_val = val;
                    best_model = self.ppo.model.clone();
                }
            }
        }

        TrainReport {
            best_model,
            best_validation_reward: best_val,
            final_model: self.ppo.model.clone(),
            history,
            episodes_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepResult;
    use crate::graph_env::GraphEnv;
    use rand::Rng;

    /// Deterministic toy env: reward is highest when the action tracks
    /// `0.4·state[0] − 0.2`; episodes of 10 steps.
    struct Toy {
        t: usize,
        s: [f64; 2],
    }

    impl RlEnv for Toy {
        fn reset(&mut self, rng: &mut SmallRng) -> [f64; 2] {
            self.t = 0;
            self.s = [rng.gen(), rng.gen()];
            self.s
        }

        fn step(&mut self, action: f64, rng: &mut SmallRng) -> StepResult {
            self.t += 1;
            let target = 0.4 * self.s[0] - 0.2;
            let reward = -(action - target).powi(2);
            self.s = [rng.gen(), rng.gen()];
            StepResult {
                state: self.s,
                reward,
                done: self.t >= 10,
            }
        }

        fn horizon(&self) -> usize {
            10
        }
    }

    #[test]
    fn trainer_improves_on_toy_env() {
        let mut trainer = Trainer::new(TrainerConfig {
            ppo: PpoConfig {
                learning_rate: 3e-3,
                train_batch_size: 400,
                steps_per_episode: 10,
                minibatch_size: 64,
                sgd_iters: 5,
                ..PpoConfig::default()
            },
            episodes: 600,
            checkpoint_every: 100,
            validation_episodes: 8,
            workers: 2,
            seed: 11,
        });
        let before = validate(&|| Toy { t: 0, s: [0.0; 2] }, &trainer.ppo.model, 8, 11);
        let report = trainer.train(|| Toy { t: 0, s: [0.0; 2] });
        assert!(
            report.best_validation_reward > before,
            "training must improve: {before} → {}",
            report.best_validation_reward
        );
        assert!(!report.history.is_empty());
        assert_eq!(report.episodes_run, 600);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut t = Trainer::new(TrainerConfig {
                ppo: PpoConfig {
                    train_batch_size: 100,
                    steps_per_episode: 10,
                    sgd_iters: 2,
                    ..PpoConfig::fast()
                },
                episodes: 100,
                checkpoint_every: 50,
                validation_episodes: 4,
                workers: 3,
                seed: 21,
            });
            let r = t.train(|| Toy { t: 0, s: [0.0; 2] });
            r.final_model.act_deterministic(&[0.3, 0.3])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trainer_runs_on_graph_env() {
        // Smoke test: a short pre-training run completes and yields
        // finite validation scores.
        let mut trainer = Trainer::new(TrainerConfig {
            ppo: PpoConfig {
                train_batch_size: 200,
                sgd_iters: 3,
                ..PpoConfig::fast()
            },
            episodes: 12,
            checkpoint_every: 6,
            validation_episodes: 4,
            workers: 2,
            seed: 31,
        });
        let report = trainer.train(GraphEnv::new);
        assert!(report.best_validation_reward.is_finite());
        assert_eq!(report.episodes_run, 12);
    }

    #[test]
    fn transfer_starts_from_given_model() {
        let mut rng = SmallRng::seed_from_u64(1);
        let model = PolicyValue::new(2, &mut rng);
        let marker = model.act_deterministic(&[0.9, 0.1]);
        let trainer = Trainer::from_model(TrainerConfig::default(), model);
        assert_eq!(trainer.ppo.model.act_deterministic(&[0.9, 0.1]), marker);
    }
}
