//! Specialization environment: the full cluster simulator as the
//! "target real-world application" of the Sim2Real pipeline (§4.3).
//!
//! "For each episode, we randomly generate workloads composed of
//! different external APIs for the application. At each step, for a given
//! set of APIs, an RL-based rate controller observes state features,
//! makes rate control decisions, and then receives the reward."
//!
//! Each episode builds a fresh [`cluster::Engine`] over the target
//! topology, offers a randomized overload workload, and lets the agent
//! move one collective rate limit across the candidate APIs — the same
//! actuation a per-cluster TopFull controller performs. Mid-episode
//! replica scale-ups emulate autoscaler allocations.

use crate::env::{RlEnv, StepResult};
use cluster::{Engine, EngineConfig, OpenLoopWorkload, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use simnet::{SimDuration, SimTime};

/// Configuration of the specialization environment.
#[derive(Clone, Debug)]
pub struct ClusterEnvConfig {
    /// Per-API offered-rate range, as a multiple of a nominal per-API
    /// base rate (drawn per episode).
    pub base_rate: f64,
    pub surge_range: (f64, f64),
    /// Probability an episode includes a mid-episode capacity scale-up.
    pub scale_up_prob: f64,
    /// Warmup before the first observation (s).
    pub warmup_secs: u64,
    /// ρ in Equation 3 (applied to normalized latency excess).
    pub rho: f64,
}

impl Default for ClusterEnvConfig {
    fn default() -> Self {
        ClusterEnvConfig {
            base_rate: 300.0,
            surge_range: (0.3, 3.0),
            scale_up_prob: 0.4,
            warmup_secs: 3,
            rho: 1.0,
        }
    }
}

/// The environment. `reset` rebuilds the engine; `step` advances one
/// control interval (1 simulated second).
pub struct ClusterEnv {
    topo: Topology,
    cfg: ClusterEnvConfig,
    engine: Option<Engine>,
    /// Collective rate limit applied across all APIs (split evenly).
    limit: f64,
    prev_goodput: f64,
    scale: f64,
    scale_up_at: Option<usize>,
    step_count: usize,
    now: SimTime,
    episode_seed: u64,
}

impl ClusterEnv {
    /// An environment over `topo` (cloned per episode).
    pub fn new(topo: Topology, cfg: ClusterEnvConfig) -> Self {
        ClusterEnv {
            topo,
            cfg,
            engine: None,
            limit: 1.0,
            prev_goodput: 0.0,
            scale: 1.0,
            scale_up_at: None,
            step_count: 0,
            now: SimTime::ZERO,
            episode_seed: 0,
        }
    }

    fn apply_limit(&mut self) {
        let engine = self.engine.as_mut().expect("reset first");
        let n = engine.topology().num_apis() as f64;
        let per_api = self.limit / n;
        let apis: Vec<cluster::ApiId> = engine.topology().apis().map(|(id, _)| id).collect();
        for api in apis {
            engine.set_rate_limit(api, per_api);
        }
    }

    fn observe(&mut self) -> [f64; 2] {
        let engine = self.engine.as_mut().expect("reset first");
        let Some(obs) = engine.latest_observation() else {
            return [0.0, 0.0];
        };
        let goodput = obs.total_goodput();
        let slo = obs.slo.as_secs_f64();
        let lat = obs
            .apis
            .iter()
            .map(|a| a.tail_latency().as_secs_f64())
            .fold(0.0, f64::max);
        let ratio = if self.limit > 0.0 {
            (goodput / self.limit).clamp(0.0, 2.0)
        } else {
            0.0
        };
        [ratio, (lat / slo).clamp(0.0, 5.0)]
    }

    fn goodput_and_latency(&self) -> (f64, f64) {
        let engine = self.engine.as_ref().expect("reset first");
        match engine.latest_observation() {
            Some(obs) => {
                let lat = obs
                    .apis
                    .iter()
                    .map(|a| a.tail_latency().as_secs_f64())
                    .fold(0.0, f64::max);
                (obs.total_goodput(), lat)
            }
            None => (0.0, 0.0),
        }
    }
}

impl RlEnv for ClusterEnv {
    fn reset(&mut self, rng: &mut SmallRng) -> [f64; 2] {
        self.episode_seed = rng.gen();
        let n_apis = self.topo.num_apis();
        // Randomized overload workload: each API offers base × surge.
        let rates: Vec<(cluster::ApiId, f64)> = self
            .topo
            .apis()
            .map(|(id, _)| {
                let (lo, hi) = self.cfg.surge_range;
                (id, self.cfg.base_rate * rng.gen_range(lo..hi))
            })
            .collect();
        let total_offered: f64 = rates.iter().map(|(_, r)| r).sum();
        let workload = OpenLoopWorkload::constant(rates);
        let mut engine = Engine::new(
            self.topo.clone(),
            EngineConfig {
                seed: self.episode_seed,
                ..EngineConfig::default()
            },
            Box::new(workload),
        );
        // Start the collective limit anywhere from throttled to open.
        self.limit = total_offered * rng.gen_range(0.2..1.2);
        self.scale = total_offered.max(1.0);
        self.scale_up_at = if rng.gen_bool(self.cfg.scale_up_prob) {
            Some(rng.gen_range(15..40))
        } else {
            None
        };
        self.step_count = 0;
        self.now = SimTime::from_secs(self.cfg.warmup_secs);
        engine.run_until(self.now);
        self.engine = Some(engine);
        self.apply_limit();
        let _ = n_apis;
        let (g, _) = self.goodput_and_latency();
        self.prev_goodput = g;
        self.observe()
    }

    fn step(&mut self, action: f64, _rng: &mut SmallRng) -> StepResult {
        self.step_count += 1;
        self.limit = (self.limit * (1.0 + action)).max(self.scale * 0.01);
        self.apply_limit();
        // Mid-episode capacity allocation: scale every service up 2×,
        // mimicking an autoscaler landing new pods.
        if self.scale_up_at == Some(self.step_count) {
            let engine = self.engine.as_mut().expect("reset first");
            let services: Vec<(cluster::ServiceId, u32)> = engine
                .topology()
                .services()
                .map(|(id, s)| (id, s.replicas * 2))
                .collect();
            for (sid, n) in services {
                engine.grow_service(sid, n);
            }
        }
        self.now += SimDuration::from_secs(1);
        self.engine
            .as_mut()
            .expect("reset first")
            .run_until(self.now);
        let (good, lat) = self.goodput_and_latency();
        let slo = 1.0;
        let reward = (good - self.prev_goodput) / self.scale
            - self.cfg.rho * ((lat - slo).max(0.0) / slo).min(5.0);
        self.prev_goodput = good;
        StepResult {
            state: self.observe(),
            reward,
            done: self.step_count >= self.horizon(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ApiSpec, CallNode, ServiceSpec};
    use rand::SeedableRng;

    fn topo() -> Topology {
        let mut t = Topology::new("env-test");
        // Small queues so warmup backlog drains within a few steps.
        let s = t.add_service(ServiceSpec::new("s", 2).queue_capacity(64));
        t.add_api(ApiSpec::single(
            "a",
            CallNode::leaf(s, SimDuration::from_millis(10)),
        ));
        t
    }

    #[test]
    fn reset_and_full_episode_run() {
        let mut env = ClusterEnv::new(topo(), ClusterEnvConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let s0 = env.reset(&mut rng);
        assert!(s0.iter().all(|x| x.is_finite()));
        let mut done = false;
        for _ in 0..env.horizon() {
            let r = env.step(0.1, &mut rng);
            assert!(r.reward.is_finite());
            done = r.done;
        }
        assert!(done);
    }

    #[test]
    fn throttling_to_capacity_yields_high_ratio() {
        // 2 pods × 10 ms = 200 rps capacity.
        let mut env = ClusterEnv::new(
            topo(),
            ClusterEnvConfig {
                base_rate: 600.0,
                surge_range: (1.0, 1.00001),
                scale_up_prob: 0.0,
                ..ClusterEnvConfig::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(2);
        env.reset(&mut rng);
        // Drive the limit to ~150 rps (below capacity) and let the
        // warmup backlog drain before judging.
        env.limit = 150.0;
        env.apply_limit();
        let mut last = [0.0, 0.0];
        for _ in 0..15 {
            last = env.step(0.0, &mut rng).state;
        }
        assert!(last[0] > 0.8, "goodput/limit ≈ 1, got {}", last[0]);
        assert!(last[1] < 0.5, "latency low below capacity, got {}", last[1]);
    }

    #[test]
    fn episodes_are_randomized() {
        let mut env = ClusterEnv::new(topo(), ClusterEnvConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        env.reset(&mut rng);
        let l1 = env.limit;
        env.reset(&mut rng);
        let l2 = env.limit;
        assert_ne!(l1, l2, "per-episode randomization");
    }
}
