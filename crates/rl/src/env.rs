//! Environment abstraction for the rate-controller agent.

use rand::rngs::SmallRng;

/// One step's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepResult {
    /// Next state (goodput/limit ratio, normalized tail latency).
    pub state: [f64; 2],
    /// Reward: `ΔGoodput − ρ·max(0, latency − SLO)` (Equation 3).
    pub reward: f64,
    /// Episode termination.
    pub done: bool,
}

/// An episodic environment with the paper's 2-dim state / 1-dim action.
pub trait RlEnv {
    /// Start a new episode; returns the initial state.
    fn reset(&mut self, rng: &mut SmallRng) -> [f64; 2];

    /// Apply a (clipped) multiplicative rate action in `[-0.5, 0.5]`.
    fn step(&mut self, action: f64, rng: &mut SmallRng) -> StepResult;

    /// Fixed episode length (the paper uses 50 steps, Table 1).
    fn horizon(&self) -> usize {
        50
    }
}
