//! Scenario → live plane translation (`topfull live`).
//!
//! Takes the *same* scenario file the simulator runs and serves it for
//! real: the topology becomes a CPU-burning worker pool behind a
//! loopback TCP gateway ([`liveserve`]), the workload becomes socket
//! clients, and the controller — built by the exact code path the
//! simulator uses ([`crate::build::topfull_config`]) — runs on a
//! wall-clock tick. Workload step times are compressed by
//! `live_duration / scenario.duration_secs`, so a 120-second simulated
//! scenario replays its shape in, say, a 24-second live run.
//!
//! Live mode controls **entry admission only**; per-service admission
//! baselines (DAGOR, Breakwater, WISP) and the retry-storm workload have
//! no live equivalent and are rejected loudly.

use crate::build::{build_topology, topfull_config};
use crate::report::ScenarioOutcome;
use crate::schema::{
    ControllerSpec, LiveSpec, Scenario, ShardFaultJson, ShardingSpec, WorkloadSpec,
};
use cluster::{Controller, NoControl, ResilienceStats, Topology};
use liveserve::{
    ClosedLoopSpec, LiveConfig, LiveRunResult, LiveServer, LoadGen, OpenLoopArm, ShardedLive,
    ShardedLiveConfig,
};
use std::time::Duration;
use topfull::TopFull;

/// Build the live controller for a scenario. Only entry-level
/// controllers can drive the live gateway.
fn build_live_controller(sc: &Scenario) -> Result<Box<dyn Controller>, String> {
    match &sc.controller {
        ControllerSpec::None => Ok(Box::new(NoControl)),
        ControllerSpec::Topfull {
            rate_controller,
            clustering,
            hardened,
        } => Ok(Box::new(TopFull::new(topfull_config(
            rate_controller,
            *clustering,
            *hardened,
        )?))),
        other => Err(format!(
            "live mode drives entry admission only; per-service admission \
             controller {other:?} has no live equivalent (use topfull or none)"
        )),
    }
}

/// Compress a `(from_secs, value)` schedule by `scale`.
fn scale_steps(steps: &[(u64, f64)], scale: f64) -> Vec<(f64, f64)> {
    steps.iter().map(|&(t, v)| (t as f64 * scale, v)).collect()
}

fn api_index(topo: &Topology, name: &str) -> Result<usize, String> {
    topo.api_by_name(name)
        .map(|id| id.idx())
        .ok_or_else(|| format!("unknown API '{name}'"))
}

/// Translate the scenario workload into live clients.
fn build_load(
    topo: &Topology,
    spec: &WorkloadSpec,
    scale: f64,
) -> Result<(Option<ClosedLoopSpec>, Vec<OpenLoopArm>), String> {
    match spec {
        WorkloadSpec::OpenLoop { rates } => {
            let mut arms = Vec::with_capacity(rates.len());
            for r in rates {
                arms.push(OpenLoopArm {
                    api: api_index(topo, &r.api)?,
                    rate_steps: scale_steps(&r.steps, scale),
                    key_space: 0,
                });
            }
            Ok((None, arms))
        }
        WorkloadSpec::ClosedLoop {
            users_steps,
            think_ms,
            api_weights,
        } => {
            let mut weights = Vec::with_capacity(api_weights.len());
            for (name, w) in api_weights {
                weights.push((api_index(topo, name)?, *w));
            }
            if weights.is_empty() {
                return Err("api_weights must not be empty".into());
            }
            Ok((
                Some(ClosedLoopSpec {
                    users_steps: scale_steps(users_steps, scale),
                    think: Duration::from_millis(*think_ms),
                    api_weights: weights,
                    key_spaces: Vec::new(),
                }),
                Vec::new(),
            ))
        }
        WorkloadSpec::RetryStorm { .. } => Err(
            "the retry_storm workload has no live equivalent (its retrying \
             clients live inside the simulator); use open_loop or closed_loop"
                .into(),
        ),
    }
}

/// Summarize a live run into the simulator's outcome shape. Steady
/// state starts where the simulator's would, compressed by the same
/// factor as the workload schedule.
fn live_outcome(
    sc: &Scenario,
    duration_secs: u64,
    scale: f64,
    result: &LiveRunResult,
    journal: &obs::Journal,
) -> ScenarioOutcome {
    let from = sc.report.measure_from_secs as f64 * scale;
    let mean_from =
        |f: &dyn Fn(&cluster::ClusterObservation) -> f64| result.mean_over(from, f64::INFINITY, f);
    let goodput_per_api = result
        .api_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), mean_from(&|o| o.apis[i].goodput)))
        .collect();
    let offered_per_api = result
        .api_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), mean_from(&|o| o.apis[i].offered)))
        .collect();
    ScenarioOutcome {
        name: sc.name.clone(),
        duration_secs,
        total_goodput: mean_from(&|o| o.apis.iter().map(|a| a.goodput).sum()),
        goodput_per_api,
        offered_per_api,
        crash_events: 0,
        resilience: ResilienceStats::default(),
        timeline: result.total_goodput_series(),
        // Wall-clock latency percentiles live behind `/metrics`; the
        // outcome's p99 series is a simulator-only field.
        p99_timeline: Vec::new(),
        journal: journal.snapshot(),
        shard_plane: None,
        shard_guards: None,
        live_rejects: None,
        traces: Vec::new(),
    }
}

/// Run a scenario against the live plane for `duration_secs` of wall
/// clock, returning the same outcome shape as the simulator.
pub fn run_live(sc: &Scenario, duration_secs: u64) -> Result<ScenarioOutcome, String> {
    if duration_secs == 0 {
        return Err("live duration must be at least 1 second".into());
    }
    if sc.duration_secs == 0 {
        return Err("scenario duration_secs must be positive".into());
    }
    let topo = build_topology(&sc.app)?;
    let mut controller = build_live_controller(sc)?;
    let journal = obs::Journal::shared();
    controller.attach_journal(std::sync::Arc::clone(&journal));
    let scale = duration_secs as f64 / sc.duration_secs as f64;
    let (mut closed, mut arms) = build_load(&topo, &sc.workload, scale)?;
    let live = sc.live.clone().unwrap_or_default();
    let mut cfg = live_config(&live, sc.slo_ms);
    if let Some(adm) = &sc.admission {
        if sc.sharding.is_some() {
            return Err(
                "admission (front-door coalescing/priority) and sharding don't compose yet".into(),
            );
        }
        let (front, key_spaces) = crate::build::front_door_config(&topo, adm)?;
        cfg.front = Some(front);
        // Keyed traffic: each client draws keys from the scenario's
        // per-API key space so duplicate reads actually collide.
        if let Some(c) = closed.as_mut() {
            c.key_spaces.clone_from(&key_spaces);
        }
        for a in &mut arms {
            a.key_space = key_spaces.get(a.api).copied().unwrap_or(0);
        }
    }
    if let Some(spec) = &sc.sharding {
        return run_live_sharded(
            sc,
            spec,
            duration_secs,
            scale,
            &topo,
            controller,
            journal,
            cfg,
            closed,
            arms,
        );
    }
    let mut server =
        LiveServer::start(&topo, cfg).map_err(|e| format!("cannot start live server: {e}"))?;
    server.attach_journal(std::sync::Arc::clone(&journal));
    if let Some(slo) = &sc.slo {
        server.set_slo_config(slo.to_config());
    }
    let gen = LoadGen::start(server.addr(), closed, arms)
        .map_err(|e| format!("cannot start load generator: {e}"))?;
    let result = server.run(controller.as_mut(), Duration::from_secs(duration_secs));
    let rejects = (gen.rejects().limit(), gen.rejects().shed());
    gen.stop();
    let traces = server.traces();
    server.shutdown();
    let mut out = live_outcome(sc, duration_secs, scale, &result, &journal);
    out.live_rejects = Some(rejects);
    out.traces = traces;
    Ok(out)
}

/// Translate the scenario's shard spec into a live fleet config. Fault
/// times are scenario seconds, compressed by the same factor as the
/// workload schedule.
fn sharded_live_config(
    spec: &ShardingSpec,
    scale: f64,
    base: LiveConfig,
) -> Result<ShardedLiveConfig, String> {
    if spec.shards == 0 {
        return Err("sharding.shards must be at least 1".into());
    }
    let mut cfg = ShardedLiveConfig::new(spec.shards, base);
    cfg.plane = topfull::ShardPlaneConfig {
        min_quantum: spec.min_quantum,
        strike_out: spec.strike_out,
        reentry_ticks: spec.reentry_ticks,
        limit_ttl: spec.limit_ttl,
        ..Default::default()
    };
    for f in &spec.faults {
        match f {
            ShardFaultJson::Kill { shard, at_secs } => {
                if *shard >= spec.shards {
                    return Err(format!(
                        "shard fault targets shard {shard} but only {} exist",
                        spec.shards
                    ));
                }
                if cfg.kill.is_some() {
                    return Err("live mode supports at most one shard kill per run".into());
                }
                cfg.kill = Some((*shard, *at_secs as f64 * scale));
            }
            ShardFaultJson::ControllerLoss {
                from_secs,
                until_secs,
            } => {
                if cfg.controller_loss.is_some() {
                    return Err("live mode supports one controller-loss window per run".into());
                }
                cfg.controller_loss = Some((*from_secs as f64 * scale, *until_secs as f64 * scale));
            }
            ShardFaultJson::Dropout { shard, .. } => {
                return Err(format!(
                    "the dropout fault (shard {shard}) models a telemetry partition and \
                     is simulator-only; live mode supports kill and controller_loss"
                ));
            }
        }
    }
    Ok(cfg)
}

/// Run the scenario against N real gateways under one logical
/// controller (the live half of the sharded control plane).
#[allow(clippy::too_many_arguments)]
fn run_live_sharded(
    sc: &Scenario,
    spec: &ShardingSpec,
    duration_secs: u64,
    scale: f64,
    topo: &Topology,
    mut controller: Box<dyn Controller>,
    journal: std::sync::Arc<obs::Journal>,
    base: LiveConfig,
    closed: Option<ClosedLoopSpec>,
    arms: Vec<OpenLoopArm>,
) -> Result<ScenarioOutcome, String> {
    let cfg = sharded_live_config(spec, scale, base)?;
    let mut fleet = ShardedLive::start(topo, cfg, closed, arms)
        .map_err(|e| format!("cannot start sharded live fleet: {e}"))?;
    fleet.attach_journal(std::sync::Arc::clone(&journal));
    if let Some(slo) = &sc.slo {
        fleet.set_slo_config(slo.to_config());
    }
    let result = fleet.run(controller.as_mut(), Duration::from_secs(duration_secs));
    let traces = fleet.traces();
    let sharded = fleet.shutdown();
    let mut out = live_outcome(sc, duration_secs, scale, &result, &journal);
    out.shard_plane = Some(sharded.plane_stats);
    out.shard_guards = Some(sharded.guard_stats);
    out.traces = traces;
    Ok(out)
}

fn live_config(live: &LiveSpec, slo_ms: u64) -> LiveConfig {
    LiveConfig {
        slo: Duration::from_millis(slo_ms),
        control_interval: Duration::from_millis(live.control_interval_ms.max(10)),
        cpu_scale: live.cpu_scale,
        gateway_burst_secs: live.gateway_burst_secs,
        port: live.port,
        metrics_port: live.metrics_port,
        event_loops: live.event_loops,
        max_conn_output: live.max_conn_output,
        front: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    fn tiny_live_scenario(workload: &str, controller: &str) -> Scenario {
        let json = format!(
            r#"{{
                "name": "live-test",
                "duration_secs": 2,
                "slo_ms": 100,
                "app": {{"type": "inline",
                    "services": [{{"name": "svc", "replicas": 1, "queue_capacity": 64}}],
                    "apis": [{{"name": "ping", "paths": [
                        {{"root": {{"service": "svc", "cost_ms": 0.1}}}}
                    ]}}]
                }},
                "workload": {workload},
                "controller": {controller},
                "live": {{"control_interval_ms": 100}},
                "report": {{"measure_from_secs": 0}}
            }}"#
        );
        parse_scenario(&json).expect("parse")
    }

    #[test]
    fn open_loop_scenario_serves_real_traffic() {
        let sc = tiny_live_scenario(
            r#"{"type": "open_loop", "rates": [{"api": "ping", "steps": [[0, 200.0]]}]}"#,
            r#"{"type": "topfull", "rate_controller": "mimd"}"#,
        );
        let out = run_live(&sc, 2).expect("live run");
        assert_eq!(out.name, "live-test");
        assert_eq!(out.duration_secs, 2);
        assert_eq!(out.goodput_per_api[0].0, "ping");
        assert!(
            out.total_goodput > 100.0,
            "200 rps of 100µs work should mostly complete, got {}",
            out.total_goodput
        );
        assert!(!out.timeline.is_empty());
    }

    #[test]
    fn closed_loop_scenario_serves_real_traffic() {
        let sc = tiny_live_scenario(
            r#"{"type": "closed_loop", "users_steps": [[0, 4.0]], "think_ms": 10,
                "api_weights": [["ping", 1.0]]}"#,
            r#"{"type": "none"}"#,
        );
        let out = run_live(&sc, 2).expect("live run");
        assert!(
            out.total_goodput > 50.0,
            "4 users at ~10ms/turn exceed 50 rps, got {}",
            out.total_goodput
        );
    }

    #[test]
    fn unsupported_modes_are_rejected_loudly() {
        let sc = tiny_live_scenario(
            r#"{"type": "retry_storm", "users": 5, "api_weights": [["ping", 1.0]]}"#,
            r#"{"type": "none"}"#,
        );
        let err = run_live(&sc, 1).expect_err("retry storm must be rejected");
        assert!(err.contains("retry_storm"), "{err}");

        let sc = tiny_live_scenario(
            r#"{"type": "open_loop", "rates": []}"#,
            r#"{"type": "dagor"}"#,
        );
        let err = run_live(&sc, 1).expect_err("dagor must be rejected");
        assert!(err.contains("no live equivalent"), "{err}");

        let sc = tiny_live_scenario(
            r#"{"type": "open_loop", "rates": [{"api": "nope", "steps": []}]}"#,
            r#"{"type": "none"}"#,
        );
        let err = run_live(&sc, 1).expect_err("unknown API must be rejected");
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn sharded_live_run_reports_plane_stats() {
        let mut sc = tiny_live_scenario(
            r#"{"type": "open_loop", "rates": [{"api": "ping", "steps": [[0, 150.0]]}]}"#,
            r#"{"type": "topfull", "rate_controller": "mimd"}"#,
        );
        sc.sharding = Some(ShardingSpec {
            shards: 2,
            ..Default::default()
        });
        let out = run_live(&sc, 2).expect("sharded live run");
        let plane = out.shard_plane.expect("plane stats present");
        assert!(plane.merges > 0, "controller ticked on merged observations");
        assert!(
            out.total_goodput > 50.0,
            "two shards of 100µs work should serve >50 rps, got {}",
            out.total_goodput
        );
    }

    #[test]
    fn dropout_fault_is_simulator_only_in_live_mode() {
        let mut sc = tiny_live_scenario(
            r#"{"type": "open_loop", "rates": [{"api": "ping", "steps": [[0, 50.0]]}]}"#,
            r#"{"type": "none"}"#,
        );
        sc.sharding = Some(ShardingSpec {
            shards: 2,
            faults: vec![ShardFaultJson::Dropout {
                shard: 0,
                from_secs: 0,
                until_secs: 1,
            }],
            ..Default::default()
        });
        let err = run_live(&sc, 1).expect_err("dropout must be rejected live");
        assert!(err.contains("simulator-only"), "{err}");
    }

    #[test]
    fn schedules_compress_to_the_live_duration() {
        assert_eq!(
            scale_steps(&[(0, 10.0), (60, 30.0), (120, 10.0)], 0.25),
            vec![(0.0, 10.0), (15.0, 30.0), (30.0, 10.0)]
        );
    }
}
