//! `topfull trace` — render causal request traces as per-request
//! waterfalls.
//!
//! Accepts any of:
//!
//! * a run artifact (`topfull live … --json > run.json`) — a JSON
//!   object with a top-level `"traces"` array;
//! * a raw JSONL stream of [`obs::TraceEvent`] objects, as served by
//!   the live gateway's `GET /trace` route;
//! * an `http://host:port[/trace[/<id>]]` URL, fetched with a one-shot
//!   GET against the gateway's exposition endpoint.
//!
//! Rendering is [`obs::render_waterfall`]: one block per trace id with
//! a bar per pipeline stage, so an operator can see *where* a request
//! spent its latency — or which stage shed it.

use obs::TraceEvent;

/// Load events from `arg` (file path or `http://` URL), keep only
/// `filter`'s trace when given, and render the waterfall.
pub fn trace_source(arg: &str, filter: Option<u64>) -> Result<String, String> {
    let events = load_events(arg)?;
    let events: Vec<TraceEvent> = events
        .into_iter()
        .filter(|e| filter.is_none() || filter == Some(e.trace))
        .collect();
    Ok(obs::render_waterfall(&events))
}

fn load_events(arg: &str) -> Result<Vec<TraceEvent>, String> {
    if let Some(rest) = arg.strip_prefix("http://") {
        return fetch_http(rest);
    }
    let text = std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
    parse_events(&text)
}

/// Parse trace events out of either supported text shape.
pub fn parse_events(text: &str) -> Result<Vec<TraceEvent>, String> {
    if text.trim().is_empty() {
        return Err(
            "no trace events: the input is empty (expected a run artifact with a \
             \"traces\" array, or JSONL of trace events)"
                .into(),
        );
    }
    // A run artifact is one JSON document; try that reading first.
    if let Ok(doc) = serde_json::from_str::<serde_json::JsonValue>(text) {
        if let Some(traces) = doc.get("traces") {
            let serde::Value::Array(items) = traces else {
                return Err("\"traces\" field is not an array".into());
            };
            return items
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    serde_json::to_string(v)
                        .map_err(|e| format!("traces[{i}]: {e}"))
                        .and_then(|s| {
                            serde_json::from_str::<TraceEvent>(&s)
                                .map_err(|e| format!("traces[{i}]: not a trace event: {e}"))
                        })
                })
                .collect();
        }
        if let serde::Value::Object(_) = doc {
            if doc.get("trace").is_none() {
                return Err(
                    "no \"traces\" array in this run artifact — only live runs carry \
                     traces (the simulator has no wire to sample trace ids from); \
                     rerun with `topfull live … --json`"
                        .into(),
                );
            }
            // A lone trace event parses as an object too; fall through
            // to the JSONL reader.
        }
    }
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(
            serde_json::from_str::<TraceEvent>(line)
                .map_err(|e| format!("line {}: not a trace event: {e}", lineno + 1))?,
        );
    }
    if out.is_empty() {
        return Err("no trace events found".into());
    }
    Ok(out)
}

/// One-shot `GET` against a live gateway's exposition endpoint. A bare
/// `host:port` defaults to the `/trace` route.
fn fetch_http(rest: &str) -> Result<Vec<TraceEvent>, String> {
    use std::io::{Read, Write};
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/trace"),
    };
    let mut conn =
        std::net::TcpStream::connect(host).map_err(|e| format!("cannot connect to {host}: {e}"))?;
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("cannot send request to {host}: {e}"))?;
    let mut buf = String::new();
    conn.read_to_string(&mut buf)
        .map_err(|e| format!("cannot read response from {host}: {e}"))?;
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {host}"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("{host}{path} answered: {status}"));
    }
    parse_events(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_json(trace: u64, stage: &str, at: f64) -> String {
        format!(
            "{{\"trace\":{trace},\"request\":{},\"api\":0,\"shard\":0,\
             \"stage\":\"{stage}\",\"outcome\":\"admitted\",\"at\":{at},\"dur\":0.0}}",
            trace * 10
        )
    }

    #[test]
    fn jsonl_and_run_artifact_both_parse() {
        let jsonl = format!(
            "{}\n{}\n",
            ev_json(3, "token_bucket", 0.1),
            ev_json(3, "worker", 0.2)
        );
        let events = parse_events(&jsonl).expect("jsonl parses");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace, 3);

        let artifact = format!(
            "{{\"name\":\"run\",\"traces\":[{},{}]}}",
            ev_json(7, "front_door", 0.0),
            ev_json(7, "reply", 0.4)
        );
        let events = parse_events(&artifact).expect("artifact parses");
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.trace == 7));
    }

    #[test]
    fn traceless_artifacts_and_garbage_fail_loudly() {
        let err = parse_events("{\"name\":\"sim-run\",\"journal\":[]}").expect_err("no traces");
        assert!(err.contains("only live runs carry traces"), "{err}");
        let err = parse_events("not json\n").expect_err("garbage");
        assert!(err.contains("line 1"), "{err}");
        assert!(parse_events("  \n").is_err());
    }

    #[test]
    fn waterfall_filters_by_trace_id() {
        let path = std::env::temp_dir().join("topfull-trace-cli-test.jsonl");
        let jsonl = format!(
            "{}\n{}\n{}\n",
            ev_json(1, "token_bucket", 0.1),
            ev_json(2, "token_bucket", 0.2),
            ev_json(1, "worker", 0.3)
        );
        std::fs::write(&path, jsonl).expect("write temp");
        let text = trace_source(path.to_str().expect("utf8 path"), Some(1)).expect("renders");
        assert!(text.contains("trace 1"), "{text}");
        assert!(!text.contains("trace 2"), "{text}");
        let text = trace_source(path.to_str().expect("utf8 path"), None).expect("renders");
        assert!(
            text.contains("trace 1") && text.contains("trace 2"),
            "{text}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
