//! Scenario file format (JSON, serde).
//!
//! Every field has a sensible default so minimal scenarios stay minimal;
//! [`Scenario::example`] emits a fully-populated, commented-by-name
//! example for `topfull-sim example`.

use serde::{Deserialize, Serialize};

/// Top-level scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name.
    #[serde(default = "default_name")]
    pub name: String,
    /// RNG seed (runs are deterministic per seed).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Simulated duration in seconds.
    #[serde(default = "default_duration")]
    pub duration_secs: u64,
    /// Latency SLO in milliseconds (default 1000, the paper's).
    #[serde(default = "default_slo_ms")]
    pub slo_ms: u64,
    /// The application: inline services+apis, or a named benchmark.
    pub app: AppSpec,
    pub workload: WorkloadSpec,
    #[serde(default)]
    pub controller: ControllerSpec,
    #[serde(default)]
    pub autoscaler: Option<AutoscalerSpec>,
    #[serde(default)]
    pub failures: Vec<FailureSpec>,
    /// Gray-failure fault schedule (slow pods, lossy links, degraded
    /// telemetry, controller stalls).
    #[serde(default)]
    pub faults: Vec<FaultSpecJson>,
    /// Request-plane resilience: deadlines, retry budgets, breakers.
    #[serde(default)]
    pub resilience: Option<ResilienceSpec>,
    /// Live-plane tuning for `topfull live` (ignored by the simulator).
    #[serde(default)]
    pub live: Option<LiveSpec>,
    /// Sharded control plane: N gateway shards under one logical
    /// controller, with partition-tolerant failover.
    #[serde(default)]
    pub sharding: Option<ShardingSpec>,
    /// Front-door admission plane: single-flight request coalescing and
    /// DAGOR-style priority admission in front of the token bucket.
    #[serde(default)]
    pub admission: Option<AdmissionSpec>,
    /// SLO error-budget / burn-rate monitor tuning. The monitor always
    /// runs (with Google-SRE defaults when omitted); this block adjusts
    /// the objective and alert thresholds.
    #[serde(default)]
    pub slo: Option<SloSpec>,
    #[serde(default)]
    pub report: ReportSpec,
}

fn default_name() -> String {
    "scenario".into()
}
fn default_seed() -> u64 {
    1
}
fn default_duration() -> u64 {
    120
}
fn default_slo_ms() -> u64 {
    1000
}

/// Application definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum AppSpec {
    /// A built-in benchmark topology.
    Builtin {
        /// `online-boutique`, `train-ticket`, or `alibaba-demo`.
        name: String,
        /// Seed for generated topologies (alibaba-demo).
        #[serde(default = "default_seed")]
        topology_seed: u64,
    },
    /// An inline topology.
    Inline {
        services: Vec<ServiceSpec>,
        apis: Vec<ApiSpec>,
    },
}

/// One service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceSpec {
    pub name: String,
    pub replicas: u32,
    #[serde(default)]
    pub queue_capacity: Option<u32>,
    #[serde(default)]
    pub pod_speed: Option<f64>,
    #[serde(default)]
    pub crash_on_overload: bool,
}

/// One external API.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApiSpec {
    pub name: String,
    /// Lower = more important.
    #[serde(default)]
    pub business_priority: u8,
    /// Weighted execution paths (one = non-branching).
    pub paths: Vec<PathSpec>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathSpec {
    #[serde(default = "default_weight")]
    pub weight: f64,
    pub root: CallSpec,
}

fn default_weight() -> f64 {
    1.0
}

/// A call-tree node: process `cost_ms` at `service`, then call children.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CallSpec {
    pub service: String,
    pub cost_ms: f64,
    #[serde(default)]
    pub children: Vec<CallSpec>,
}

/// Workload definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum WorkloadSpec {
    /// Poisson arrivals with per-API stepwise rate schedules.
    OpenLoop { rates: Vec<RateSpec> },
    /// Locust-style user population.
    ClosedLoop {
        /// `(from_secs, users)` steps.
        users_steps: Vec<(u64, f64)>,
        #[serde(default = "default_think_ms")]
        think_ms: u64,
        api_weights: Vec<(String, f64)>,
    },
    /// Closed-loop clients that retry failures (a §1 retry storm).
    RetryStorm {
        users: u32,
        #[serde(default = "default_think_ms")]
        think_ms: u64,
        api_weights: Vec<(String, f64)>,
        #[serde(default = "default_retries")]
        max_retries: u32,
        #[serde(default = "default_backoff_ms")]
        retry_backoff_ms: u64,
    },
}

fn default_think_ms() -> u64 {
    1000
}
fn default_retries() -> u32 {
    3
}
fn default_backoff_ms() -> u64 {
    50
}

/// Per-API stepwise rate schedule: `(from_secs, rps)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateSpec {
    pub api: String,
    pub steps: Vec<(u64, f64)>,
}

/// Overload controller selection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ControllerSpec {
    /// No overload control.
    #[default]
    None,
    /// TopFull at the entry.
    Topfull {
        /// `mimd`, `bw`, or `rl:<path-to-policy.json>`.
        #[serde(default = "default_rate_controller")]
        rate_controller: String,
        #[serde(default = "default_true")]
        clustering: bool,
        /// Run the hardened loop: safe-fallback rate controller plus the
        /// harness watchdog (freeze → decay when telemetry goes dark).
        #[serde(default)]
        hardened: bool,
    },
    /// DAGOR per-service admission control.
    Dagor {
        #[serde(default = "default_alpha")]
        alpha: f64,
    },
    /// Breakwater per-service credit control.
    Breakwater,
    /// WISP upward-propagated rate limits (extension comparator).
    Wisp,
}

fn default_rate_controller() -> String {
    "mimd".into()
}
fn default_true() -> bool {
    true
}
fn default_alpha() -> f64 {
    0.05
}

/// HPA + optional VM pool.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutoscalerSpec {
    #[serde(default = "default_target_util")]
    pub target_utilization: f64,
    #[serde(default = "default_sync")]
    pub sync_period_secs: u64,
    #[serde(default)]
    pub pod_startup_secs: Option<u64>,
    #[serde(default)]
    pub vm_pool: Option<VmPoolSpec>,
}

fn default_target_util() -> f64 {
    0.7
}
fn default_sync() -> u64 {
    15
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VmPoolSpec {
    pub vcpus_per_vm: u32,
    pub initial_vms: u32,
    pub max_vms: u32,
    pub vm_startup_secs: u64,
}

/// Kill `pods` pods of `service` at `at_secs`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FailureSpec {
    pub at_secs: u64,
    pub service: String,
    pub pods: u32,
}

/// One scheduled gray-failure fault (JSON form of
/// [`cluster::FaultSpec`]; windows are `[from_secs, until_secs)`).
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultSpecJson {
    /// Kill `pods` pods of `service` at `at_secs` (same effect as an
    /// entry in `failures`, schedulable alongside the gray faults).
    PodKill {
        at_secs: u64,
        service: String,
        pods: u32,
    },
    /// Multiply `service`'s service time by `factor` inside the window.
    SlowPods {
        from_secs: u64,
        until_secs: u64,
        service: String,
        factor: f64,
    },
    /// Add per-hop latency and a loss probability on calls into
    /// `service` (all services when omitted).
    NetworkDegrade {
        from_secs: u64,
        until_secs: u64,
        #[serde(default)]
        service: Option<String>,
        #[serde(default)]
        extra_latency_ms: u64,
        #[serde(default)]
        loss: f64,
    },
    /// Blank `service`'s utilization (all services when omitted) in the
    /// controller-facing observation.
    TelemetryDropout {
        from_secs: u64,
        until_secs: u64,
        #[serde(default)]
        service: Option<String>,
    },
    /// Serve the controller observations `by_secs` old.
    TelemetryStaleness {
        from_secs: u64,
        until_secs: u64,
        by_secs: u64,
    },
    /// Multiplicative lognormal noise (σ = `sigma`) on utilization.
    TelemetryNoise {
        from_secs: u64,
        until_secs: u64,
        sigma: f64,
    },
    /// The control loop misses every tick inside the window.
    ControllerStall { from_secs: u64, until_secs: u64 },
}

/// Request-plane resilience layer (deadline propagation, adaptive retry
/// budgets, per-edge circuit breakers). All three parts are optional and
/// independent.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ResilienceSpec {
    /// Deadline propagation + doomed-work cancellation.
    #[serde(default)]
    pub deadlines: Option<DeadlineSpecJson>,
    /// Client-side adaptive retry budget (requires the `retry_storm`
    /// workload, which owns the retrying clients).
    #[serde(default)]
    pub retry_budget: Option<RetryBudgetSpecJson>,
    /// Per-downstream-edge circuit breakers.
    #[serde(default)]
    pub breakers: Option<BreakerSpecJson>,
}

/// Deadline policy (JSON form of [`cluster::DeadlineConfig`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeadlineSpecJson {
    /// Per-request budget in ms; omitted = client timeout, else the SLO.
    #[serde(default)]
    pub budget_ms: Option<u64>,
    /// Skip queued work for cancelled requests and tear down the
    /// in-flight subtree when the client timeout fires.
    #[serde(default = "default_true")]
    pub cancel_doomed: bool,
}

/// Retry budget tuning (JSON form of [`cluster::RetryBudgetConfig`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetryBudgetSpecJson {
    #[serde(default = "default_budget_tokens")]
    pub max_tokens: f64,
    #[serde(default = "default_token_ratio")]
    pub token_ratio: f64,
    #[serde(default = "default_retry_cost")]
    pub retry_cost: f64,
}

fn default_budget_tokens() -> f64 {
    100.0
}
fn default_token_ratio() -> f64 {
    0.1
}
fn default_retry_cost() -> f64 {
    1.0
}

/// Circuit-breaker tuning (JSON form of [`cluster::BreakerConfig`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BreakerSpecJson {
    #[serde(default = "default_failure_threshold")]
    pub failure_threshold: f64,
    #[serde(default = "default_min_calls")]
    pub min_calls: u32,
    #[serde(default = "default_open_for_ms")]
    pub open_for_ms: u64,
    #[serde(default = "default_half_open_probes")]
    pub half_open_probes: u32,
}

fn default_failure_threshold() -> f64 {
    0.5
}
fn default_min_calls() -> u32 {
    20
}
fn default_open_for_ms() -> u64 {
    2000
}
fn default_half_open_probes() -> u32 {
    5
}

/// Live-plane (`topfull live`) tuning. The simulated scenario's
/// topology, workload shape, controller and SLO carry over unchanged;
/// these knobs only exist because wall-clock capacity depends on the
/// host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LiveSpec {
    /// Multiplier on every call's CPU cost; live capacity scales as
    /// `1 / cpu_scale`, letting one host emulate a larger cluster.
    #[serde(default = "default_cpu_scale")]
    pub cpu_scale: f64,
    /// Controller tick period in milliseconds.
    #[serde(default = "default_control_interval_ms")]
    pub control_interval_ms: u64,
    /// Gateway token-bucket burst window, in seconds of the current rate.
    #[serde(default = "default_burst_secs")]
    pub gateway_burst_secs: f64,
    /// Loopback TCP port; 0 = ephemeral.
    #[serde(default)]
    pub port: u16,
    /// Loopback TCP port of the HTTP exposition endpoint
    /// (`GET /metrics`, `GET /spans`); 0 = ephemeral.
    #[serde(default)]
    pub metrics_port: u16,
    /// Gateway event loops; 0 = one per core (capped at 8).
    #[serde(default)]
    pub event_loops: usize,
    /// Per-connection pending-output cap in bytes; a peer that stops
    /// reading its replies is paused, then dropped past this.
    #[serde(default = "default_max_conn_output")]
    pub max_conn_output: usize,
}

fn default_cpu_scale() -> f64 {
    1.0
}
fn default_control_interval_ms() -> u64 {
    200
}
fn default_burst_secs() -> f64 {
    0.05
}
fn default_max_conn_output() -> usize {
    1 << 20
}

impl Default for LiveSpec {
    fn default() -> Self {
        LiveSpec {
            cpu_scale: default_cpu_scale(),
            control_interval_ms: default_control_interval_ms(),
            gateway_burst_secs: default_burst_secs(),
            port: 0,
            metrics_port: 0,
            event_loops: 0,
            max_conn_output: default_max_conn_output(),
        }
    }
}

/// Sharded control plane: N gateway shards feed one logical TopFull
/// controller; the aggregated limits are split back per shard by
/// observed arrival share. Applies to both the simulator (virtual
/// shards over one engine) and `topfull live` (N real gateways).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardingSpec {
    /// Number of gateway shards (≥ 1).
    pub shards: usize,
    /// Client-affinity weights, one per shard (uniform when omitted).
    /// Simulator only; live shards always split uniformly.
    #[serde(default)]
    pub weights: Option<Vec<f64>>,
    /// Minimum per-shard quota (rps) so cold shards can still probe.
    #[serde(default = "default_min_quantum")]
    pub min_quantum: f64,
    /// Consecutive missed reports before a shard is declared dead and
    /// its quota redistributed.
    #[serde(default = "default_strike_out")]
    pub strike_out: u32,
    /// Ticks of ramped re-entry after a dead shard returns.
    #[serde(default = "default_reentry_ticks")]
    pub reentry_ticks: u32,
    /// Ticks a shard holds last-good limits without controller contact
    /// before decaying into its local MIMD fallback.
    #[serde(default = "default_limit_ttl")]
    pub limit_ttl: u32,
    /// Scheduled shard-plane faults.
    #[serde(default)]
    pub faults: Vec<ShardFaultJson>,
}

impl Default for ShardingSpec {
    fn default() -> Self {
        ShardingSpec {
            shards: 1,
            weights: None,
            min_quantum: default_min_quantum(),
            strike_out: default_strike_out(),
            reentry_ticks: default_reentry_ticks(),
            limit_ttl: default_limit_ttl(),
            faults: vec![],
        }
    }
}

fn default_min_quantum() -> f64 {
    1.0
}
fn default_strike_out() -> u32 {
    3
}
fn default_reentry_ticks() -> u32 {
    5
}
fn default_limit_ttl() -> u32 {
    5
}

/// One scheduled shard-plane fault (JSON form of
/// [`cluster::ShardFault`]; windows are `[from_secs, until_secs)`).
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ShardFaultJson {
    /// Telemetry partition: the shard keeps serving but its reports and
    /// the controller's pushes don't get through (simulator only).
    Dropout {
        shard: usize,
        from_secs: u64,
        until_secs: u64,
    },
    /// The shard dies abruptly at `at_secs`; its client share fails
    /// over to the survivors.
    Kill { shard: usize, at_secs: u64 },
    /// The logical controller is unreachable inside the window; shards
    /// degrade to held limits, then the local MIMD fallback.
    ControllerLoss { from_secs: u64, until_secs: u64 },
}

/// Front-door admission plane. Both stages are optional and
/// independent; they run before the TopFull token bucket in both the
/// simulator and the live gateway.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AdmissionSpec {
    /// Single-flight coalescing of identical in-flight reads, backed by
    /// a bounded TTL'd response cache.
    #[serde(default)]
    pub coalesce: Option<CoalesceSpec>,
    /// DAGOR-style (business, user) priority gate with an adaptive
    /// threshold driven by queuing-delay feedback.
    #[serde(default)]
    pub priority: Option<PrioritySpec>,
}

/// Coalescing stage tuning (JSON form of [`cluster::front`]'s
/// `CoalesceConfig` plus the per-API key spaces).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoalesceSpec {
    /// Names of the APIs whose requests are coalescable (reads).
    pub apis: Vec<String>,
    /// Distinct request keys per coalescable API; duplicate keys are the
    /// coalescing opportunity.
    #[serde(default = "default_key_space")]
    pub key_space: u64,
    /// Response-cache capacity in entries; 0 disables caching but keeps
    /// single-flight leader election.
    #[serde(default = "default_cache_capacity")]
    pub cache_capacity: usize,
    /// Response-cache entry TTL in milliseconds.
    #[serde(default = "default_cache_ttl_ms")]
    pub cache_ttl_ms: u64,
}

fn default_key_space() -> u64 {
    64
}
fn default_cache_capacity() -> usize {
    1024
}
fn default_cache_ttl_ms() -> u64 {
    500
}

/// Priority-gate tuning (JSON form of [`cluster::front`]'s
/// `PriorityConfig`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrioritySpec {
    /// Business tiers (level = business * user_levels + user).
    #[serde(default = "default_business_tiers")]
    pub business_tiers: u8,
    /// User sub-levels within each business tier.
    #[serde(default = "default_user_levels")]
    pub user_levels: u8,
    /// Target shed fraction under overload (DAGOR's alpha).
    #[serde(default = "default_alpha")]
    pub alpha: f64,
    /// Recovery fraction per non-overloaded window (DAGOR's beta).
    #[serde(default = "default_beta")]
    pub beta: f64,
    /// Mean queuing delay above which a window counts as overloaded.
    #[serde(default = "default_queuing_delay_ms")]
    pub queuing_delay_ms: u64,
}

fn default_business_tiers() -> u8 {
    8
}
fn default_user_levels() -> u8 {
    128
}
fn default_beta() -> f64 {
    0.01
}
fn default_queuing_delay_ms() -> u64 {
    20
}

impl Default for PrioritySpec {
    fn default() -> Self {
        PrioritySpec {
            business_tiers: default_business_tiers(),
            user_levels: default_user_levels(),
            alpha: default_alpha(),
            beta: default_beta(),
            queuing_delay_ms: default_queuing_delay_ms(),
        }
    }
}

/// SLO burn-rate monitor tuning (JSON form of [`obs::SloConfig`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SloSpec {
    /// Fraction of requests that must be good, e.g. `0.999` tolerates
    /// 0.1% bad before the error budget is exhausted.
    #[serde(default = "default_objective")]
    pub objective: f64,
    /// Fast `(short, long)` alert window pair in seconds; paging
    /// requires both to burn past `page_burn`.
    #[serde(default = "default_fast_windows")]
    pub fast_windows_secs: (f64, f64),
    /// Slow `(short, long)` window pair in seconds (ticket severity).
    #[serde(default = "default_slow_windows")]
    pub slow_windows_secs: (f64, f64),
    /// Burn-rate multiple that pages on the fast pair.
    #[serde(default = "default_page_burn")]
    pub page_burn: f64,
    /// Burn-rate multiple that tickets on the slow pair.
    #[serde(default = "default_ticket_burn")]
    pub ticket_burn: f64,
}

fn default_objective() -> f64 {
    0.999
}
fn default_fast_windows() -> (f64, f64) {
    (5.0, 60.0)
}
fn default_slow_windows() -> (f64, f64) {
    (30.0, 360.0)
}
fn default_page_burn() -> f64 {
    14.4
}
fn default_ticket_burn() -> f64 {
    6.0
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            objective: default_objective(),
            fast_windows_secs: default_fast_windows(),
            slow_windows_secs: default_slow_windows(),
            page_burn: default_page_burn(),
            ticket_burn: default_ticket_burn(),
        }
    }
}

impl SloSpec {
    /// Translate into the monitor's config.
    pub fn to_config(&self) -> obs::SloConfig {
        obs::SloConfig {
            objective: self.objective,
            fast_windows: self.fast_windows_secs,
            slow_windows: self.slow_windows_secs,
            page_burn: self.page_burn,
            ticket_burn: self.ticket_burn,
        }
    }
}

/// Output options.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportSpec {
    /// Steady-state window start (seconds).
    #[serde(default = "default_measure_from")]
    pub measure_from_secs: u64,
    /// Print a per-second total-goodput timeline.
    #[serde(default)]
    pub timeline: bool,
}

fn default_measure_from() -> u64 {
    30
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec {
            measure_from_secs: default_measure_from(),
            timeline: false,
        }
    }
}

impl Scenario {
    /// A fully-populated example scenario (for `topfull-sim example`).
    pub fn example() -> Scenario {
        Scenario {
            name: "two-tier-overload".into(),
            seed: 7,
            duration_secs: 120,
            slo_ms: 1000,
            app: AppSpec::Inline {
                services: vec![
                    ServiceSpec {
                        name: "frontend".into(),
                        replicas: 4,
                        queue_capacity: None,
                        pod_speed: None,
                        crash_on_overload: false,
                    },
                    ServiceSpec {
                        name: "backend".into(),
                        replicas: 1,
                        queue_capacity: Some(512),
                        pod_speed: None,
                        crash_on_overload: false,
                    },
                ],
                apis: vec![ApiSpec {
                    name: "get".into(),
                    business_priority: 0,
                    paths: vec![PathSpec {
                        weight: 1.0,
                        root: CallSpec {
                            service: "frontend".into(),
                            cost_ms: 1.0,
                            children: vec![CallSpec {
                                service: "backend".into(),
                                cost_ms: 10.0,
                                children: vec![],
                            }],
                        },
                    }],
                }],
            },
            workload: WorkloadSpec::OpenLoop {
                rates: vec![RateSpec {
                    api: "get".into(),
                    steps: vec![(0, 50.0), (20, 300.0)],
                }],
            },
            controller: ControllerSpec::Topfull {
                rate_controller: "mimd".into(),
                clustering: true,
                hardened: false,
            },
            autoscaler: None,
            failures: vec![],
            faults: vec![],
            resilience: Some(ResilienceSpec {
                deadlines: Some(DeadlineSpecJson {
                    budget_ms: None,
                    cancel_doomed: true,
                }),
                retry_budget: None,
                breakers: Some(BreakerSpecJson {
                    failure_threshold: 0.5,
                    min_calls: 20,
                    open_for_ms: 2000,
                    half_open_probes: 5,
                }),
            }),
            live: None,
            sharding: None,
            admission: None,
            slo: None,
            report: ReportSpec {
                measure_from_secs: 60,
                timeline: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_round_trips_through_json() {
        let sc = Scenario::example();
        let json = serde_json::to_string_pretty(&sc).expect("serialize");
        let back: Scenario = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.name, "two-tier-overload");
        assert_eq!(back.duration_secs, 120);
        match back.app {
            AppSpec::Inline { services, apis } => {
                assert_eq!(services.len(), 2);
                assert_eq!(apis.len(), 1);
            }
            _ => panic!("example is inline"),
        }
    }

    #[test]
    fn minimal_scenario_uses_defaults() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": [
                {"api": "getproduct", "steps": [[0, 100.0]]}
            ]}
        }"#;
        let sc: Scenario = serde_json::from_str(json).expect("minimal parse");
        assert_eq!(sc.seed, 1);
        assert_eq!(sc.duration_secs, 120);
        assert!(matches!(sc.controller, ControllerSpec::None));
        assert!(sc.failures.is_empty());
    }

    #[test]
    fn controller_variants_parse() {
        let tf: ControllerSpec =
            serde_json::from_str(r#"{"type": "topfull", "rate_controller": "bw"}"#).unwrap();
        assert!(matches!(
            tf,
            ControllerSpec::Topfull {
                clustering: true,
                ..
            }
        ));
        let dg: ControllerSpec = serde_json::from_str(r#"{"type": "dagor"}"#).unwrap();
        match dg {
            ControllerSpec::Dagor { alpha } => assert_eq!(alpha, 0.05),
            _ => panic!("dagor"),
        }
    }

    #[test]
    fn admission_spec_parses_with_defaults() {
        let json = r#"{
            "coalesce": {"apis": ["get"]},
            "priority": {"alpha": 0.1}
        }"#;
        let spec: AdmissionSpec = serde_json::from_str(json).expect("admission parse");
        let co = spec.coalesce.expect("coalesce");
        assert_eq!(co.apis, vec!["get".to_string()]);
        assert_eq!(co.key_space, 64);
        assert_eq!(co.cache_capacity, 1024);
        assert_eq!(co.cache_ttl_ms, 500);
        let pr = spec.priority.expect("priority");
        assert_eq!(pr.alpha, 0.1);
        assert_eq!(pr.business_tiers, 8);
        assert_eq!(pr.user_levels, 128);
        assert_eq!(pr.queuing_delay_ms, 20);
    }

    #[test]
    fn slo_spec_parses_with_sre_defaults() {
        let spec: SloSpec = serde_json::from_str(r#"{"objective": 0.99}"#).expect("slo parse");
        assert_eq!(spec.objective, 0.99);
        assert_eq!(spec.fast_windows_secs, (5.0, 60.0));
        assert_eq!(spec.slow_windows_secs, (30.0, 360.0));
        assert_eq!(spec.page_burn, 14.4);
        assert_eq!(spec.ticket_burn, 6.0);
        let cfg = spec.to_config();
        assert_eq!(cfg.objective, 0.99);
        assert!((cfg.budget() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(crate::parse_scenario("{nope").is_err());
        assert!(
            crate::parse_scenario("{}").is_err(),
            "app+workload required"
        );
    }
}
