//! Unknown-key rejection with "did you mean" hints.
//!
//! The serde shim (like real serde without `deny_unknown_fields`)
//! silently ignores keys it doesn't recognize, which turns a typo like
//! `"striek_out"` into a scenario that runs with the default value —
//! the worst possible failure mode for a config file. Every document
//! the CLIs load (scenarios, workflow specs, matrix specs) walks its
//! raw JSON value through these checkers first, so typos fail loudly
//! with a suggestion, at any nesting depth.

use serde::Value;

/// Levenshtein edit distance, for the "did you mean" hint.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// ` — did you mean 'x'?` when some allowed key is within distance 3.
fn suggestion(key: &str, allowed: &[&str]) -> String {
    let Some(nearest) = allowed.iter().min_by_key(|k| edit_distance(key, k)) else {
        return String::new();
    };
    if edit_distance(key, nearest) <= 3 {
        format!(" — did you mean '{nearest}'?")
    } else {
        String::new()
    }
}

/// Reject keys of the object `value` that are not in `allowed`.
///
/// `doc` names the document kind ("scenario", "workflow", "matrix");
/// `block` is the path of the object inside it (`""` for the top
/// level, `"sharding"`, `"faults[2] (slow_pods)"`, ...). Non-object
/// values pass: shape errors are serde's job, this pass only exists to
/// catch keys serde would silently drop.
pub fn check_keys(doc: &str, block: &str, value: &Value, allowed: &[&str]) -> Result<(), String> {
    let Value::Object(fields) = value else {
        return Ok(());
    };
    for (key, _) in fields {
        if allowed.contains(&key.as_str()) {
            continue;
        }
        let hint = suggestion(key, allowed);
        return Err(if block.is_empty() {
            format!(
                "invalid {doc}: unknown top-level key '{key}'{hint}\n\
                 valid keys: {}",
                allowed.join(", ")
            )
        } else {
            format!(
                "invalid {doc}: unknown key '{key}' in '{block}'{hint}\n\
                 valid keys in '{block}': {}",
                allowed.join(", ")
            )
        });
    }
    Ok(())
}

/// Check every element of a `kind`-tagged array (`faults`,
/// `sharding.faults`) against the key set of its variant. Elements
/// whose tag is missing or unknown pass through — serde rejects those
/// with its own (clearer) variant error.
pub fn check_tagged_items(
    doc: &str,
    block: &str,
    value: &Value,
    tag: &str,
    variants: &[(&str, &[&str])],
) -> Result<(), String> {
    let Value::Array(items) = value else {
        return Ok(());
    };
    for (i, item) in items.iter().enumerate() {
        let Some(Value::Str(kind)) = item.get(tag) else {
            continue;
        };
        let Some((_, keys)) = variants.iter().find(|(k, _)| k == kind) else {
            continue;
        };
        let mut allowed: Vec<&str> = vec![tag];
        allowed.extend_from_slice(keys);
        check_keys(doc, &format!("{block}[{i}] ({kind})"), item, &allowed)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_equal() {
        assert_eq!(edit_distance("sharding", "sharding"), 0);
        assert_eq!(edit_distance("shardng", "sharding"), 1);
        assert_eq!(edit_distance("sharding", "shardng"), 1);
    }

    #[test]
    fn nested_block_errors_name_the_block() {
        let v = obj(&[("striek_out", Value::Int(3))]);
        let err = check_keys("scenario", "sharding", &v, &["shards", "strike_out"]).unwrap_err();
        assert!(
            err.contains("unknown key 'striek_out' in 'sharding'"),
            "{err}"
        );
        assert!(err.contains("did you mean 'strike_out'?"), "{err}");
        assert!(err.contains("valid keys in 'sharding':"), "{err}");
    }

    #[test]
    fn tagged_items_are_checked_per_variant() {
        let item = obj(&[
            ("kind", Value::Str("slow_pods".into())),
            ("factr", Value::Float(4.0)),
        ]);
        let arr = Value::Array(vec![item]);
        let err = check_tagged_items(
            "scenario",
            "faults",
            &arr,
            "kind",
            &[(
                "slow_pods",
                &["from_secs", "until_secs", "service", "factor"],
            )],
        )
        .unwrap_err();
        assert!(err.contains("'faults[0] (slow_pods)'"), "{err}");
        assert!(err.contains("did you mean 'factor'?"), "{err}");
    }

    #[test]
    fn unknown_variant_tags_fall_through_to_serde() {
        let item = obj(&[("kind", Value::Str("no_such_fault".into()))]);
        let arr = Value::Array(vec![item]);
        assert!(check_tagged_items("scenario", "faults", &arr, "kind", &[]).is_ok());
    }

    #[test]
    fn non_objects_pass() {
        assert!(check_keys("scenario", "live", &Value::Null, &["port"]).is_ok());
        assert!(check_keys("scenario", "live", &Value::Int(3), &["port"]).is_ok());
    }
}
