//! `topfull-sim` — run overload-control scenarios from JSON files.
//!
//! ```text
//! topfull-sim run scenario.json [--json]   # execute a scenario
//! topfull-sim run scenario.json --check    # validate only, don't run
//! topfull-sim compare scenario.json        # same scenario, every controller
//! topfull-sim example                      # print a documented example
//! topfull-sim check scenario.json          # validate without running
//! ```
//!
//! `check` (and `run --check`) performs the full scenario → engine
//! build plus the cross-spec composition rules (controller × sharding ×
//! hardened), so a scenario that checks clean cannot fail at startup.

use topfull_cli::{parse_scenario, render_report, run_scenario, validate_scenario, Scenario};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  topfull-sim run <scenario.json> [--json] [--check]");
    eprintln!("  topfull-sim compare <scenario.json>");
    eprintln!("  topfull-sim check <scenario.json>");
    eprintln!("  topfull-sim example");
    std::process::exit(2)
}

fn check(path: &str, sc: &Scenario) -> ! {
    match validate_scenario(sc) {
        Ok(sum) => {
            println!(
                "ok: {} ({path}) — {} services, {} APIs, {}s",
                sc.name, sum.services, sum.apis, sc.duration_secs
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("invalid: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn load(path: &str) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_scenario(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => {
            let sc = Scenario::example();
            println!(
                "{}",
                serde_json::to_string_pretty(&sc).expect("serializable")
            );
        }
        Some("check") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let sc = load(path);
            check(path, &sc);
        }
        Some("compare") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let sc = load(path);
            match topfull_cli::report::compare(&sc) {
                Ok(table) => print!("{table}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("run") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let as_json = args.iter().any(|a| a == "--json");
            let sc = load(path);
            if args.iter().any(|a| a == "--check") {
                check(path, &sc);
            }
            match run_scenario(&sc) {
                Ok(out) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&out).expect("serializable")
                        );
                    } else {
                        print!("{}", render_report(&sc, &out));
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
