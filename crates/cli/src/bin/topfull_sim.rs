//! `topfull-sim` — run overload-control scenarios from JSON files.
//!
//! ```text
//! topfull-sim run scenario.json [--json]   # execute a scenario
//! topfull-sim compare scenario.json        # same scenario, every controller
//! topfull-sim example                      # print a documented example
//! topfull-sim check scenario.json          # validate without running
//! ```

use topfull_cli::{build_scenario, parse_scenario, render_report, run_scenario, Scenario};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  topfull-sim run <scenario.json> [--json]");
    eprintln!("  topfull-sim compare <scenario.json>");
    eprintln!("  topfull-sim check <scenario.json>");
    eprintln!("  topfull-sim example");
    std::process::exit(2)
}

fn load(path: &str) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_scenario(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => {
            let sc = Scenario::example();
            println!(
                "{}",
                serde_json::to_string_pretty(&sc).expect("serializable")
            );
        }
        Some("check") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let sc = load(path);
            match build_scenario(&sc) {
                Ok(built) => {
                    println!(
                        "ok: {} — {} services, {} APIs, {}s",
                        sc.name,
                        built.engine.topology().num_services(),
                        built.engine.topology().num_apis(),
                        sc.duration_secs
                    );
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("compare") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let sc = load(path);
            match topfull_cli::report::compare(&sc) {
                Ok(table) => print!("{table}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("run") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let as_json = args.iter().any(|a| a == "--json");
            let sc = load(path);
            match run_scenario(&sc) {
                Ok(out) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&out).expect("serializable")
                        );
                    } else {
                        print!("{}", render_report(&sc, &out));
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
