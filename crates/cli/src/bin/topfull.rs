//! `topfull` — run scenarios against the live serving plane (Sim2Real).
//!
//! ```text
//! topfull live <scenario.json> --duration <secs> [--json]
//! topfull explain <run.json|journal.jsonl>
//! ```
//!
//! Serves the scenario's topology as a real multi-threaded TCP gateway
//! plus CPU-burning worker pool on 127.0.0.1, replays its workload as
//! socket clients (step schedules compressed to the requested wall-clock
//! duration), and drives the same TopFull controller the simulator uses
//! on a real timer tick. Output is the simulator's report schema, so
//! live and simulated runs diff directly.

use topfull_cli::schema::{ShardFaultJson, ShardingSpec};
use topfull_cli::{explain_file, parse_scenario, render_report, run_live, Scenario};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  topfull live <scenario.json> --duration <secs> [--json] \
         [--shards <n>] [--kill-shard <i>@<secs>]"
    );
    eprintln!("  topfull explain <run.json|journal.jsonl> [--fingerprint]");
    eprintln!();
    eprintln!("  --shards n          run n gateway shards under one logical controller");
    eprintln!("                      (overrides the scenario's sharding.shards)");
    eprintln!("  --kill-shard i@secs SIGKILL-style shard death at scenario-time secs");
    eprintln!("  --fingerprint       print the journal's order-sensitive fingerprint");
    std::process::exit(2)
}

/// Parse `i@secs` for `--kill-shard`.
fn parse_kill(arg: &str) -> Option<(usize, u64)> {
    let (shard, at) = arg.split_once('@')?;
    Some((shard.parse().ok()?, at.parse().ok()?))
}

/// Fold `--shards` / `--kill-shard` into the scenario's sharding spec,
/// creating one (with defaults) if the file had none.
fn apply_shard_flags(sc: &mut Scenario, shards: Option<usize>, kill: Option<(usize, u64)>) {
    if shards.is_none() && kill.is_none() {
        return;
    }
    let spec = sc.sharding.get_or_insert_with(|| ShardingSpec {
        shards: shards.unwrap_or(1),
        ..ShardingSpec::default()
    });
    if let Some(n) = shards {
        spec.shards = n;
    }
    if let Some((shard, at_secs)) = kill {
        spec.faults.push(ShardFaultJson::Kill { shard, at_secs });
    }
}

fn load(path: &str) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_scenario(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("live") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let duration = args
                .iter()
                .position(|a| a == "--duration")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            let as_json = args.iter().any(|a| a == "--json");
            let shards = args.iter().position(|a| a == "--shards").map(|i| {
                match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => usage(),
                }
            });
            let kill = args.iter().position(|a| a == "--kill-shard").map(|i| {
                match args.get(i + 1).map(String::as_str).map(parse_kill) {
                    Some(Some(k)) => k,
                    _ => usage(),
                }
            });
            let mut sc = load(path);
            apply_shard_flags(&mut sc, shards, kill);
            match run_live(&sc, duration) {
                Ok(out) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&out).expect("serializable outcome")
                        );
                    } else {
                        print!("{}", render_report(&sc, &out));
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("explain") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let run = if args.iter().any(|a| a == "--fingerprint") {
                topfull_cli::explain::fingerprint_file(path).map(|fp| format!("{fp}\n"))
            } else {
                explain_file(path)
            };
            match run {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
