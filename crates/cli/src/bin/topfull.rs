//! `topfull` — run scenarios against the live serving plane (Sim2Real).
//!
//! ```text
//! topfull live <scenario.json> --duration <secs> [--json]
//! topfull explain <run.json|journal.jsonl>
//! ```
//!
//! Serves the scenario's topology as a real multi-threaded TCP gateway
//! plus CPU-burning worker pool on 127.0.0.1, replays its workload as
//! socket clients (step schedules compressed to the requested wall-clock
//! duration), and drives the same TopFull controller the simulator uses
//! on a real timer tick. Output is the simulator's report schema, so
//! live and simulated runs diff directly.

use topfull_cli::{explain_file, parse_scenario, render_report, run_live, Scenario};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  topfull live <scenario.json> --duration <secs> [--json]");
    eprintln!("  topfull explain <run.json|journal.jsonl>");
    std::process::exit(2)
}

fn load(path: &str) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_scenario(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("live") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let duration = args
                .iter()
                .position(|a| a == "--duration")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            let as_json = args.iter().any(|a| a == "--json");
            let sc = load(path);
            match run_live(&sc, duration) {
                Ok(out) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&out).expect("serializable outcome")
                        );
                    } else {
                        print!("{}", render_report(&sc, &out));
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("explain") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            match explain_file(path) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
