//! `topfull explain` — render a controller decision journal as a
//! human-readable timeline.
//!
//! Accepts either a run artifact (`topfull-sim run -o run.json`, a
//! `topfull live` outcome, or a bench report) — any JSON object with a
//! top-level `"journal"` array — or a raw JSONL journal as written by
//! [`obs::Journal::to_jsonl`]. The timeline names every overload
//! detection instant, re-clustering, per-API rate action (with the
//! state inputs that drove it), §4.1 increase block, headroom release,
//! and MIMD-fallback strike, followed by a run summary.

use obs::JournalEntry;
use serde::Deserialize;
use std::fmt::Write;

/// Read `path` and render its journal. The file may be a JSON object
/// embedding a `"journal"` array or a JSONL stream of entries.
pub fn explain_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let entries = parse_journal(&text)?;
    Ok(render_timeline(&entries))
}

/// Parse journal entries out of either supported input shape.
pub fn parse_journal(text: &str) -> Result<Vec<JournalEntry>, String> {
    if text.trim().is_empty() {
        return Err(
            "empty journal: the input has no content — expected a run artifact \
             with a \"journal\" array, or JSONL of journal entries (was the file \
             truncated before anything was written?)"
                .into(),
        );
    }
    // A run artifact is one JSON document; try that reading first.
    match serde_json::from_str::<serde_json::JsonValue>(text) {
        Ok(doc) => {
            if let Some(journal) = doc.get("journal") {
                return match journal {
                    serde::Value::Array(items) => items
                        .iter()
                        .enumerate()
                        .map(|(i, v)| {
                            JournalEntry::from_value(v).map_err(|e| format!("journal[{i}]: {e}"))
                        })
                        .collect(),
                    _ => Err("\"journal\" field is not an array".into()),
                };
            }
            // A single journal entry on its own is a one-line JSONL file;
            // fall through to line-by-line parsing below.
        }
        Err(e) => {
            // A document that opens like a run artifact but doesn't
            // parse was almost certainly cut off mid-write. Say so,
            // with where the text ends, instead of limping into the
            // JSONL path and blaming "line 1".
            let trimmed = text.trim_start();
            if trimmed.starts_with('{') && text.contains("\"journal\"") {
                let last = text.lines().count().max(1);
                return Err(format!(
                    "run artifact is not valid JSON (parse fails near line {last}): {e}\n\
                     the file looks truncated mid-write — regenerate it, or pass the \
                     journal JSONL directly"
                ));
            }
        }
    }
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let entry = serde_json::from_str::<JournalEntry>(line).map_err(|e| {
            if line.starts_with('{') && !line.ends_with('}') {
                format!(
                    "line {}: journal entry is truncated (no closing '}}') — the \
                     file was likely cut off mid-write",
                    lineno + 1
                )
            } else {
                format!("line {}: not a journal entry: {e}", lineno + 1)
            }
        })?;
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err(
            "no journal entries found (expected a JSON object with a \"journal\" \
             array, or JSONL of journal entries)"
                .into(),
        );
    }
    Ok(entries)
}

/// Render the decision timeline plus a summary. Pure function of the
/// entries, so the output is as deterministic as the journal itself.
pub fn render_timeline(entries: &[JournalEntry]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "controller decision journal — {} entries", entries.len());
    if entries.is_empty() {
        let _ = writeln!(
            s,
            "(no decisions recorded: the run never left nominal state)"
        );
        return s;
    }
    for e in entries {
        let _ = writeln!(s, "{}", render_entry(e));
    }
    s.push('\n');
    s.push_str(&render_summary(entries));
    s
}

fn render_entry(e: &JournalEntry) -> String {
    let t = e.at();
    match e {
        JournalEntry::Overload {
            name,
            service,
            utilization,
            entered,
            ..
        } => {
            let verb = if *entered { "OVERLOAD" } else { "recovered" };
            format!("t={t:>8.2}s  {verb:<9} {name} (svc {service}) util={utilization:.3}")
        }
        JournalEntry::Recluster {
            clusters,
            assignment,
            ..
        } => {
            if *clusters == 0 {
                format!("t={t:>8.2}s  recluster  no overloaded targets; clusters dissolved")
            } else {
                format!("t={t:>8.2}s  recluster  {clusters} cluster(s): apis [{assignment}]")
            }
        }
        JournalEntry::RateAction {
            target_name,
            apis,
            action,
            goodput_ratio,
            latency_ratio,
            total_limit,
            reason,
            ..
        } => format!(
            "t={t:>8.2}s  rate       {target_name}: step {action:+.3} on apis [{apis}] \
             (goodput {goodput_ratio:.2}, latency {latency_ratio:.2}x SLO, \
             limit {total_limit:.1} rps) — {reason}"
        ),
        JournalEntry::RateBlocked { api, reason, .. } => {
            format!("t={t:>8.2}s  blocked    api {api}: {reason}")
        }
        JournalEntry::Release { api, reason, .. } => {
            format!("t={t:>8.2}s  release    api {api}: {reason}")
        }
        JournalEntry::FallbackStrike {
            strikes,
            max_strikes,
            tripped,
            ..
        } => {
            let tail = if *tripped {
                " — primary tripped, MIMD fallback engaged"
            } else {
                ""
            };
            format!("t={t:>8.2}s  strike     fallback strike {strikes}/{max_strikes}{tail}")
        }
        JournalEntry::Watchdog { event, .. } => {
            format!("t={t:>8.2}s  watchdog   {event}")
        }
        JournalEntry::PlaneVetoes {
            resilience,
            admission,
            faults,
            ..
        } => format!(
            "t={t:>8.2}s  vetoes     resilience={resilience} admission={admission} \
             faults={faults} (window)"
        ),
        JournalEntry::FaultTelemetry {
            dropouts,
            noisy,
            stale,
            ..
        } => format!(
            "t={t:>8.2}s  telemetry  degraded signals: dropouts={dropouts} \
             noisy={noisy} stale={stale} (window)"
        ),
        JournalEntry::ShardMembership {
            shard,
            event,
            live,
            total,
            ..
        } => format!("t={t:>8.2}s  shard      shard {shard}: {event} ({live}/{total} live)"),
        JournalEntry::ShardAggregate {
            reporting,
            total,
            goodput,
            ..
        } => format!(
            "t={t:>8.2}s  aggregate  merged {reporting}/{total} shard reports \
             (goodput {goodput:.1} rps)"
        ),
        JournalEntry::ShardSplit {
            api,
            global,
            quotas,
            reason,
            ..
        } => {
            let g = if *global < 0.0 {
                "unlimited".to_string()
            } else {
                format!("{global:.1} rps")
            };
            format!("t={t:>8.2}s  split      api {api}: {g} -> [{quotas}] — {reason}")
        }
        JournalEntry::ShardFallback {
            shard,
            phase,
            detail,
            ..
        } => format!("t={t:>8.2}s  degrade    shard {shard} [{phase}]: {detail}"),
        JournalEntry::AdmissionWindow {
            cache_hits,
            follower_hits,
            misses,
            shed,
            rate_limited,
            ..
        } => format!(
            "t={t:>8.2}s  frontdoor  cache={cache_hits} inflight={follower_hits} \
             miss={misses} shed={shed} rate-limited={rate_limited} (window)"
        ),
        JournalEntry::PriorityThreshold {
            from,
            to,
            admitted,
            shed,
            reason,
            ..
        } => format!(
            "t={t:>8.2}s  priority   threshold {from} -> {to} \
             (window: admitted={admitted} shed={shed}) — {reason}"
        ),
        JournalEntry::SloBurn {
            api_name,
            from,
            to,
            fast_burn,
            slow_burn,
            budget_remaining,
            ..
        } => format!(
            "t={t:>8.2}s  slo-burn   {api_name}: {from} -> {to} \
             (fast {fast_burn:.1}x, slow {slow_burn:.1}x, \
             budget {:.0}% left)",
            budget_remaining * 100.0
        ),
    }
}

fn render_summary(entries: &[JournalEntry]) -> String {
    let mut enters = 0u64;
    let mut clears = 0u64;
    let mut first_enter: Option<(f64, String)> = None;
    let mut reclusters = 0u64;
    let mut cuts = 0u64;
    let mut raises = 0u64;
    let mut blocks = 0u64;
    let mut releases = 0u64;
    let mut strikes = 0u64;
    let mut tripped = false;
    let mut watchdog = 0u64;
    let mut shard_events = 0u64;
    let mut splits = 0u64;
    let mut degradations = 0u64;
    let mut front_windows = 0u64;
    let mut front_hits = 0u64;
    let mut front_shed = 0u64;
    let mut threshold_moves = 0u64;
    let mut slo_pages = 0u64;
    let mut slo_tickets = 0u64;
    let mut first_page: Option<(f64, String)> = None;
    for e in entries {
        match e {
            JournalEntry::Overload {
                t, name, entered, ..
            } => {
                if *entered {
                    enters += 1;
                    if first_enter.is_none() {
                        first_enter = Some((*t, name.clone()));
                    }
                } else {
                    clears += 1;
                }
            }
            JournalEntry::Recluster { .. } => reclusters += 1,
            JournalEntry::RateAction { action, .. } => {
                if *action < 0.0 {
                    cuts += 1;
                } else {
                    raises += 1;
                }
            }
            JournalEntry::RateBlocked { .. } => blocks += 1,
            JournalEntry::Release { .. } => releases += 1,
            JournalEntry::FallbackStrike { tripped: trip, .. } => {
                strikes += 1;
                tripped |= *trip;
            }
            JournalEntry::Watchdog { .. } => watchdog += 1,
            JournalEntry::PlaneVetoes { .. } | JournalEntry::FaultTelemetry { .. } => {}
            JournalEntry::ShardMembership { .. } | JournalEntry::ShardAggregate { .. } => {
                shard_events += 1
            }
            JournalEntry::ShardSplit { .. } => splits += 1,
            JournalEntry::ShardFallback { .. } => degradations += 1,
            JournalEntry::AdmissionWindow {
                cache_hits,
                follower_hits,
                shed,
                ..
            } => {
                front_windows += 1;
                front_hits += cache_hits + follower_hits;
                front_shed += shed;
            }
            JournalEntry::PriorityThreshold { .. } => threshold_moves += 1,
            JournalEntry::SloBurn {
                t, api_name, to, ..
            } => match to.as_str() {
                "page" => {
                    slo_pages += 1;
                    if first_page.is_none() {
                        first_page = Some((*t, api_name.clone()));
                    }
                }
                "ticket" => slo_tickets += 1,
                _ => {}
            },
        }
    }
    let mut s = String::from("summary:\n");
    match &first_enter {
        Some((t, name)) => {
            let _ = writeln!(
                s,
                "  overload detections: {enters} (first: {name} at t={t:.2}s), recoveries: {clears}"
            );
        }
        None => {
            let _ = writeln!(s, "  overload detections: 0");
        }
    }
    let _ = writeln!(s, "  re-clusterings: {reclusters}");
    let _ = writeln!(
        s,
        "  rate actions: {} ({cuts} cuts, {raises} raises)",
        cuts + raises
    );
    let _ = writeln!(s, "  increases blocked by the path rule: {blocks}");
    let _ = writeln!(s, "  headroom releases: {releases}");
    let fb = if strikes > 0 {
        format!(
            "  fallback strikes: {strikes}{}",
            if tripped { " (primary tripped)" } else { "" }
        )
    } else {
        "  fallback strikes: 0".into()
    };
    let _ = writeln!(s, "{fb}");
    if watchdog > 0 {
        let _ = writeln!(s, "  watchdog events: {watchdog}");
    }
    if shard_events + splits + degradations > 0 {
        let _ = writeln!(
            s,
            "  shard plane: {shard_events} membership/aggregate events, \
             {splits} quota splits, {degradations} local degradations"
        );
    }
    if front_windows + threshold_moves > 0 {
        let _ = writeln!(
            s,
            "  front door: {front_windows} active windows, {front_hits} coalesced \
             responses, {front_shed} priority sheds, {threshold_moves} threshold moves"
        );
    }
    if slo_pages + slo_tickets > 0 {
        let first = match &first_page {
            Some((t, name)) => format!(" (first page: {name} at t={t:.2}s)"),
            None => String::new(),
        };
        let _ = writeln!(
            s,
            "  slo burn alerts: {slo_pages} page escalations, {slo_tickets} \
             ticket escalations{first}"
        );
    }
    s
}

/// Fingerprint a journal file: parse entries from either supported
/// shape, re-render as canonical JSONL, and hash. Two runs of the same
/// plan must print the same value (`scripts/verify.sh` pins this for
/// the sharded sim at 1 vs 4 workers).
pub fn fingerprint_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let entries = parse_journal(&text)?;
    let jsonl = obs::to_jsonl(&entries);
    Ok(format!(
        "{:#018x} ({} entries)",
        obs::journal_fingerprint(&jsonl),
        entries.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Overload {
                t: 10.0,
                service: 4,
                name: "backend".into(),
                utilization: 0.97,
                entered: true,
            },
            JournalEntry::Recluster {
                t: 10.0,
                clusters: 1,
                assignment: "0,2".into(),
            },
            JournalEntry::RateAction {
                t: 10.0,
                target: 4,
                target_name: "backend".into(),
                apis: "0,2".into(),
                action: -0.25,
                goodput_ratio: 0.4,
                latency_ratio: 2.5,
                total_limit: 120.0,
                reason: "mimd action -0.250".into(),
            },
            JournalEntry::RateBlocked {
                t: 11.0,
                api: 1,
                reason: "rate-increase blocked: path contains overloaded backend".into(),
            },
            JournalEntry::FallbackStrike {
                t: 12.0,
                strikes: 3,
                max_strikes: 3,
                tripped: true,
            },
            JournalEntry::Release {
                t: 30.0,
                api: 0,
                reason: "limit held 2.0x above offered for 5 intervals".into(),
            },
            JournalEntry::Overload {
                t: 31.0,
                service: 4,
                name: "backend".into(),
                utilization: 0.50,
                entered: false,
            },
        ]
    }

    #[test]
    fn timeline_names_detections_strikes_and_releases() {
        let text = render_timeline(&sample_entries());
        assert!(
            text.contains("OVERLOAD  backend (svc 4) util=0.970"),
            "{text}"
        );
        assert!(text.contains("1 cluster(s): apis [0,2]"), "{text}");
        assert!(text.contains("step -0.250"), "{text}");
        assert!(text.contains("path contains overloaded backend"), "{text}");
        assert!(
            text.contains("fallback strike 3/3 — primary tripped"),
            "{text}"
        );
        assert!(text.contains("release    api 0"), "{text}");
        assert!(text.contains("recovered backend"), "{text}");
        assert!(text.contains("overload detections: 1 (first: backend at t=10.00s)"));
        assert!(text.contains("fallback strikes: 1 (primary tripped)"));
    }

    #[test]
    fn parses_jsonl_journals() {
        let jsonl = obs::to_jsonl(&sample_entries());
        let back = parse_journal(&jsonl).expect("jsonl parses");
        assert_eq!(back, sample_entries());
    }

    #[test]
    fn parses_run_artifacts_with_embedded_journals() {
        let jsonl = obs::to_jsonl(&sample_entries());
        let inner: Vec<String> = jsonl.lines().map(String::from).collect();
        let doc = format!(
            r#"{{"name":"run","total_goodput":120.5,"journal":[{}]}}"#,
            inner.join(",")
        );
        let back = parse_journal(&doc).expect("artifact parses");
        assert_eq!(back, sample_entries());
    }

    #[test]
    fn rejects_non_journal_input() {
        assert!(parse_journal("").is_err());
        assert!(parse_journal("{\"name\":\"run\"}").is_err());
        assert!(parse_journal("not json at all").is_err());
        let err = parse_journal("{\"journal\": 3}").unwrap_err();
        assert!(err.contains("not an array"), "{err}");
    }

    #[test]
    fn empty_input_gets_a_friendly_message() {
        for text in ["", "   \n\n  "] {
            let err = parse_journal(text).unwrap_err();
            assert!(err.contains("empty journal"), "{err}");
            assert!(err.contains("truncated"), "{err}");
        }
    }

    #[test]
    fn truncated_run_artifact_names_the_failing_line() {
        // A real artifact cut off mid-write: valid prefix, no closing
        // braces.
        let full = format!(
            "{{\n  \"name\": \"run\",\n  \"journal\": [\n    {}\n",
            obs::to_jsonl(&sample_entries()).lines().next().unwrap()
        );
        let err = parse_journal(&full).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("near line"), "{err}");
        assert!(!err.contains("line 1: not a journal entry"), "{err}");
    }

    #[test]
    fn truncated_jsonl_line_reports_its_line_number() {
        let jsonl = obs::to_jsonl(&sample_entries());
        let mut lines: Vec<&str> = jsonl.lines().collect();
        let cut = &lines[1][..lines[1].len() / 2];
        lines[1] = cut;
        let err = parse_journal(&lines.join("\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn timeline_renders_shard_plane_entries() {
        let entries = vec![
            JournalEntry::ShardMembership {
                t: 60.0,
                shard: 1,
                event: "struck out after 3 missed reports; quota redistributed".into(),
                live: 2,
                total: 3,
            },
            JournalEntry::ShardAggregate {
                t: 60.0,
                reporting: 2,
                total: 3,
                goodput: 812.5,
            },
            JournalEntry::ShardSplit {
                t: 60.0,
                api: 0,
                global: 120.0,
                quotas: "60.0|-|60.0".into(),
                reason: "redistribution: live set changed".into(),
            },
            JournalEntry::ShardFallback {
                t: 72.0,
                shard: 2,
                phase: "fallback".into(),
                detail: "ttl expired; local mimd engaged".into(),
            },
        ];
        let text = render_timeline(&entries);
        assert!(text.contains("shard 1: struck out"), "{text}");
        assert!(text.contains("merged 2/3 shard reports"), "{text}");
        assert!(text.contains("120.0 rps -> [60.0|-|60.0]"), "{text}");
        assert!(text.contains("shard 2 [fallback]"), "{text}");
        assert!(
            text.contains("shard plane: 2 membership/aggregate events, 1 quota splits"),
            "{text}"
        );
    }

    #[test]
    fn timeline_renders_front_door_entries() {
        let entries = vec![
            JournalEntry::AdmissionWindow {
                t: 15.0,
                cache_hits: 42,
                follower_hits: 9,
                misses: 12,
                shed: 3,
                rate_limited: 7,
            },
            JournalEntry::PriorityThreshold {
                t: 15.0,
                from: 1024,
                to: 960,
                admitted: 310,
                shed: 3,
                reason: "overload".into(),
            },
        ];
        let text = render_timeline(&entries);
        assert!(
            text.contains("frontdoor  cache=42 inflight=9 miss=12 shed=3 rate-limited=7"),
            "{text}"
        );
        assert!(text.contains("threshold 1024 -> 960"), "{text}");
        assert!(
            text.contains(
                "front door: 1 active windows, 51 coalesced responses, \
             3 priority sheds, 1 threshold moves"
            ),
            "{text}"
        );
    }

    #[test]
    fn timeline_renders_slo_burn_entries() {
        let entries = vec![
            JournalEntry::SloBurn {
                t: 20.0,
                api: 1,
                api_name: "checkout".into(),
                from: "ok".into(),
                to: "page".into(),
                fast_burn: 22.1,
                slow_burn: 3.4,
                budget_remaining: 0.74,
            },
            JournalEntry::SloBurn {
                t: 44.0,
                api: 1,
                api_name: "checkout".into(),
                from: "page".into(),
                to: "ticket".into(),
                fast_burn: 4.0,
                slow_burn: 7.2,
                budget_remaining: 0.41,
            },
        ];
        let text = render_timeline(&entries);
        assert!(
            text.contains("slo-burn   checkout: ok -> page (fast 22.1x, slow 3.4x"),
            "{text}"
        );
        assert!(text.contains("budget 74% left"), "{text}");
        assert!(
            text.contains(
                "slo burn alerts: 1 page escalations, 1 ticket escalations \
             (first page: checkout at t=20.00s)"
            ),
            "{text}"
        );
    }

    #[test]
    fn fingerprint_is_deterministic_for_same_journal() {
        let jsonl = obs::to_jsonl(&sample_entries());
        let dir = std::env::temp_dir();
        let p1 = dir.join("topfull_fp_a.jsonl");
        let p2 = dir.join("topfull_fp_b.jsonl");
        std::fs::write(&p1, &jsonl).unwrap();
        std::fs::write(&p2, &jsonl).unwrap();
        let f1 = fingerprint_file(p1.to_str().unwrap()).expect("fingerprints");
        let f2 = fingerprint_file(p2.to_str().unwrap()).expect("fingerprints");
        assert_eq!(f1, f2);
        assert!(f1.starts_with("0x"), "{f1}");
        let _ = std::fs::remove_file(p1);
        let _ = std::fs::remove_file(p2);
    }

    #[test]
    fn empty_journal_renders_nominal_note() {
        let text = render_timeline(&[]);
        assert!(text.contains("never left nominal state"), "{text}");
    }
}
