//! Scenario → engine/controller translation.

use crate::schema::{
    AdmissionSpec, AppSpec, AutoscalerSpec, CallSpec, ControllerSpec, FaultSpecJson,
    ResilienceSpec, Scenario, ShardFaultJson, ShardingSpec, WorkloadSpec,
};
use apps::{AlibabaDemo, OnlineBoutique, TrainTicket};
use baselines::{Breakwater, BreakwaterConfig, Dagor, DagorConfig, Wisp, WispConfig};
use cluster::autoscaler::{HpaConfig, VmPoolConfig};
use cluster::types::BusinessPriority;
use cluster::{
    ApiId, BreakerConfig, CallNode, ClosedLoopWorkload, Controller, DeadlineConfig, Engine,
    EngineConfig, NoControl, OpenLoopWorkload, RateSchedule, ResilienceConfig, RetryBudgetConfig,
    RetryStormWorkload, ServiceId, Topology, Workload,
};
use rl::policy::PolicyValue;
use simnet::{SimDuration, SimTime};
use topfull::{TopFull, TopFullConfig};

/// A scenario compiled into runnable parts.
pub struct BuiltScenario {
    pub engine: Engine,
    pub controller: Box<dyn Controller>,
    /// API names in id order, for reporting.
    pub api_names: Vec<String>,
    /// Run under the harness watchdog (hardened TopFull).
    pub hardened: bool,
}

/// Resolve an API name to its id.
fn api_id(topo: &Topology, name: &str) -> Result<ApiId, String> {
    topo.api_by_name(name)
        .ok_or_else(|| format!("unknown API '{name}'"))
}

/// Resolve a service name to its id.
fn service_id(topo: &Topology, name: &str) -> Result<ServiceId, String> {
    topo.service_by_name(name)
        .ok_or_else(|| format!("unknown service '{name}'"))
}

fn build_call(topo: &Topology, spec: &CallSpec) -> Result<CallNode, String> {
    let svc = service_id(topo, &spec.service)?;
    let mut children = Vec::with_capacity(spec.children.len());
    for c in &spec.children {
        children.push(build_call(topo, c)?);
    }
    Ok(CallNode::with_children(
        svc,
        SimDuration::from_secs_f64(spec.cost_ms / 1e3),
        children,
    ))
}

/// Build the topology for an app spec. Shared by the simulator path and
/// the live plane (`crate::live`), which serves the identical topology
/// over TCP.
pub fn build_topology(app: &AppSpec) -> Result<Topology, String> {
    match app {
        AppSpec::Builtin {
            name,
            topology_seed,
        } => match name.as_str() {
            "online-boutique" => Ok(OnlineBoutique::build().topology),
            "train-ticket" => Ok(TrainTicket::build().topology),
            "alibaba-demo" => Ok(AlibabaDemo::build(*topology_seed).topology),
            other => Err(format!(
                "unknown builtin app '{other}' (try online-boutique, train-ticket, alibaba-demo)"
            )),
        },
        AppSpec::Inline { services, apis } => {
            if services.is_empty() {
                return Err("inline app needs at least one service".into());
            }
            if apis.is_empty() {
                return Err("inline app needs at least one API".into());
            }
            let mut topo = Topology::new("inline");
            for s in services {
                let mut spec = cluster::ServiceSpec::new(&s.name, s.replicas);
                if let Some(q) = s.queue_capacity {
                    spec = spec.queue_capacity(q);
                }
                if let Some(p) = s.pod_speed {
                    spec = spec.pod_speed(p);
                }
                if s.crash_on_overload {
                    spec = spec.crash_on_overload();
                }
                topo.add_service(spec);
            }
            for a in apis {
                if a.paths.is_empty() {
                    return Err(format!("API '{}' has no paths", a.name));
                }
                let mut paths = Vec::with_capacity(a.paths.len());
                for p in &a.paths {
                    paths.push((p.weight, build_call(&topo, &p.root)?));
                }
                topo.add_api(
                    cluster::ApiSpec::branching(&a.name, paths)
                        .business(BusinessPriority(a.business_priority)),
                );
            }
            Ok(topo)
        }
    }
}

fn build_workload(
    topo: &Topology,
    spec: &WorkloadSpec,
    resilience: Option<&ResilienceSpec>,
) -> Result<Box<dyn Workload>, String> {
    let retry_budget = resilience.and_then(|r| r.retry_budget.as_ref());
    if retry_budget.is_some() && !matches!(spec, WorkloadSpec::RetryStorm { .. }) {
        return Err(
            "resilience.retry_budget requires the retry_storm workload (it bounds the \
             retrying client population)"
                .into(),
        );
    }
    match spec {
        WorkloadSpec::OpenLoop { rates } => {
            let mut schedules = Vec::with_capacity(rates.len());
            for r in rates {
                let api = api_id(topo, &r.api)?;
                let steps = r
                    .steps
                    .iter()
                    .map(|(s, v)| (SimTime::from_secs(*s), *v))
                    .collect();
                schedules.push((api, RateSchedule::steps(steps)));
            }
            Ok(Box::new(OpenLoopWorkload::new(schedules)))
        }
        WorkloadSpec::ClosedLoop {
            users_steps,
            think_ms,
            api_weights,
        } => {
            let weights = resolve_weights(topo, api_weights)?;
            let sched = RateSchedule::steps(
                users_steps
                    .iter()
                    .map(|(s, u)| (SimTime::from_secs(*s), *u))
                    .collect(),
            );
            Ok(Box::new(ClosedLoopWorkload::new(
                weights,
                sched,
                SimDuration::from_millis(*think_ms),
            )))
        }
        WorkloadSpec::RetryStorm {
            users,
            think_ms,
            api_weights,
            max_retries,
            retry_backoff_ms,
        } => {
            let weights = resolve_weights(topo, api_weights)?;
            let mut w = RetryStormWorkload::new(
                weights,
                *users,
                SimDuration::from_millis(*think_ms),
                *max_retries,
                SimDuration::from_millis(*retry_backoff_ms),
            );
            if let Some(b) = retry_budget {
                w = w.with_retry_budget(RetryBudgetConfig {
                    max_tokens: b.max_tokens,
                    token_ratio: b.token_ratio,
                    retry_cost: b.retry_cost,
                });
            }
            Ok(Box::new(w))
        }
    }
}

fn resolve_weights(
    topo: &Topology,
    weights: &[(String, f64)],
) -> Result<Vec<(ApiId, f64)>, String> {
    if weights.is_empty() {
        return Err("api_weights must not be empty".into());
    }
    weights
        .iter()
        .map(|(name, w)| api_id(topo, name).map(|id| (id, *w)))
        .collect()
}

fn build_controller(
    spec: &ControllerSpec,
    engine: &mut Engine,
) -> Result<Box<dyn Controller>, String> {
    let n = engine.topology().num_services();
    Ok(match spec {
        ControllerSpec::None => Box::new(NoControl),
        ControllerSpec::Dagor { alpha } => {
            engine.set_admission(Box::new(Dagor::new(
                n,
                DagorConfig {
                    alpha: *alpha,
                    ..DagorConfig::default()
                },
            )));
            Box::new(NoControl)
        }
        ControllerSpec::Breakwater => {
            engine.set_admission(Box::new(Breakwater::new(n, BreakwaterConfig::default())));
            Box::new(NoControl)
        }
        ControllerSpec::Wisp => {
            let wisp = Wisp::new(engine.topology(), WispConfig::default());
            engine.set_admission(Box::new(wisp));
            Box::new(NoControl)
        }
        ControllerSpec::Topfull {
            rate_controller,
            clustering,
            hardened,
        } => Box::new(TopFull::new(topfull_config(
            rate_controller,
            *clustering,
            *hardened,
        )?)),
    })
}

/// TopFull configuration from scenario knobs. Shared by the simulator
/// path and the live plane — identical config, virtual or wall clock.
pub fn topfull_config(
    rate_controller: &str,
    clustering: bool,
    hardened: bool,
) -> Result<TopFullConfig, String> {
    let mut cfg = TopFullConfig::default();
    if !clustering {
        cfg = cfg.without_clustering();
    }
    cfg = match rate_controller {
        "mimd" => cfg.with_mimd(),
        "bw" => cfg.with_bw(),
        rl if rl.starts_with("rl:") => {
            let path = &rl[3..];
            let policy = PolicyValue::load(std::path::Path::new(path))
                .map_err(|e| format!("cannot load RL policy '{path}': {e}"))?;
            cfg.with_rl(policy)
        }
        other => {
            return Err(format!(
                "unknown rate_controller '{other}' (mimd | bw | rl:<path>)"
            ))
        }
    };
    if hardened {
        cfg = cfg.hardened();
    }
    Ok(cfg)
}

/// Compile a scenario into an engine + controller ready to run.
pub fn build_scenario(sc: &Scenario) -> Result<BuiltScenario, String> {
    let topo = build_topology(&sc.app)?;
    let api_names: Vec<String> = topo.apis().map(|(_, a)| a.name.clone()).collect();
    let workload = build_workload(&topo, &sc.workload, sc.resilience.as_ref())?;
    let mut cfg = EngineConfig {
        seed: sc.seed,
        slo: SimDuration::from_millis(sc.slo_ms),
        ..EngineConfig::default()
    };
    if let Some(AutoscalerSpec {
        pod_startup_secs: Some(p),
        ..
    }) = &sc.autoscaler
    {
        cfg.pod_startup = SimDuration::from_secs(*p);
    }
    let mut engine = Engine::new(topo, cfg, workload);
    if let Some(res) = &sc.resilience {
        if res.deadlines.is_some() || res.breakers.is_some() {
            engine.set_resilience(ResilienceConfig {
                deadlines: res.deadlines.as_ref().map(|d| DeadlineConfig {
                    budget: d.budget_ms.map(SimDuration::from_millis),
                    cancel_doomed: d.cancel_doomed,
                }),
                breakers: res.breakers.as_ref().map(|b| BreakerConfig {
                    failure_threshold: b.failure_threshold,
                    min_calls: b.min_calls,
                    open_for: SimDuration::from_millis(b.open_for_ms),
                    half_open_probes: b.half_open_probes,
                }),
            });
        }
    }
    if let Some(auto) = &sc.autoscaler {
        if let Some(pool) = &auto.vm_pool {
            engine.set_vm_pool(VmPoolConfig {
                vcpus_per_vm: pool.vcpus_per_vm,
                initial_vms: pool.initial_vms,
                max_vms: pool.max_vms,
                vm_startup: SimDuration::from_secs(pool.vm_startup_secs),
                vcpus_per_pod: 1.0,
            });
        }
        engine.enable_hpa(HpaConfig {
            target_utilization: auto.target_utilization,
            sync_period: SimDuration::from_secs(auto.sync_period_secs),
            ..HpaConfig::default()
        });
    }
    if !sc.failures.is_empty() {
        let mut specs = Vec::with_capacity(sc.failures.len());
        for f in &sc.failures {
            let svc = service_id(engine.topology(), &f.service)?;
            specs.push(cluster::failure::FailureSpec {
                at: SimTime::from_secs(f.at_secs),
                service: svc,
                pods: f.pods,
            });
        }
        engine.inject_failures(specs);
    }
    if !sc.faults.is_empty() {
        let mut specs = Vec::with_capacity(sc.faults.len());
        for f in &sc.faults {
            specs.push(build_fault(engine.topology(), f)?);
        }
        engine.inject_faults(specs);
    }
    if let Some(adm) = &sc.admission {
        let (front, key_space) = front_door_config(engine.topology(), adm)?;
        engine.set_front_door(front, key_space);
    }
    let controller = build_controller(&sc.controller, &mut engine)?;
    let hardened = matches!(
        sc.controller,
        ControllerSpec::Topfull { hardened: true, .. }
    );
    Ok(BuiltScenario {
        engine,
        controller,
        api_names,
        hardened,
    })
}

/// Admission spec → front-door config plus per-API coalescing key
/// spaces (0 = not coalescable). Shared by the simulator path and the
/// live plane, which runs the identical stage pipeline per gateway.
pub fn front_door_config(
    topo: &Topology,
    spec: &AdmissionSpec,
) -> Result<(cluster::front::FrontConfig, Vec<u64>), String> {
    let mut cfg = cluster::front::FrontConfig::default();
    let mut key_space = vec![0u64; topo.num_apis()];
    if let Some(co) = &spec.coalesce {
        if co.apis.is_empty() {
            return Err("admission.coalesce.apis must name at least one API".into());
        }
        if co.key_space == 0 {
            return Err("admission.coalesce.key_space must be at least 1".into());
        }
        for name in &co.apis {
            let id = api_id(topo, name)?;
            key_space[id.0 as usize] = co.key_space;
        }
        cfg.coalesce = Some(cluster::front::CoalesceConfig {
            cache_capacity: co.cache_capacity,
            cache_ttl: SimDuration::from_millis(co.cache_ttl_ms),
        });
    }
    if let Some(pr) = &spec.priority {
        if pr.business_tiers == 0 || pr.user_levels == 0 {
            return Err(
                "admission.priority.business_tiers and user_levels must be at least 1".into(),
            );
        }
        cfg.priority = Some(cluster::front::PriorityConfig {
            business_tiers: pr.business_tiers as u32,
            user_levels: pr.user_levels as u32,
            alpha: pr.alpha,
            beta: pr.beta,
            queuing_delay_threshold: SimDuration::from_millis(pr.queuing_delay_ms),
        });
    }
    if cfg.coalesce.is_none() && cfg.priority.is_none() {
        return Err("admission block is present but both stages are disabled \
             (set admission.coalesce and/or admission.priority)"
            .into());
    }
    Ok((cfg, key_space))
}

/// Sharding spec → core sharded-plane config (shared by the simulator
/// path and, minus simulator-only faults, the live plane).
pub fn sharded_config(spec: &ShardingSpec) -> Result<topfull::ShardedConfig, String> {
    if spec.shards == 0 {
        return Err("sharding.shards must be at least 1".into());
    }
    let plane = topfull::ShardPlaneConfig {
        min_quantum: spec.min_quantum,
        strike_out: spec.strike_out,
        reentry_ticks: spec.reentry_ticks,
        limit_ttl: spec.limit_ttl,
        ..topfull::ShardPlaneConfig::default()
    };
    let mut faults = Vec::with_capacity(spec.faults.len());
    for f in &spec.faults {
        faults.push(build_shard_fault(spec.shards, f)?);
    }
    Ok(topfull::ShardedConfig {
        shards: spec.shards,
        weights: spec.weights.clone(),
        plane,
        faults,
    })
}

/// JSON shard fault → core shard fault, with index validation.
fn build_shard_fault(shards: usize, f: &ShardFaultJson) -> Result<cluster::ShardFault, String> {
    use cluster::ShardFault as SF;
    let check = |shard: usize| -> Result<usize, String> {
        if shard >= shards {
            Err(format!(
                "shard fault references shard {shard}, but sharding.shards is {shards}"
            ))
        } else {
            Ok(shard)
        }
    };
    Ok(match f {
        ShardFaultJson::Dropout {
            shard,
            from_secs,
            until_secs,
        } => SF::Dropout {
            shard: check(*shard)?,
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
        },
        ShardFaultJson::Kill { shard, at_secs } => SF::Kill {
            shard: check(*shard)?,
            at: SimTime::from_secs(*at_secs),
        },
        ShardFaultJson::ControllerLoss {
            from_secs,
            until_secs,
        } => SF::ControllerLoss {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
        },
    })
}

/// JSON fault → engine fault (service names resolved, seconds → SimTime).
fn build_fault(topo: &Topology, f: &FaultSpecJson) -> Result<cluster::FaultSpec, String> {
    use cluster::FaultSpec as F;
    let svc = |name: &str| service_id(topo, name);
    let opt_svc = |name: &Option<String>| -> Result<Option<ServiceId>, String> {
        name.as_deref().map(&svc).transpose()
    };
    Ok(match f {
        FaultSpecJson::PodKill {
            at_secs,
            service,
            pods,
        } => F::PodKill {
            at: SimTime::from_secs(*at_secs),
            service: svc(service)?,
            pods: *pods,
        },
        FaultSpecJson::SlowPods {
            from_secs,
            until_secs,
            service,
            factor,
        } => F::SlowPods {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
            service: svc(service)?,
            factor: *factor,
        },
        FaultSpecJson::NetworkDegrade {
            from_secs,
            until_secs,
            service,
            extra_latency_ms,
            loss,
        } => F::NetworkDegrade {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
            service: opt_svc(service)?,
            extra_latency: SimDuration::from_millis(*extra_latency_ms),
            loss: *loss,
        },
        FaultSpecJson::TelemetryDropout {
            from_secs,
            until_secs,
            service,
        } => F::TelemetryDropout {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
            service: opt_svc(service)?,
        },
        FaultSpecJson::TelemetryStaleness {
            from_secs,
            until_secs,
            by_secs,
        } => F::TelemetryStaleness {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
            by: SimDuration::from_secs(*by_secs),
        },
        FaultSpecJson::TelemetryNoise {
            from_secs,
            until_secs,
            sigma,
        } => F::TelemetryNoise {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
            sigma: *sigma,
        },
        FaultSpecJson::ControllerStall {
            from_secs,
            until_secs,
        } => F::ControllerStall {
            from: SimTime::from_secs(*from_secs),
            until: SimTime::from_secs(*until_secs),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Scenario;

    #[test]
    fn example_scenario_builds() {
        let sc = Scenario::example();
        let built = build_scenario(&sc).expect("builds");
        assert_eq!(built.api_names, vec!["get"]);
        assert_eq!(built.engine.topology().num_services(), 2);
    }

    #[test]
    fn builtin_apps_build() {
        for (name, services) in [
            ("online-boutique", 11),
            ("train-ticket", 41),
            ("alibaba-demo", 127),
        ] {
            let json = format!(
                r#"{{
                    "app": {{"type": "builtin", "name": "{name}"}},
                    "workload": {{"type": "open_loop", "rates": []}}
                }}"#
            );
            let sc = crate::parse_scenario(&json).expect("parse");
            let built = build_scenario(&sc).expect(name);
            assert_eq!(built.engine.topology().num_services(), services);
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": [
                {"api": "no-such-api", "steps": [[0, 1.0]]}
            ]}
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        let err = match build_scenario(&sc) {
            Err(e) => e,
            Ok(_) => panic!("unknown API must be rejected"),
        };
        assert!(err.contains("no-such-api"));

        let json = r#"{
            "app": {"type": "builtin", "name": "bogus"},
            "workload": {"type": "open_loop", "rates": []}
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        assert!(build_scenario(&sc).is_err());
    }

    #[test]
    fn controller_wiring_works() {
        for ctrl in [
            r#"{"type": "none"}"#,
            r#"{"type": "dagor", "alpha": 0.1}"#,
            r#"{"type": "breakwater"}"#,
            r#"{"type": "wisp"}"#,
            r#"{"type": "topfull", "rate_controller": "mimd"}"#,
            r#"{"type": "topfull", "rate_controller": "bw", "clustering": false}"#,
        ] {
            let json = format!(
                r#"{{
                    "app": {{"type": "builtin", "name": "online-boutique"}},
                    "workload": {{"type": "open_loop", "rates": []}},
                    "controller": {ctrl}
                }}"#
            );
            let sc = crate::parse_scenario(&json).expect("parse");
            build_scenario(&sc).expect(ctrl);
        }
        // Unknown rate controller fails loudly.
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "controller": {"type": "topfull", "rate_controller": "magic"}
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        assert!(build_scenario(&sc).is_err());
    }

    #[test]
    fn faults_resolve_and_hardened_flag_propagates() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": [
                {"api": "getproduct", "steps": [[0, 100.0]]}
            ]},
            "controller": {"type": "topfull", "rate_controller": "mimd", "hardened": true},
            "faults": [
                {"kind": "slow_pods", "from_secs": 10, "until_secs": 20,
                 "service": "productcatalogservice", "factor": 4.0},
                {"kind": "telemetry_dropout", "from_secs": 15, "until_secs": 25},
                {"kind": "telemetry_staleness", "from_secs": 25, "until_secs": 30, "by_secs": 5},
                {"kind": "telemetry_noise", "from_secs": 30, "until_secs": 35, "sigma": 0.5},
                {"kind": "network_degrade", "from_secs": 35, "until_secs": 40,
                 "service": "cartservice", "extra_latency_ms": 20, "loss": 0.1},
                {"kind": "controller_stall", "from_secs": 40, "until_secs": 45},
                {"kind": "pod_kill", "at_secs": 50, "service": "cartservice", "pods": 1}
            ]
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        assert_eq!(sc.faults.len(), 7);
        let built = build_scenario(&sc).expect("faults build");
        assert!(built.hardened, "hardened flag must reach the harness");
        // Unknown service names inside a fault fail loudly.
        let bad = json.replace("productcatalogservice", "no-such-service");
        let sc = crate::parse_scenario(&bad).expect("parse");
        assert!(build_scenario(&sc).is_err());
    }

    #[test]
    fn resilience_keys_build_and_are_validated() {
        // Full resilience block on a retry storm: builds.
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "retry_storm", "users": 50,
                         "api_weights": [["getproduct", 1.0]]},
            "resilience": {
                "deadlines": {"budget_ms": 800, "cancel_doomed": true},
                "retry_budget": {"max_tokens": 50.0, "token_ratio": 0.2},
                "breakers": {"failure_threshold": 0.4, "min_calls": 10}
            }
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        build_scenario(&sc).expect("resilience builds");
        // A retry budget without retrying clients is a config error.
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "resilience": {"retry_budget": {}}
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        let err = match build_scenario(&sc) {
            Err(e) => e,
            Ok(_) => panic!("budget without retry_storm must be rejected"),
        };
        assert!(err.contains("retry_storm"), "{err}");
    }

    #[test]
    fn admission_block_builds_and_is_validated() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "admission": {
                "coalesce": {"apis": ["getproduct"], "key_space": 32},
                "priority": {"alpha": 0.05}
            }
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        let built = build_scenario(&sc).expect("admission builds");
        assert!(
            built.engine.front_stats().is_some(),
            "front door must be armed"
        );
        // Unknown coalescable API fails loudly.
        let bad = json.replace("getproduct", "no-such-api");
        let sc = crate::parse_scenario(&bad).expect("parse");
        let err = match build_scenario(&sc) {
            Err(e) => e,
            Ok(_) => panic!("unknown coalescable API must be rejected"),
        };
        assert!(err.contains("no-such-api"), "{err}");
        // An admission block with both stages absent is a config error.
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "admission": {}
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        let err = match build_scenario(&sc) {
            Err(e) => e,
            Ok(_) => panic!("empty admission block must be rejected"),
        };
        assert!(err.contains("both stages are disabled"), "{err}");
    }

    #[test]
    fn failures_resolve_service_names() {
        let json = r#"{
            "app": {"type": "builtin", "name": "train-ticket"},
            "workload": {"type": "open_loop", "rates": []},
            "failures": [{"at_secs": 10, "service": "ts-station-service", "pods": 2}]
        }"#;
        let sc = crate::parse_scenario(json).expect("parse");
        build_scenario(&sc).expect("valid failure spec");
        let bad = json.replace("ts-station-service", "ts-nope");
        let sc = crate::parse_scenario(&bad).expect("parse");
        assert!(build_scenario(&sc).is_err());
    }
}
