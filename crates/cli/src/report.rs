//! Scenario execution and output rendering.

use crate::build::BuiltScenario;
use crate::schema::Scenario;
use cluster::{ApiId, Harness, ResilienceStats, WatchdogConfig};
use serde::Serialize;

/// The measured outcome of a scenario run.
#[derive(Debug, Serialize)]
pub struct ScenarioOutcome {
    pub name: String,
    pub duration_secs: u64,
    /// Per-API steady-state mean goodput (rps), in API order.
    pub goodput_per_api: Vec<(String, f64)>,
    pub total_goodput: f64,
    /// Per-API steady-state mean offered rate.
    pub offered_per_api: Vec<(String, f64)>,
    /// Pod crash-loop events over the run.
    pub crash_events: u64,
    /// Request-plane resilience counters over the whole run.
    pub resilience: ResilienceStats,
    /// `(t, total goodput)` timeline.
    pub timeline: Vec<(f64, f64)>,
    /// `(t, worst per-API p99 seconds)` timeline (simulator runs only;
    /// empty for live runs). The scenario fuzzer's sustained-breach
    /// objective reads this.
    pub p99_timeline: Vec<(f64, f64)>,
    /// Controller decision journal, in decision order. Feed to
    /// `topfull explain` to render the timeline.
    pub journal: Vec<obs::JournalEntry>,
    /// Shard-plane activity (sharded runs only).
    pub shard_plane: Option<topfull::ShardPlaneStats>,
    /// Shard-local guard activity summed over shards (sharded runs only).
    pub shard_guards: Option<topfull::GuardStats>,
    /// Per-class reject counts `(entry-limit, priority-shed)` observed
    /// by the load generator's reply readers (live runs only).
    pub live_rejects: Option<(u64, u64)>,
    /// Causal trace events harvested from the gateway's trace log (live
    /// runs only; the simulator has no wire to carry trace ids). Feed
    /// the run JSON to `topfull trace` to render waterfalls.
    pub traces: Vec<obs::TraceEvent>,
}

/// Per-API steady-state means out of a [`cluster::RunResult`].
#[allow(clippy::type_complexity)]
fn summarize(
    r: &cluster::RunResult,
    api_names: &[String],
    from: f64,
    to: f64,
) -> (Vec<(String, f64)>, Vec<(String, f64)>, f64) {
    let goodput_per_api: Vec<(String, f64)> = api_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), r.mean_goodput_api(ApiId(i as u32), from, to)))
        .collect();
    let offered_per_api: Vec<(String, f64)> = api_names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let xs: Vec<f64> = r
                .samples
                .iter()
                .filter(|s| s.at.as_secs_f64() >= from)
                .map(|s| s.offered[i])
                .collect();
            (n.clone(), simnet::stats::mean(&xs))
        })
        .collect();
    (
        goodput_per_api,
        offered_per_api,
        r.mean_total_goodput(from, to),
    )
}

/// `(t, max-over-APIs p99)` series out of the harness samples.
fn p99_series(r: &cluster::RunResult) -> Vec<(f64, f64)> {
    r.samples
        .iter()
        .map(|s| {
            let worst = s.p99.iter().copied().fold(0.0, f64::max);
            (s.at.as_secs_f64(), worst)
        })
        .collect()
}

/// Run a built scenario to completion and collect the outcome.
pub fn execute(sc: &Scenario, built: BuiltScenario) -> ScenarioOutcome {
    let BuiltScenario {
        engine,
        controller,
        api_names,
        hardened,
    } = built;
    let mut h = if hardened {
        Harness::with_watchdog(engine, controller, WatchdogConfig::default())
    } else {
        Harness::new(engine, controller)
    };
    if let Some(slo) = &sc.slo {
        h.set_slo_config(slo.to_config());
    }
    h.run_for_secs(sc.duration_secs);
    let from = sc.report.measure_from_secs as f64;
    let to = sc.duration_secs as f64;
    let r = h.result();
    let (goodput_per_api, offered_per_api, total_goodput) = summarize(r, &api_names, from, to);
    ScenarioOutcome {
        name: sc.name.clone(),
        duration_secs: sc.duration_secs,
        total_goodput,
        goodput_per_api,
        offered_per_api,
        crash_events: h.engine.crash_events,
        resilience: h.engine.resilience_totals(),
        timeline: r.total_goodput_series(),
        p99_timeline: p99_series(r),
        journal: h.journal().snapshot(),
        shard_plane: None,
        shard_guards: None,
        live_rejects: None,
        traces: Vec::new(),
    }
}

/// Run a built scenario under the sharded control plane: the engine's
/// controller-facing observation is sliced into N virtual gateway
/// shards, one logical controller runs on the weighted merge, and the
/// resulting limits are split back per shard (see `topfull::shard`).
pub fn execute_sharded(
    sc: &Scenario,
    built: BuiltScenario,
    cfg: topfull::ShardedConfig,
) -> Result<ScenarioOutcome, String> {
    let BuiltScenario {
        engine,
        controller,
        api_names,
        hardened,
    } = built;
    if hardened {
        return Err(
            "sharding and hardened are mutually exclusive: the shard plane carries its \
             own degradation ladder (limit TTL + local MIMD fallback) in place of the \
             watchdog"
                .into(),
        );
    }
    let mut h = topfull::ShardedHarness::new(engine, controller, cfg)?;
    if let Some(slo) = &sc.slo {
        h.set_slo_config(slo.to_config());
    }
    h.run_for_secs(sc.duration_secs);
    let from = sc.report.measure_from_secs as f64;
    let to = sc.duration_secs as f64;
    let r = h.result();
    let (goodput_per_api, offered_per_api, total_goodput) = summarize(r, &api_names, from, to);
    Ok(ScenarioOutcome {
        name: sc.name.clone(),
        duration_secs: sc.duration_secs,
        total_goodput,
        goodput_per_api,
        offered_per_api,
        crash_events: h.engine.crash_events,
        resilience: h.engine.resilience_totals(),
        timeline: r.total_goodput_series(),
        p99_timeline: p99_series(r),
        journal: h.journal().snapshot(),
        shard_plane: Some(h.plane_stats()),
        shard_guards: Some(h.guard_stats()),
        live_rejects: None,
        traces: Vec::new(),
    })
}

/// Run the same scenario under a roster of controllers and tabulate.
pub fn compare(sc: &Scenario) -> Result<String, String> {
    use crate::schema::ControllerSpec;
    use std::fmt::Write;
    let rosters: Vec<(&str, ControllerSpec)> = vec![
        ("none", ControllerSpec::None),
        ("dagor", ControllerSpec::Dagor { alpha: 0.05 }),
        ("breakwater", ControllerSpec::Breakwater),
        ("wisp", ControllerSpec::Wisp),
        (
            "topfull-mimd",
            ControllerSpec::Topfull {
                rate_controller: "mimd".into(),
                clustering: true,
                hardened: false,
            },
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario: {} — comparing controllers ({}s each)",
        sc.name, sc.duration_secs
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>14}",
        "controller", "goodput", "pod crashes"
    );
    // Controller variants are independent runs of the same scenario:
    // fan them out over the experiment worker pool, consuming outcomes
    // in roster order so the table is identical at any worker count.
    let mut plan = topfull_bench::runner::RunPlan::new();
    for (label, ctrl) in rosters {
        plan.submit(move || {
            let mut variant = sc.clone();
            variant.controller = ctrl;
            (label, crate::run_scenario(&variant))
        });
    }
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (label, outcome) in plan.run() {
        let outcome = outcome?;
        let _ = writeln!(
            out,
            "{:<14} {:>12.1} {:>14}",
            label, outcome.total_goodput, outcome.crash_events
        );
        rows.push((label.to_string(), outcome.total_goodput));
    }
    if let Some((best, top)) = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    {
        let _ = writeln!(
            out,
            "
best: {best} at {top:.1} rps"
        );
    }
    Ok(out)
}

/// Render a human-readable report.
pub fn render_report(sc: &Scenario, out: &ScenarioOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "scenario: {} ({}s simulated)",
        out.name, out.duration_secs
    );
    let _ = writeln!(s, "steady state from t={}s:", sc.report.measure_from_secs);
    let _ = writeln!(s, "{:<24} {:>12} {:>12}", "api", "offered", "goodput");
    for ((name, good), (_, offered)) in out.goodput_per_api.iter().zip(&out.offered_per_api) {
        if *offered < 0.01 && *good < 0.01 {
            continue; // idle APIs of builtin topologies
        }
        let _ = writeln!(s, "{name:<24} {offered:>12.1} {good:>12.1}");
    }
    let _ = writeln!(s, "{:<24} {:>12} {:>12.1}", "total", "", out.total_goodput);
    if out.crash_events > 0 {
        let _ = writeln!(s, "pod crash-loop events: {}", out.crash_events);
    }
    if out.resilience.any() {
        let r = &out.resilience;
        let _ = writeln!(
            s,
            "resilience: doomed-cancelled={} deadline-rejected={} client-cancelled={}",
            r.doomed_cancelled, r.deadline_rejected, r.client_cancelled
        );
        let _ = writeln!(
            s,
            "            retries issued={} suppressed={} breaker rejected={} transitions={}",
            r.retries_issued, r.retries_suppressed, r.breaker_rejected, r.breaker_transitions
        );
    }
    if let Some(p) = &out.shard_plane {
        let _ = writeln!(
            s,
            "shard plane: merges={} strike-outs={} re-entries={} redistributions={}",
            p.merges, p.strike_outs, p.reentries, p.redistributions
        );
    }
    if let Some((limit, shed)) = out.live_rejects {
        if limit > 0 || shed > 0 {
            let _ = writeln!(s, "live rejects: entry-limit={limit} priority-shed={shed}");
        }
    }
    if let Some(g) = &out.shard_guards {
        if g.held_ticks > 0 || g.fallback_ticks > 0 {
            let _ = writeln!(
                s,
                "shard guards: held-ticks={} fallback-ticks={} resyncs={}",
                g.held_ticks, g.fallback_ticks, g.resyncs
            );
        }
    }
    if sc.report.timeline {
        let _ = writeln!(s, "\ntimeline (total goodput, rps):");
        let stride = (out.timeline.len() / 24).max(1);
        for (t, v) in out.timeline.iter().step_by(stride) {
            let bar_len = (v / 25.0).min(100.0) as usize;
            let _ = writeln!(s, "{t:>5.0}s {v:>8.0} {}", "#".repeat(bar_len));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Scenario;

    #[test]
    fn example_runs_and_reports() {
        let sc = Scenario::example();
        let out = crate::run_scenario(&sc).expect("runs");
        assert_eq!(out.name, "two-tier-overload");
        // The backend caps at ~100 rps; the MIMD controller holds
        // goodput near it in steady state.
        assert!(
            out.total_goodput > 50.0,
            "controlled goodput too low: {}",
            out.total_goodput
        );
        let text = render_report(&sc, &out);
        assert!(text.contains("scenario: two-tier-overload"));
        assert!(text.contains("timeline"), "example asks for a timeline");
    }

    #[test]
    fn compare_tabulates_all_controllers() {
        let mut sc = Scenario::example();
        sc.duration_secs = 20; // keep the test quick
        sc.report.measure_from_secs = 10;
        let table = compare(&sc).expect("compare runs");
        for label in ["none", "dagor", "breakwater", "wisp", "topfull-mimd"] {
            assert!(table.contains(label), "missing {label} in:\n{table}");
        }
        assert!(table.contains("best:"));
    }

    #[test]
    fn outcome_serializes_to_json() {
        let sc = Scenario::example();
        let out = crate::run_scenario(&sc).expect("runs");
        let json = serde_json::to_string(&out).expect("json");
        assert!(json.contains("total_goodput"));
    }
}
