//! # topfull-cli — JSON scenario runner
//!
//! Lets operators exercise the TopFull stack without writing Rust: a
//! scenario file describes an application topology (or names a built-in
//! benchmark), a workload, a controller, and optional autoscaling /
//! failure injection; `topfull-sim run scenario.json` executes it and
//! prints per-API goodput, latency and an optional timeline.
//!
//! See [`schema`] for the file format, [`build`] for the
//! scenario → engine translation, and [`report`] for the output.

pub mod build;
pub mod explain;
pub mod live;
pub mod report;
pub mod schema;

pub use build::build_scenario;
pub use explain::explain_file;
pub use live::run_live;
pub use report::{render_report, ScenarioOutcome};
pub use schema::Scenario;

/// Parse a scenario from JSON text.
pub fn parse_scenario(json: &str) -> Result<Scenario, String> {
    serde_json::from_str(json).map_err(|e| format!("invalid scenario: {e}"))
}

/// Run a scenario end to end.
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioOutcome, String> {
    let built = build_scenario(sc)?;
    Ok(report::execute(sc, built))
}
