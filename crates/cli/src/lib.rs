//! # topfull-cli — JSON scenario runner
//!
//! Lets operators exercise the TopFull stack without writing Rust: a
//! scenario file describes an application topology (or names a built-in
//! benchmark), a workload, a controller, and optional autoscaling /
//! failure injection; `topfull-sim run scenario.json` executes it and
//! prints per-API goodput, latency and an optional timeline.
//!
//! See [`schema`] for the file format, [`build`] for the
//! scenario → engine translation, and [`report`] for the output.

pub mod build;
pub mod explain;
pub mod live;
pub mod report;
pub mod schema;

pub use build::build_scenario;
pub use explain::explain_file;
pub use live::run_live;
pub use report::{render_report, ScenarioOutcome};
pub use schema::Scenario;

/// Top-level keys the scenario schema accepts. Kept in sync with
/// [`schema::Scenario`]'s fields; `parse_scenario` rejects anything
/// else so typos fail loudly instead of being silently ignored.
const TOP_LEVEL_KEYS: &[&str] = &[
    "name",
    "seed",
    "duration_secs",
    "slo_ms",
    "app",
    "workload",
    "controller",
    "autoscaler",
    "failures",
    "faults",
    "resilience",
    "live",
    "sharding",
    "report",
];

/// Levenshtein edit distance, for the "did you mean" hint.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Reject unknown top-level keys with a "did you mean" suggestion.
fn check_top_level_keys(value: &serde_json::JsonValue) -> Result<(), String> {
    let serde::Value::Object(fields) = value else {
        return Err("invalid scenario: top level must be a JSON object".into());
    };
    for (key, _) in fields {
        if TOP_LEVEL_KEYS.contains(&key.as_str()) {
            continue;
        }
        let nearest = TOP_LEVEL_KEYS
            .iter()
            .min_by_key(|k| edit_distance(key, k))
            .expect("non-empty key list");
        let hint = if edit_distance(key, nearest) <= 3 {
            format!(" — did you mean '{nearest}'?")
        } else {
            String::new()
        };
        return Err(format!(
            "invalid scenario: unknown top-level key '{key}'{hint}\n\
             valid keys: {}",
            TOP_LEVEL_KEYS.join(", ")
        ));
    }
    Ok(())
}

/// Parse a scenario from JSON text. Unknown top-level keys are an
/// error (with a "did you mean" hint), not a silent no-op.
pub fn parse_scenario(json: &str) -> Result<Scenario, String> {
    let value: serde_json::JsonValue =
        serde_json::from_str(json).map_err(|e| format!("invalid scenario: {e}"))?;
    check_top_level_keys(&value)?;
    serde_json::from_str(json).map_err(|e| format!("invalid scenario: {e}"))
}

/// Run a scenario end to end.
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioOutcome, String> {
    if sc.sharding.is_some()
        && !matches!(
            sc.controller,
            schema::ControllerSpec::None | schema::ControllerSpec::Topfull { .. }
        )
    {
        return Err(
            "sharding splits entry rate limits across gateway shards, so it only \
             composes with entry controllers ('none' or 'topfull'); per-service \
             schemes (dagor/breakwater/wisp) don't run at the sharded gateway"
                .into(),
        );
    }
    let built = build_scenario(sc)?;
    match &sc.sharding {
        Some(spec) => {
            let cfg = build::sharded_config(spec)?;
            report::execute_sharded(sc, built, cfg)
        }
        None => Ok(report::execute(sc, built)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_top_level_key_gets_a_did_you_mean_hint() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "shardng": {"shards": 3}
        }"#;
        let err = parse_scenario(json).expect_err("typo must be rejected");
        assert!(err.contains("unknown top-level key 'shardng'"), "{err}");
        assert!(err.contains("did you mean 'sharding'?"), "{err}");
        assert!(err.contains("valid keys:"), "{err}");
    }

    #[test]
    fn unrelated_unknown_key_lists_valid_keys_without_a_guess() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "zzqx": 1
        }"#;
        let err = parse_scenario(json).expect_err("unknown key must be rejected");
        assert!(err.contains("unknown top-level key 'zzqx'"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn sharding_rejects_per_service_controllers() {
        let mut sc = Scenario::example();
        sc.controller = schema::ControllerSpec::Dagor { alpha: 0.05 };
        sc.sharding = Some(schema::ShardingSpec {
            shards: 3,
            ..Default::default()
        });
        let err = run_scenario(&sc).expect_err("dagor cannot shard at the gateway");
        assert!(err.contains("entry controllers"), "{err}");
    }

    #[test]
    fn sharding_rejects_the_hardened_loop() {
        let mut sc = Scenario::example();
        sc.controller = schema::ControllerSpec::Topfull {
            rate_controller: "mimd".into(),
            clustering: true,
            hardened: true,
        };
        sc.sharding = Some(schema::ShardingSpec {
            shards: 2,
            ..Default::default()
        });
        let err = run_scenario(&sc).expect_err("hardened + sharding is ambiguous");
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn sharded_run_matches_single_gateway_within_noise() {
        let mut sc = Scenario::example();
        sc.duration_secs = 60;
        sc.report.measure_from_secs = 30;
        sc.report.timeline = false;
        let single = run_scenario(&sc).expect("single runs");
        sc.sharding = Some(schema::ShardingSpec {
            shards: 3,
            ..Default::default()
        });
        let sharded = run_scenario(&sc).expect("sharded runs");
        let plane = sharded.shard_plane.as_ref().expect("plane stats present");
        assert!(plane.merges > 0, "controller saw merged observations");
        let (a, b) = (single.total_goodput, sharded.total_goodput);
        assert!(
            (a - b).abs() / a.max(1.0) < 0.15,
            "3-shard goodput {b:.1} strays from single-gateway {a:.1}"
        );
        let text = render_report(&sc, &sharded);
        assert!(text.contains("shard plane:"), "{text}");
    }

    #[test]
    fn sharded_kill_redistributes_and_journals() {
        let mut sc = Scenario::example();
        sc.duration_secs = 60;
        sc.report.measure_from_secs = 30;
        sc.report.timeline = false;
        sc.sharding = Some(schema::ShardingSpec {
            shards: 3,
            faults: vec![schema::ShardFaultJson::Kill {
                shard: 2,
                at_secs: 30,
            }],
            ..Default::default()
        });
        let out = run_scenario(&sc).expect("sharded kill runs");
        let plane = out.shard_plane.as_ref().expect("plane stats");
        assert!(plane.strike_outs >= 1, "killed shard must strike out");
        assert!(plane.redistributions >= 1, "quota must redistribute");
        let membership: Vec<_> = out
            .journal
            .iter()
            .filter(|e| matches!(e, obs::JournalEntry::ShardMembership { .. }))
            .collect();
        assert!(!membership.is_empty(), "membership transitions journaled");
    }
}
