//! # topfull-cli — JSON scenario runner
//!
//! Lets operators exercise the TopFull stack without writing Rust: a
//! scenario file describes an application topology (or names a built-in
//! benchmark), a workload, a controller, and optional autoscaling /
//! failure injection; `topfull-sim run scenario.json` executes it and
//! prints per-API goodput, latency and an optional timeline.
//!
//! See [`schema`] for the file format, [`build`] for the
//! scenario → engine translation, and [`report`] for the output.

pub mod build;
pub mod explain;
pub mod keys;
pub mod live;
pub mod report;
pub mod schema;
pub mod trace;

pub use build::build_scenario;
pub use explain::explain_file;
pub use live::run_live;
pub use report::{render_report, ScenarioOutcome};
pub use schema::Scenario;
pub use trace::trace_source;

/// Top-level keys the scenario schema accepts. Kept in sync with
/// [`schema::Scenario`]'s fields; `parse_scenario` rejects anything
/// else so typos fail loudly instead of being silently ignored.
const TOP_LEVEL_KEYS: &[&str] = &[
    "name",
    "seed",
    "duration_secs",
    "slo_ms",
    "app",
    "workload",
    "controller",
    "autoscaler",
    "failures",
    "faults",
    "resilience",
    "live",
    "sharding",
    "admission",
    "slo",
    "report",
];

const SLO_KEYS: &[&str] = &[
    "objective",
    "fast_windows_secs",
    "slow_windows_secs",
    "page_burn",
    "ticket_burn",
];

const ADMISSION_KEYS: &[&str] = &["coalesce", "priority"];
const COALESCE_KEYS: &[&str] = &["apis", "key_space", "cache_capacity", "cache_ttl_ms"];
const PRIORITY_KEYS: &[&str] = &[
    "business_tiers",
    "user_levels",
    "alpha",
    "beta",
    "queuing_delay_ms",
];

const LIVE_KEYS: &[&str] = &[
    "cpu_scale",
    "control_interval_ms",
    "gateway_burst_secs",
    "port",
    "metrics_port",
    "event_loops",
    "max_conn_output",
];

const SHARDING_KEYS: &[&str] = &[
    "shards",
    "weights",
    "min_quantum",
    "strike_out",
    "reentry_ticks",
    "limit_ttl",
    "faults",
];

const RESILIENCE_KEYS: &[&str] = &["deadlines", "retry_budget", "breakers"];
const DEADLINE_KEYS: &[&str] = &["budget_ms", "cancel_doomed"];
const RETRY_BUDGET_KEYS: &[&str] = &["max_tokens", "token_ratio", "retry_cost"];
const BREAKER_KEYS: &[&str] = &[
    "failure_threshold",
    "min_calls",
    "open_for_ms",
    "half_open_probes",
];

const REPORT_KEYS: &[&str] = &["measure_from_secs", "timeline"];
const AUTOSCALER_KEYS: &[&str] = &[
    "target_utilization",
    "sync_period_secs",
    "pod_startup_secs",
    "vm_pool",
];
const VM_POOL_KEYS: &[&str] = &["vcpus_per_vm", "initial_vms", "max_vms", "vm_startup_secs"];

/// Per-variant key sets for the `faults` array (tagged by `kind`).
/// Public because the workflow engine (crates/scenario) embeds fault
/// schedules and key-checks them with the same table.
pub const FAULT_VARIANTS: &[(&str, &[&str])] = &[
    ("pod_kill", &["at_secs", "service", "pods"]),
    (
        "slow_pods",
        &["from_secs", "until_secs", "service", "factor"],
    ),
    (
        "network_degrade",
        &[
            "from_secs",
            "until_secs",
            "service",
            "extra_latency_ms",
            "loss",
        ],
    ),
    ("telemetry_dropout", &["from_secs", "until_secs", "service"]),
    (
        "telemetry_staleness",
        &["from_secs", "until_secs", "by_secs"],
    ),
    ("telemetry_noise", &["from_secs", "until_secs", "sigma"]),
    ("controller_stall", &["from_secs", "until_secs"]),
];

/// Per-variant key sets for `sharding.faults` (tagged by `kind`).
const SHARD_FAULT_VARIANTS: &[(&str, &[&str])] = &[
    ("dropout", &["shard", "from_secs", "until_secs"]),
    ("kill", &["shard", "at_secs"]),
    ("controller_loss", &["from_secs", "until_secs"]),
];

/// Reject unknown keys — top-level and inside the nested `live`,
/// `sharding`, `faults`, `resilience`, `report` and `autoscaler`
/// blocks — with a "did you mean" suggestion.
fn check_scenario_keys(value: &serde_json::JsonValue) -> Result<(), String> {
    let serde::Value::Object(_) = value else {
        return Err("invalid scenario: top level must be a JSON object".into());
    };
    keys::check_keys("scenario", "", value, TOP_LEVEL_KEYS)?;
    if let Some(v) = value.get("live") {
        keys::check_keys("scenario", "live", v, LIVE_KEYS)?;
    }
    if let Some(v) = value.get("report") {
        keys::check_keys("scenario", "report", v, REPORT_KEYS)?;
    }
    if let Some(v) = value.get("slo") {
        keys::check_keys("scenario", "slo", v, SLO_KEYS)?;
    }
    if let Some(v) = value.get("autoscaler") {
        keys::check_keys("scenario", "autoscaler", v, AUTOSCALER_KEYS)?;
        if let Some(vp) = v.get("vm_pool") {
            keys::check_keys("scenario", "autoscaler.vm_pool", vp, VM_POOL_KEYS)?;
        }
    }
    if let Some(v) = value.get("sharding") {
        keys::check_keys("scenario", "sharding", v, SHARDING_KEYS)?;
        if let Some(f) = v.get("faults") {
            keys::check_tagged_items(
                "scenario",
                "sharding.faults",
                f,
                "kind",
                SHARD_FAULT_VARIANTS,
            )?;
        }
    }
    if let Some(v) = value.get("admission") {
        keys::check_keys("scenario", "admission", v, ADMISSION_KEYS)?;
        for (block, allowed) in [("coalesce", COALESCE_KEYS), ("priority", PRIORITY_KEYS)] {
            if let Some(sub) = v.get(block) {
                keys::check_keys("scenario", &format!("admission.{block}"), sub, allowed)?;
            }
        }
    }
    if let Some(v) = value.get("faults") {
        keys::check_tagged_items("scenario", "faults", v, "kind", FAULT_VARIANTS)?;
    }
    if let Some(v) = value.get("resilience") {
        keys::check_keys("scenario", "resilience", v, RESILIENCE_KEYS)?;
        for (block, allowed) in [
            ("deadlines", DEADLINE_KEYS),
            ("retry_budget", RETRY_BUDGET_KEYS),
            ("breakers", BREAKER_KEYS),
        ] {
            if let Some(sub) = v.get(block) {
                keys::check_keys("scenario", &format!("resilience.{block}"), sub, allowed)?;
            }
        }
    }
    Ok(())
}

/// Parse a scenario from JSON text. Unknown keys — top-level or inside
/// the nested config blocks — are an error (with a "did you mean"
/// hint), not a silent no-op.
pub fn parse_scenario(json: &str) -> Result<Scenario, String> {
    let value: serde_json::JsonValue =
        serde_json::from_str(json).map_err(|e| format!("invalid scenario: {e}"))?;
    check_scenario_keys(&value)?;
    serde_json::from_str(json).map_err(|e| format!("invalid scenario: {e}"))
}

/// Cross-spec composition rules checked before any run (and by
/// `topfull-sim check`): which controllers compose with sharding.
fn preflight(sc: &Scenario) -> Result<(), String> {
    if sc.admission.is_some() && sc.sharding.is_some() {
        return Err(
            "admission (front-door coalescing/priority) and sharding don't compose yet: \
             the coalescing cache and priority gate are per-gateway state, and the \
             virtual-shard plane splits one engine entry across shards"
                .into(),
        );
    }
    if sc.sharding.is_some() {
        if !matches!(
            sc.controller,
            schema::ControllerSpec::None | schema::ControllerSpec::Topfull { .. }
        ) {
            return Err(
                "sharding splits entry rate limits across gateway shards, so it only \
                 composes with entry controllers ('none' or 'topfull'); per-service \
                 schemes (dagor/breakwater/wisp) don't run at the sharded gateway"
                    .into(),
            );
        }
        if matches!(
            sc.controller,
            schema::ControllerSpec::Topfull { hardened: true, .. }
        ) {
            return Err(
                "sharding and hardened are mutually exclusive: the shard plane carries its \
                 own degradation ladder (limit TTL + local MIMD fallback) in place of the \
                 watchdog"
                    .into(),
            );
        }
    }
    Ok(())
}

/// What `validate_scenario` measured while building (for `check` output).
#[derive(Debug)]
pub struct CheckSummary {
    pub services: usize,
    pub apis: usize,
}

/// Validate a scenario without running it: composition rules, the full
/// scenario → engine build (topology, workload, controller, faults),
/// and — when sharded — the shard-plane config. This is everything
/// `run_scenario` does short of executing, so a scenario that checks
/// clean cannot fail at startup.
pub fn validate_scenario(sc: &Scenario) -> Result<CheckSummary, String> {
    preflight(sc)?;
    let built = build_scenario(sc)?;
    if let Some(spec) = &sc.sharding {
        build::sharded_config(spec)?;
    }
    Ok(CheckSummary {
        services: built.engine.topology().num_services(),
        apis: built.engine.topology().num_apis(),
    })
}

/// Run a scenario end to end.
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioOutcome, String> {
    preflight(sc)?;
    let built = build_scenario(sc)?;
    match &sc.sharding {
        Some(spec) => {
            let cfg = build::sharded_config(spec)?;
            report::execute_sharded(sc, built, cfg)
        }
        None => Ok(report::execute(sc, built)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_top_level_key_gets_a_did_you_mean_hint() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "shardng": {"shards": 3}
        }"#;
        let err = parse_scenario(json).expect_err("typo must be rejected");
        assert!(err.contains("unknown top-level key 'shardng'"), "{err}");
        assert!(err.contains("did you mean 'sharding'?"), "{err}");
        assert!(err.contains("valid keys:"), "{err}");
    }

    #[test]
    fn unrelated_unknown_key_lists_valid_keys_without_a_guess() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "zzqx": 1
        }"#;
        let err = parse_scenario(json).expect_err("unknown key must be rejected");
        assert!(err.contains("unknown top-level key 'zzqx'"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn nested_sharding_typo_is_rejected() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "sharding": {"shards": 3, "striek_out": 5}
        }"#;
        let err = parse_scenario(json).expect_err("nested typo must be rejected");
        assert!(
            err.contains("unknown key 'striek_out' in 'sharding'"),
            "{err}"
        );
        assert!(err.contains("did you mean 'strike_out'?"), "{err}");
    }

    #[test]
    fn nested_live_and_resilience_typos_are_rejected() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "live": {"control_intervl_ms": 100}
        }"#;
        let err = parse_scenario(json).expect_err("live typo must be rejected");
        assert!(err.contains("in 'live'"), "{err}");
        assert!(err.contains("did you mean 'control_interval_ms'?"), "{err}");

        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "resilience": {"breakers": {"failure_treshold": 0.4}}
        }"#;
        let err = parse_scenario(json).expect_err("breaker typo must be rejected");
        assert!(err.contains("in 'resilience.breakers'"), "{err}");
        assert!(err.contains("did you mean 'failure_threshold'?"), "{err}");
    }

    #[test]
    fn fault_entry_typos_name_the_entry_and_variant() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "faults": [
                {"kind": "slow_pods", "from_secs": 10, "until_secs": 20,
                 "service": "cartservice", "factor": 4.0},
                {"kind": "network_degrade", "from_secs": 10, "until_secs": 20, "los": 0.1}
            ]
        }"#;
        let err = parse_scenario(json).expect_err("fault typo must be rejected");
        assert!(err.contains("'faults[1] (network_degrade)'"), "{err}");
        assert!(err.contains("did you mean 'loss'?"), "{err}");
    }

    #[test]
    fn shard_fault_typos_are_rejected() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "sharding": {"shards": 3, "faults": [{"kind": "kill", "shard": 1, "at_sec": 30}]}
        }"#;
        let err = parse_scenario(json).expect_err("shard fault typo must be rejected");
        assert!(err.contains("'sharding.faults[0] (kill)'"), "{err}");
        assert!(err.contains("did you mean 'at_secs'?"), "{err}");
    }

    #[test]
    fn valid_nested_blocks_still_parse() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": [
                {"api": "getproduct", "steps": [[0, 100.0]]}
            ]},
            "live": {"control_interval_ms": 100, "metrics_port": 9900},
            "sharding": {"shards": 2, "faults": [{"kind": "kill", "shard": 1, "at_secs": 30}]},
            "faults": [{"kind": "controller_stall", "from_secs": 5, "until_secs": 10}],
            "resilience": {"deadlines": {"cancel_doomed": true}}
        }"#;
        let sc = parse_scenario(json).expect("valid scenario parses");
        assert_eq!(sc.sharding.expect("sharding").shards, 2);
    }

    #[test]
    fn sharding_rejects_per_service_controllers() {
        let mut sc = Scenario::example();
        sc.controller = schema::ControllerSpec::Dagor { alpha: 0.05 };
        sc.sharding = Some(schema::ShardingSpec {
            shards: 3,
            ..Default::default()
        });
        let err = run_scenario(&sc).expect_err("dagor cannot shard at the gateway");
        assert!(err.contains("entry controllers"), "{err}");
        let err = validate_scenario(&sc).expect_err("check catches it too");
        assert!(err.contains("entry controllers"), "{err}");
    }

    #[test]
    fn sharding_rejects_the_hardened_loop() {
        let mut sc = Scenario::example();
        sc.controller = schema::ControllerSpec::Topfull {
            rate_controller: "mimd".into(),
            clustering: true,
            hardened: true,
        };
        sc.sharding = Some(schema::ShardingSpec {
            shards: 2,
            ..Default::default()
        });
        let err = run_scenario(&sc).expect_err("hardened + sharding is ambiguous");
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = validate_scenario(&sc).expect_err("check catches it too");
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn admission_typos_and_sharding_combo_are_rejected() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workload": {"type": "open_loop", "rates": []},
            "admission": {"coalesce": {"apis": ["getproduct"], "cache_tl_ms": 100}}
        }"#;
        let err = parse_scenario(json).expect_err("admission typo must be rejected");
        assert!(err.contains("in 'admission.coalesce'"), "{err}");
        assert!(err.contains("did you mean 'cache_ttl_ms'?"), "{err}");

        let mut sc = Scenario::example();
        sc.admission = Some(schema::AdmissionSpec {
            priority: Some(schema::PrioritySpec::default()),
            ..Default::default()
        });
        sc.sharding = Some(schema::ShardingSpec {
            shards: 2,
            ..Default::default()
        });
        let err = validate_scenario(&sc).expect_err("admission + sharding must be rejected");
        assert!(err.contains("don't compose"), "{err}");
    }

    #[test]
    fn validate_scenario_summarizes_without_running() {
        let sc = Scenario::example();
        let sum = validate_scenario(&sc).expect("example validates");
        assert_eq!(sum.services, 2);
        assert_eq!(sum.apis, 1);
    }

    #[test]
    fn sharded_run_matches_single_gateway_within_noise() {
        let mut sc = Scenario::example();
        sc.duration_secs = 60;
        sc.report.measure_from_secs = 30;
        sc.report.timeline = false;
        let single = run_scenario(&sc).expect("single runs");
        sc.sharding = Some(schema::ShardingSpec {
            shards: 3,
            ..Default::default()
        });
        let sharded = run_scenario(&sc).expect("sharded runs");
        let plane = sharded.shard_plane.as_ref().expect("plane stats present");
        assert!(plane.merges > 0, "controller saw merged observations");
        let (a, b) = (single.total_goodput, sharded.total_goodput);
        assert!(
            (a - b).abs() / a.max(1.0) < 0.15,
            "3-shard goodput {b:.1} strays from single-gateway {a:.1}"
        );
        let text = render_report(&sc, &sharded);
        assert!(text.contains("shard plane:"), "{text}");
    }

    #[test]
    fn sharded_kill_redistributes_and_journals() {
        let mut sc = Scenario::example();
        sc.duration_secs = 60;
        sc.report.measure_from_secs = 30;
        sc.report.timeline = false;
        sc.sharding = Some(schema::ShardingSpec {
            shards: 3,
            faults: vec![schema::ShardFaultJson::Kill {
                shard: 2,
                at_secs: 30,
            }],
            ..Default::default()
        });
        let out = run_scenario(&sc).expect("sharded kill runs");
        let plane = out.shard_plane.as_ref().expect("plane stats");
        assert!(plane.strike_outs >= 1, "killed shard must strike out");
        assert!(plane.redistributions >= 1, "quota must redistribute");
        let membership: Vec<_> = out
            .journal
            .iter()
            .filter(|e| matches!(e, obs::JournalEntry::ShardMembership { .. }))
            .collect();
        assert!(!membership.is_empty(), "membership transitions journaled");
    }
}
