//! Causal request traces: which pipeline stage admitted, shed, or
//! served a request, and when.
//!
//! A client opts a request into tracing by appending a trace id to the
//! wire line (`REQ <id> <api> [key|-] [trace]`). The gateway threads
//! that [`TraceCtx`] through the front-door stage, the priority gate,
//! the token bucket, the worker pool, and the reply write; each stage
//! appends one [`TraceEvent`] to a bounded [`TraceLog`]. Events carry
//! wall/sim seconds since process start plus a duration, so `topfull
//! trace` can render a per-request waterfall, and the completion
//! histogram links its latency buckets back to sampled trace ids via
//! exemplars (`registry::Histogram::record_with_exemplar`).
//!
//! Tracing is sampling-based by design: untraced requests pay zero cost
//! (one `Option` check), traced ones one short mutex push per stage.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// The per-request trace context carried through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub id: u64,
}

/// One stage's record for one traced request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Trace id from the wire.
    pub trace: u64,
    /// The request id the client chose (`REQ <id> …`).
    pub request: u64,
    /// API index.
    pub api: u32,
    /// Gateway shard that handled the request (0 when unsharded).
    pub shard: u32,
    /// Pipeline stage: `front_door`, `priority_gate`, `token_bucket`,
    /// `worker`, `reply`.
    pub stage: String,
    /// What the stage did: `admitted`, `cache_hit`, `follower`, `shed`,
    /// `rejected`, `served`, `error`, `sent`.
    pub outcome: String,
    /// Seconds since the trace log's epoch when the stage began.
    pub at: f64,
    /// Seconds the stage took (0 for instantaneous verdicts).
    pub dur: f64,
}

impl TraceEvent {
    /// One deterministic JSON object (field order fixed; used for the
    /// `/trace` endpoint and run artifacts).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace\":{},\"request\":{},\"api\":{},\"shard\":{},\"stage\":\"{}\",\
             \"outcome\":\"{}\",\"at\":{:.9},\"dur\":{:.9}}}",
            self.trace,
            self.request,
            self.api,
            self.shard,
            self.stage,
            self.outcome,
            self.at,
            self.dur
        )
    }
}

/// Default bound on retained events.
const DEFAULT_CAP: usize = 8192;

/// Bounded ring of trace events. Oldest events are evicted first, so a
/// long-running gateway always serves the freshest traces.
pub struct TraceLog {
    state: Mutex<TraceState>,
}

struct TraceState {
    events: std::collections::VecDeque<TraceEvent>,
    cap: usize,
    evicted: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceLog {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    pub fn with_capacity(cap: usize) -> Self {
        TraceLog {
            state: Mutex::new(TraceState {
                events: std::collections::VecDeque::new(),
                cap: cap.max(1),
                evicted: 0,
            }),
        }
    }

    pub fn push(&self, ev: TraceEvent) {
        let mut st = self.state.lock().expect("trace lock");
        if st.events.len() >= st.cap {
            st.events.pop_front();
            st.evicted += 1;
        }
        st.events.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.state.lock().expect("trace lock").events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the bound so far.
    pub fn evicted(&self) -> u64 {
        self.state.lock().expect("trace lock").evicted
    }

    /// All retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.state
            .lock()
            .expect("trace lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events of one trace id, oldest first.
    pub fn by_id(&self, trace: u64) -> Vec<TraceEvent> {
        self.state
            .lock()
            .expect("trace lock")
            .events
            .iter()
            .filter(|e| e.trace == trace)
            .cloned()
            .collect()
    }

    /// JSONL rendering, one event per line (the `/trace` endpoint body).
    pub fn to_jsonl(&self, filter: Option<u64>) -> String {
        let st = self.state.lock().expect("trace lock");
        let mut out = String::new();
        for e in st.events.iter() {
            if filter.is_none() || filter == Some(e.trace) {
                out.push_str(&e.to_json());
                out.push('\n');
            }
        }
        out
    }
}

/// Render the events of one or more traces as a per-request waterfall.
/// Events must already be filtered/ordered as desired; the renderer
/// groups by trace id in first-seen order.
pub fn render_waterfall(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("no trace events\n");
        return out;
    }
    let mut ids: Vec<u64> = Vec::new();
    for e in events {
        if !ids.contains(&e.trace) {
            ids.push(e.trace);
        }
    }
    const BAR: usize = 40;
    for id in ids {
        let evs: Vec<&TraceEvent> = events.iter().filter(|e| e.trace == id).collect();
        let t0 = evs.iter().map(|e| e.at).fold(f64::INFINITY, f64::min);
        let t1 = evs
            .iter()
            .map(|e| e.at + e.dur)
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (t1 - t0).max(1e-9);
        let _ = writeln!(
            out,
            "trace {id} — request {} api {} shard {} ({:.3} ms end to end)",
            evs[0].request,
            evs[0].api,
            evs[0].shard,
            span * 1e3
        );
        for e in &evs {
            let start = (((e.at - t0) / span) * BAR as f64).floor() as usize;
            let width = (((e.dur / span) * BAR as f64).ceil() as usize).max(1);
            let start = start.min(BAR - 1);
            let width = width.min(BAR - start);
            let mut bar = String::with_capacity(BAR);
            bar.push_str(&".".repeat(start));
            bar.push_str(&"█".repeat(width));
            bar.push_str(&".".repeat(BAR - start - width));
            let _ = writeln!(
                out,
                "  {:<14} {:<9} [{bar}] +{:>9.3}ms {:>9.3}ms",
                e.stage,
                e.outcome,
                (e.at - t0) * 1e3,
                e.dur * 1e3
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, stage: &str, outcome: &str, at: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            trace,
            request: trace * 10,
            api: 0,
            shard: 0,
            stage: stage.into(),
            outcome: outcome.into(),
            at,
            dur,
        }
    }

    #[test]
    fn log_is_bounded_and_filters_by_id() {
        let log = TraceLog::with_capacity(4);
        for i in 0..10u64 {
            log.push(ev(i % 2, "front_door", "admitted", i as f64, 0.0));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.evicted(), 6);
        let zeros = log.by_id(0);
        assert!(zeros.iter().all(|e| e.trace == 0));
        // The freshest events survive, not the oldest.
        assert!(log.snapshot().iter().all(|e| e.at >= 6.0));
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let log = TraceLog::new();
        log.push(ev(7, "token_bucket", "admitted", 0.5, 0.0));
        log.push(ev(9, "worker", "served", 0.6, 0.002));
        let all = log.to_jsonl(None);
        assert_eq!(all.lines().count(), 2);
        for line in all.lines() {
            let v: serde::Value = serde_json::from_str(line).expect("valid json");
            assert!(v.get("trace").is_some() && v.get("stage").is_some());
        }
        let only7 = log.to_jsonl(Some(7));
        assert_eq!(only7.lines().count(), 1);
        assert!(only7.contains("\"trace\":7"));
    }

    #[test]
    fn waterfall_orders_stages_and_scales_bars() {
        let events = vec![
            ev(3, "front_door", "admitted", 0.000, 0.0),
            ev(3, "token_bucket", "admitted", 0.0001, 0.0),
            ev(3, "worker", "served", 0.001, 0.004),
            ev(3, "reply", "sent", 0.005, 0.0),
        ];
        let text = render_waterfall(&events);
        assert!(text.contains("trace 3"), "{text}");
        let fd = text.find("front_door").expect("front door row");
        let wk = text.find("worker").expect("worker row");
        let rp = text.find("reply").expect("reply row");
        assert!(fd < wk && wk < rp, "rows in causal order:\n{text}");
        assert!(text.contains("█"), "bars render");
    }

    #[test]
    fn empty_waterfall_says_so() {
        assert_eq!(render_waterfall(&[]), "no trace events\n");
    }
}
