//! The controller decision journal.
//!
//! Every verdict the control system reaches — detector transitions,
//! re-clusterings, per-target rate actions (with the state that produced
//! them and a human-readable reason), §4.1 increase blocks, limit
//! releases, fallback strikes, watchdog transitions, and per-window plane
//! veto / fault-telemetry aggregates — is appended here. The journal is
//! bounded (overflow is counted, never reallocated past the cap) and all
//! writes happen on the control thread, so for a fixed (scenario, seed)
//! the JSONL rendering is byte-identical at any worker count.

use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One journal record. Internally tagged; `t` is sim/wall seconds since
/// run start.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JournalEntry {
    /// A service crossed the overload detector's hysteresis band.
    Overload {
        t: f64,
        service: u32,
        name: String,
        utilization: f64,
        /// `true` = entered the overloaded set, `false` = cleared.
        entered: bool,
    },
    /// The API clustering changed (clusters form from scratch each tick;
    /// recorded only when the resulting partition differs).
    Recluster {
        t: f64,
        clusters: u32,
        /// `api,api|api` groups in cluster order.
        assignment: String,
    },
    /// One per-target rate decision (Algorithm 1 step).
    RateAction {
        t: f64,
        target: u32,
        target_name: String,
        /// APIs the step was applied to, comma-separated indices.
        apis: String,
        action: f64,
        goodput_ratio: f64,
        latency_ratio: f64,
        total_limit: f64,
        reason: String,
    },
    /// A candidate was excluded from a rate increase (§4.1 path rule).
    RateBlocked { t: f64, api: u32, reason: String },
    /// A long-standing headroom release removed an API's limit.
    Release { t: f64, api: u32, reason: String },
    /// The safe rate controller struck its primary.
    FallbackStrike {
        t: f64,
        strikes: u32,
        max_strikes: u32,
        tripped: bool,
    },
    /// Harness watchdog transition (engage / decay / reentry).
    Watchdog { t: f64, event: String },
    /// Per-window request-plane veto counts (only non-zero windows).
    PlaneVetoes {
        t: f64,
        resilience: u64,
        admission: u64,
        faults: u64,
    },
    /// Per-window degraded-telemetry counts from the fault plane.
    FaultTelemetry {
        t: f64,
        dropouts: u64,
        noisy: u64,
        stale: u64,
    },
    /// A gateway shard changed membership state in the sharded control
    /// plane (strike-out after missed reports, ramped re-entry, ramp
    /// completion).
    ShardMembership {
        t: f64,
        shard: u32,
        event: String,
        /// Shards currently eligible for quota (live + re-entering).
        live: u32,
        total: u32,
    },
    /// Per-shard observations were merged into one controller view;
    /// recorded only when the reporting set changes, not every tick.
    ShardAggregate {
        t: f64,
        reporting: u32,
        total: u32,
        goodput: f64,
    },
    /// A global per-API limit was split into per-shard quotas (recorded
    /// on redistribution and during re-entry ramps, not steady state).
    ShardSplit {
        t: f64,
        api: u32,
        /// Global limit being split; `-1` encodes "unlimited".
        global: f64,
        /// Per-shard quotas, `|`-separated in shard order (`-` = dead).
        quotas: String,
        reason: String,
    },
    /// A shard-local degradation transition: holding last-good limits
    /// past the push TTL, engaging the local MIMD fallback, or
    /// resyncing with the controller.
    ShardFallback {
        t: f64,
        shard: u32,
        phase: String,
        detail: String,
    },
    /// Per-window front-door admission aggregates: coalescing verdicts,
    /// priority sheds, and entry-limit rejections (only windows in
    /// which any counter moved).
    AdmissionWindow {
        t: f64,
        cache_hits: u64,
        follower_hits: u64,
        misses: u64,
        shed: u64,
        rate_limited: u64,
    },
    /// The front-door priority gate moved its admission threshold
    /// (every move is journaled, with the window that drove it).
    PriorityThreshold {
        t: f64,
        from: u32,
        to: u32,
        admitted: u64,
        shed: u64,
        reason: String,
    },
    /// An API crossed an SLO burn-rate severity boundary (`ok` ⇄
    /// `ticket` ⇄ `page`); recorded by the harness/live tick on every
    /// transition of `obs::slo::SloMonitor` (DESIGN.md §18).
    SloBurn {
        t: f64,
        api: u32,
        api_name: String,
        from: String,
        to: String,
        /// Burn rate over the fast pair's short window at transition.
        fast_burn: f64,
        /// Burn rate over the slow pair's short window at transition.
        slow_burn: f64,
        /// Run-scope error budget remaining (1 = untouched, <0 = blown).
        budget_remaining: f64,
    },
}

impl JournalEntry {
    /// The entry's timestamp (seconds since run start).
    pub fn at(&self) -> f64 {
        match self {
            JournalEntry::Overload { t, .. }
            | JournalEntry::Recluster { t, .. }
            | JournalEntry::RateAction { t, .. }
            | JournalEntry::RateBlocked { t, .. }
            | JournalEntry::Release { t, .. }
            | JournalEntry::FallbackStrike { t, .. }
            | JournalEntry::Watchdog { t, .. }
            | JournalEntry::PlaneVetoes { t, .. }
            | JournalEntry::FaultTelemetry { t, .. }
            | JournalEntry::ShardMembership { t, .. }
            | JournalEntry::ShardAggregate { t, .. }
            | JournalEntry::ShardSplit { t, .. }
            | JournalEntry::ShardFallback { t, .. }
            | JournalEntry::AdmissionWindow { t, .. }
            | JournalEntry::PriorityThreshold { t, .. }
            | JournalEntry::SloBurn { t, .. } => *t,
        }
    }
}

/// Default bound on retained entries.
const DEFAULT_CAP: usize = 8192;

struct State {
    entries: Vec<JournalEntry>,
    dropped: u64,
    cap: usize,
}

/// Bounded, shareable decision journal. Cheap to clone behind an [`Arc`];
/// recording takes one short mutex on the control thread (never on the
/// per-request hot path).
pub struct Journal {
    state: Mutex<State>,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// Journal retaining at most `cap` entries; further records are
    /// counted in [`Journal::dropped`] instead of growing memory.
    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            state: Mutex::new(State {
                entries: Vec::new(),
                dropped: 0,
                cap: cap.max(1),
            }),
        }
    }

    /// Convenience: a fresh shared journal.
    pub fn shared() -> Arc<Journal> {
        Arc::new(Journal::new())
    }

    pub fn record(&self, entry: JournalEntry) {
        let mut st = self.state.lock().expect("journal lock");
        if st.entries.len() >= st.cap {
            st.dropped += 1;
        } else {
            st.entries.push(entry);
        }
    }

    pub fn len(&self) -> usize {
        self.state.lock().expect("journal lock").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries rejected by the bound.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("journal lock").dropped
    }

    /// Copy of the recorded entries, in append order.
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.state.lock().expect("journal lock").entries.clone()
    }
}

/// Render entries as JSONL (one deterministic JSON object per line,
/// field order fixed by declaration order).
pub fn to_jsonl(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&serde_json::to_string(e).expect("journal entries serialize"));
        out.push('\n');
    }
    out
}

/// FNV-1a over a byte string — the fingerprint `tests/determinism.rs`
/// pins across worker counts.
pub fn journal_fingerprint(jsonl: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in jsonl.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: f64) -> JournalEntry {
        JournalEntry::Overload {
            t,
            service: 3,
            name: "productcatalogservice".into(),
            utilization: 0.97,
            entered: true,
        }
    }

    #[test]
    fn entries_roundtrip_through_jsonl() {
        let entries = vec![
            entry(1.0),
            JournalEntry::RateAction {
                t: 2.0,
                target: 3,
                target_name: "svc".into(),
                apis: "0,2".into(),
                action: -0.05,
                goodput_ratio: 0.41,
                latency_ratio: 2.1,
                total_limit: 300.0,
                reason: "mimd action -0.050".into(),
            },
            JournalEntry::FallbackStrike {
                t: 3.0,
                strikes: 2,
                max_strikes: 3,
                tripped: false,
            },
            JournalEntry::ShardMembership {
                t: 4.0,
                shard: 1,
                event: "struck out after 3 missed reports".into(),
                live: 2,
                total: 3,
            },
            JournalEntry::ShardSplit {
                t: 5.0,
                api: 0,
                global: 120.0,
                quotas: "60.0|-|60.0".into(),
                reason: "redistribution: live set changed".into(),
            },
            JournalEntry::ShardFallback {
                t: 6.0,
                shard: 2,
                phase: "fallback".into(),
                detail: "ttl expired; local mimd engaged".into(),
            },
            JournalEntry::AdmissionWindow {
                t: 7.0,
                cache_hits: 120,
                follower_hits: 14,
                misses: 30,
                shed: 9,
                rate_limited: 4,
            },
            JournalEntry::PriorityThreshold {
                t: 8.0,
                from: 1024,
                to: 970,
                admitted: 5000,
                shed: 250,
                reason: "overload".into(),
            },
        ];
        let jsonl = to_jsonl(&entries);
        assert_eq!(jsonl.lines().count(), 8);
        let back: Vec<JournalEntry> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).expect("parse line"))
            .collect();
        assert_eq!(back, entries);
        assert!(jsonl.contains("\"kind\":\"fallback_strike\""), "{jsonl}");
    }

    #[test]
    fn journal_is_bounded_and_counts_drops() {
        let j = Journal::with_capacity(4);
        for i in 0..10 {
            j.record(entry(i as f64));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        // The retained prefix is the oldest entries, in order.
        let snap = j.snapshot();
        assert_eq!(snap[0].at(), 0.0);
        assert_eq!(snap[3].at(), 3.0);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = to_jsonl(&[entry(1.0)]);
        let b = to_jsonl(&[entry(1.0)]);
        let c = to_jsonl(&[entry(2.0)]);
        assert_eq!(journal_fingerprint(&a), journal_fingerprint(&b));
        assert_ne!(journal_fingerprint(&a), journal_fingerprint(&c));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(journal_fingerprint(""), 0xcbf2_9ce4_8422_2325);
    }
}

#[cfg(test)]
mod slo_entry_tests {
    use super::*;

    fn burn(t: f64, to: &str) -> JournalEntry {
        JournalEntry::SloBurn {
            t,
            api: 1,
            api_name: "checkout".into(),
            from: if to == "page" { "ok" } else { "page" }.into(),
            to: to.into(),
            fast_burn: 22.5,
            slow_burn: 8.1,
            budget_remaining: 0.4,
        }
    }

    #[test]
    fn slo_burn_roundtrips_and_tags_snake_case() {
        let e = burn(12.0, "page");
        let s = serde_json::to_string(&e).expect("serialize");
        assert!(s.contains("\"kind\":\"slo_burn\""), "{s}");
        let back: JournalEntry = serde_json::from_str(&s).expect("decode");
        assert_eq!(back, e);
        assert_eq!(back.at(), 12.0);
    }

    /// A pathological alert-flapping run (severity toggling every tick,
    /// far past the cap) must neither grow the journal past its bound
    /// nor corrupt the retained prefix.
    #[test]
    fn alert_flapping_stays_bounded() {
        let j = Journal::with_capacity(64);
        for i in 0..10_000u64 {
            let to = if i % 2 == 0 { "page" } else { "ok" };
            j.record(burn(i as f64, to));
        }
        assert_eq!(j.len(), 64);
        assert_eq!(j.dropped(), 10_000 - 64);
        let snap = j.snapshot();
        assert_eq!(snap[0].at(), 0.0);
        assert_eq!(snap[63].at(), 63.0);
        // The bounded snapshot still renders and fingerprints stably.
        let jsonl = to_jsonl(&snap);
        assert_eq!(journal_fingerprint(&jsonl), journal_fingerprint(&jsonl));
    }
}

#[cfg(test)]
mod admission_entry_tests {
    use super::*;

    /// `topfull explain` decodes run-artifact journals through the
    /// same derived `from_value`; both admission variants must survive
    /// the JSON round trip.
    #[test]
    fn admission_variants_roundtrip() {
        let entries = [
            JournalEntry::PriorityThreshold {
                t: 2.0,
                from: 3,
                to: 4,
                admitted: 10,
                shed: 2,
                reason: "overload".into(),
            },
            JournalEntry::AdmissionWindow {
                t: 3.0,
                cache_hits: 5,
                follower_hits: 1,
                misses: 7,
                shed: 0,
                rate_limited: 2,
            },
        ];
        for e in entries {
            let s = serde_json::to_string(&e).expect("serialize");
            let back: JournalEntry = serde_json::from_str(&s).expect("decode");
            assert_eq!(back, e);
        }
    }
}
