//! Metrics registry: typed instrument handles plus Prometheus rendering.
//!
//! Handles are created *detached* (`Counter::unregistered()`) so hot-path
//! owners (the resilience plane, the fault plane, the live gateway) can
//! construct their counters at build time and a registry can adopt them
//! later — construction never depends on a registry existing, which keeps
//! unit tests of those planes free of telemetry scaffolding.

use simnet::{LatencyHistogram, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A live counter not (yet) attached to any registry.
    pub fn unregistered() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (f64 bits in an atomic). Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A live gauge not (yet) attached to any registry.
    pub fn unregistered() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `d` (may be negative). Lock-free CAS loop; contention on a
    /// gauge is rare (queue-depth style signals).
    pub fn add(&self, d: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + d).to_bits())
            });
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared log-linear latency histogram (reuses [`LatencyHistogram`]'s
/// geometric buckets, default 5% relative error). Recording takes a
/// short uncontended mutex — no allocation beyond the occasional bucket
/// vector growth.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<Mutex<HistCell>>);

/// Most recent exemplars retained per histogram; enough that every
/// occupied latency bucket usually keeps a representative.
const EXEMPLAR_CAP: usize = 16;

#[derive(Debug)]
struct HistCell {
    hist: LatencyHistogram,
    /// Exact sum of all recorded durations, for Prometheus `_sum`.
    sum_nanos: u128,
    /// Recent `(value_secs, trace_id)` exemplars, newest last.
    exemplars: Vec<(f64, u64)>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(Mutex::new(HistCell {
            hist: LatencyHistogram::new(),
            sum_nanos: 0,
            exemplars: Vec::new(),
        })))
    }
}

impl Histogram {
    /// A live histogram not (yet) attached to any registry.
    pub fn unregistered() -> Self {
        Histogram::default()
    }

    pub fn record(&self, d: SimDuration) {
        let mut cell = self.0.lock().expect("histogram lock");
        cell.hist.record(d);
        cell.sum_nanos += u128::from(d.as_nanos());
    }

    /// Record a value observed while serving trace `trace`: the value
    /// lands in the histogram normally and, when a trace id is present,
    /// is kept as an exemplar so `/metrics` can link the latency bucket
    /// back to a concrete request (`… # {trace_id="…"} value`).
    pub fn record_with_exemplar(&self, d: SimDuration, trace: Option<u64>) {
        let mut cell = self.0.lock().expect("histogram lock");
        cell.hist.record(d);
        cell.sum_nanos += u128::from(d.as_nanos());
        if let Some(id) = trace {
            if cell.exemplars.len() >= EXEMPLAR_CAP {
                cell.exemplars.remove(0);
            }
            cell.exemplars.push((d.as_nanos() as f64 / 1e9, id));
        }
    }

    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram lock").hist.count()
    }

    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        self.0.lock().expect("histogram lock").hist.quantile(q)
    }

    /// `(cumulative le-bucket list in seconds, count, sum in seconds,
    /// recent exemplars)`.
    #[allow(clippy::type_complexity)]
    fn snapshot(&self) -> (Vec<(f64, u64)>, u64, f64, Vec<(f64, u64)>) {
        let cell = self.0.lock().expect("histogram lock");
        let mut cum = 0u64;
        let buckets = cell
            .hist
            .buckets()
            .map(|(edge_ns, c)| {
                cum += c;
                (edge_ns / 1e9, cum)
            })
            .collect();
        (
            buckets,
            cell.hist.count(),
            cell.sum_nanos as f64 / 1e9,
            cell.exemplars.clone(),
        )
    }
}

/// Newest exemplar whose value falls in the bucket `(lo, hi]`, rendered
/// as an OpenMetrics exemplar suffix (empty when none match).
fn exemplar_suffix(exemplars: &[(f64, u64)], lo: f64, hi: f64) -> String {
    exemplars
        .iter()
        .rev()
        .find(|(v, _)| *v > lo && *v <= hi)
        .map(|(v, id)| format!(" # {{trace_id=\"{id}\"}} {}", fmt_f64(*v)))
        .unwrap_or_default()
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Instrument {
    family: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A set of registered instruments, renderable as Prometheus text.
///
/// Registration order is preserved (instruments of one family are
/// grouped under a single `# TYPE` header at the family's first
/// appearance), so exposition output is deterministic.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<Vec<Instrument>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Create and register a counter in one step.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::unregistered();
        self.register_counter(family, labels, &c);
        c
    }

    /// Adopt an existing counter handle. Re-registering the same
    /// `(family, labels)` pair replaces the prior handle (idempotent for
    /// the common "rebuild and re-register" path).
    pub fn register_counter(&self, family: &str, labels: &[(&str, &str)], c: &Counter) {
        self.register(family, labels, Handle::Counter(c.clone()));
    }

    /// Create and register a gauge in one step.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)]) -> Gauge {
        let g = Gauge::unregistered();
        self.register_gauge(family, labels, &g);
        g
    }

    /// Adopt an existing gauge handle.
    pub fn register_gauge(&self, family: &str, labels: &[(&str, &str)], g: &Gauge) {
        self.register(family, labels, Handle::Gauge(g.clone()));
    }

    /// Create and register a histogram in one step.
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)]) -> Histogram {
        let h = Histogram::unregistered();
        self.register_histogram(family, labels, &h);
        h
    }

    /// Adopt an existing histogram handle.
    pub fn register_histogram(&self, family: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.register(family, labels, Handle::Histogram(h.clone()));
    }

    fn register(&self, family: &str, labels: &[(&str, &str)], handle: Handle) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut instruments = self.instruments.lock().expect("registry lock");
        if let Some(slot) = instruments
            .iter_mut()
            .find(|i| i.family == family && i.labels == labels)
        {
            slot.handle = handle;
        } else {
            instruments.push(Instrument {
                family: family.to_string(),
                labels,
                handle,
            });
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.instruments.lock().expect("registry lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every instrument in Prometheus text exposition format
    /// 0.0.4: `# TYPE` per family, `family{labels} value` samples, and
    /// cumulative `_bucket{le=…}` / `_count` / `_sum` for histograms
    /// (edges in seconds).
    pub fn render_prometheus(&self) -> String {
        let instruments = self.instruments.lock().expect("registry lock");
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for inst in instruments.iter() {
            if !typed.contains(&inst.family.as_str()) {
                typed.push(&inst.family);
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    inst.family,
                    inst.handle.type_name()
                ));
            }
            match &inst.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        inst.family,
                        label_block(&inst.labels, None),
                        c.get()
                    ));
                }
                Handle::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        inst.family,
                        label_block(&inst.labels, None),
                        fmt_f64(g.get())
                    ));
                }
                Handle::Histogram(h) => {
                    let (buckets, count, sum, exemplars) = h.snapshot();
                    // The first bucket covers (-inf, le0] — a
                    // zero-valued record (e.g. a coalesce cache hit's
                    // zero latency) counts there, so its exemplar must
                    // attach there too.
                    let mut lo = f64::NEG_INFINITY;
                    for (le, cum) in &buckets {
                        out.push_str(&format!(
                            "{}_bucket{} {}{}\n",
                            inst.family,
                            label_block(&inst.labels, Some(&fmt_f64(*le))),
                            cum,
                            exemplar_suffix(&exemplars, lo, *le)
                        ));
                        lo = *le;
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}{}\n",
                        inst.family,
                        label_block(&inst.labels, Some("+Inf")),
                        count,
                        exemplar_suffix(&exemplars, lo, f64::INFINITY)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        inst.family,
                        label_block(&inst.labels, None),
                        count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        inst.family,
                        label_block(&inst.labels, None),
                        fmt_f64(sum)
                    ));
                }
            }
        }
        out
    }
}

/// `{k="v",…}` including the optional `le` pair; empty string when bare.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus sample values: finite shortest-roundtrip floats; non-finite
/// values render as their exposition spellings.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let c = Counter::unregistered();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::unregistered();
        let g2 = g.clone();
        g.set(2.5);
        g2.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = Registry::new();
        let c = r.counter("topfull_requests_total", &[("api", "ping")]);
        c.add(7);
        let g = r.gauge("topfull_queue_depth", &[("service", "svc")]);
        g.set(3.0);
        let h = r.histogram("topfull_latency_seconds", &[("api", "ping")]);
        h.record(SimDuration::from_millis(5));
        h.record(SimDuration::from_millis(50));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE topfull_requests_total counter"));
        assert!(text.contains("topfull_requests_total{api=\"ping\"} 7"));
        assert!(text.contains("# TYPE topfull_queue_depth gauge"));
        assert!(text.contains("topfull_queue_depth{service=\"svc\"} 3"));
        assert!(text.contains("# TYPE topfull_latency_seconds histogram"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("topfull_latency_seconds_count{api=\"ping\"} 2"));
        assert!(text.contains("topfull_latency_seconds_sum{api=\"ping\"} 0.055"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        for ms in [1u64, 1, 100] {
            h.record(SimDuration::from_millis(ms));
        }
        let text = r.render_prometheus();
        // Two occupied buckets → cumulative counts 2 then 3, then +Inf 3.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .collect();
        assert_eq!(bucket_lines.len(), 3);
        assert!(bucket_lines[0].ends_with(" 2"), "{}", bucket_lines[0]);
        assert!(bucket_lines[1].ends_with(" 3"), "{}", bucket_lines[1]);
        assert!(bucket_lines[2].contains("le=\"+Inf\"} 3"));
    }

    #[test]
    fn reregistration_replaces_the_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("k", "v")]);
        a.add(10);
        let b = Counter::unregistered();
        b.add(2);
        r.register_counter("x_total", &[("k", "v")], &b);
        assert_eq!(r.len(), 1);
        assert!(r.render_prometheus().contains("x_total{k=\"v\"} 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c_total", &[("name", "a\"b\\c")]);
        let text = r.render_prometheus();
        assert!(text.contains("name=\"a\\\"b\\\\c\""), "{text}");
    }

    /// Exposition-format 0.0.4 escaping, case by case: `\` → `\\`,
    /// `"` → `\"`, newline → `\n`, and combinations thereof. Every
    /// rendered sample line must stay a *single* line.
    #[test]
    fn each_escape_case_renders_valid_single_line_text() {
        let cases: [(&str, &str); 5] = [
            ("quo\"te", "quo\\\"te"),
            ("back\\slash", "back\\\\slash"),
            ("new\nline", "new\\nline"),
            ("\\\"\n", "\\\\\\\"\\n"),
            ("plain", "plain"),
        ];
        for (raw, escaped) in cases {
            let r = Registry::new();
            r.counter("esc_total", &[("v", raw)]);
            let text = r.render_prometheus();
            let sample = text
                .lines()
                .find(|l| l.starts_with("esc_total"))
                .expect("sample line rendered");
            assert_eq!(
                sample,
                format!("esc_total{{v=\"{escaped}\"}} 0"),
                "raw label {raw:?}"
            );
            // A raw newline inside a label would split the sample line;
            // the full exposition must hold exactly TYPE + sample.
            assert_eq!(text.lines().count(), 2, "raw label {raw:?}: {text:?}");
        }
    }

    #[test]
    fn exemplars_attach_to_the_matching_bucket() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", &[("api", "ping")]);
        h.record_with_exemplar(SimDuration::from_millis(5), Some(42));
        h.record_with_exemplar(SimDuration::from_millis(500), Some(43));
        h.record_with_exemplar(SimDuration::from_millis(6), None);
        let text = r.render_prometheus();
        let with_42: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("# {trace_id=\"42\"}"))
            .collect();
        assert_eq!(with_42.len(), 1, "exactly one bucket carries 42: {text}");
        assert!(with_42[0].starts_with("lat_seconds_bucket{api=\"ping\",le="));
        assert!(with_42[0].contains("# {trace_id=\"42\"} 0.005"), "{text}");
        assert!(text.contains("# {trace_id=\"43\"} 0.5"), "{text}");
        // The untraced record produced no exemplar of its own.
        assert_eq!(text.matches("# {trace_id=").count(), 2, "{text}");
        // _count/_sum lines never carry exemplars.
        for l in text.lines() {
            if l.starts_with("lat_seconds_count") || l.starts_with("lat_seconds_sum") {
                assert!(!l.contains("trace_id"), "{l}");
            }
        }
    }

    #[test]
    fn zero_valued_exemplar_attaches_to_the_first_bucket() {
        // A zero-duration record (a coalesce cache hit's latency) counts
        // in the first bucket, so its exemplar must render there — the
        // first bucket's range is (-inf, le0], not (0, le0].
        let r = Registry::new();
        let h = r.histogram("zero_seconds", &[]);
        h.record_with_exemplar(SimDuration::ZERO, Some(7));
        let text = r.render_prometheus();
        let line = text
            .lines()
            .find(|l| l.contains("trace_id=\"7\""))
            .unwrap_or_else(|| panic!("zero exemplar dropped: {text}"));
        assert!(line.starts_with("zero_seconds_bucket{le="), "{line}");
    }

    #[test]
    fn exemplar_ring_keeps_the_newest() {
        let h = Histogram::unregistered();
        for i in 0..100u64 {
            h.record_with_exemplar(SimDuration::from_millis(10), Some(i));
        }
        let r = Registry::new();
        r.register_histogram("x_seconds", &[], &h);
        let text = r.render_prometheus();
        // The bucket's exemplar is the newest surviving trace id.
        assert!(text.contains("# {trace_id=\"99\"}"), "{text}");
        assert!(!text.contains("trace_id=\"0\""), "{text}");
    }
}
