//! The unified telemetry plane shared by the simulated engine and the
//! live serving plane.
//!
//! TopFull's premise is that overload control is driven by *observed*
//! signals (execution paths from traces, goodput/latency state, §4.1 and
//! §4.3) — so the control system itself must be observable. This crate
//! provides the two halves of that:
//!
//! * [`registry`] — a metrics registry of typed instrument handles
//!   ([`Counter`], [`Gauge`], [`Histogram`]). Handles are plain
//!   `Arc`-backed cells: incrementing is one relaxed atomic op, with no
//!   allocation and no registry lock on the hot path. The registry
//!   renders the whole instrument set in Prometheus text exposition
//!   format 0.0.4 for the live gateway's `GET /metrics`.
//! * [`journal`] — the controller decision journal: a bounded,
//!   append-only log of detector verdicts, re-clustering events,
//!   per-API rate actions (with state inputs and a human-readable
//!   reason), fallback strikes, watchdog transitions and plane-veto
//!   window aggregates. Entries serialize to deterministic JSONL and are
//!   embedded in run artifacts so runs can be *explained*, not just
//!   scored.
//!
//! Naming scheme (see DESIGN.md §13): every family is prefixed
//! `topfull_`, counters end in `_total`, base units are spelled out
//! (`_seconds`, `_nanoseconds`), and per-API/per-service instruments
//! carry `api="…"` / `service="…"` labels.

pub mod journal;
pub mod registry;
pub mod slo;
pub mod trace;

pub use journal::{journal_fingerprint, to_jsonl, Journal, JournalEntry};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use slo::{ApiSloSample, SloBurnSignal, SloConfig, SloMonitor, SloSeverity, SloTick};
pub use trace::{render_waterfall, TraceCtx, TraceEvent, TraceLog};
