//! Per-API error-budget accounting and multi-window burn-rate alerting.
//!
//! TopFull's controller reacts to *instantaneous* SLO state (p99 vs
//! target, goodput ratio per window). This module adds the Google-SRE
//! complement: an **error budget** per API (the tolerated fraction of
//! bad requests implied by the objective) and **burn rates** — how many
//! times faster than "exactly exhausting the budget" the API is
//! currently spending it — computed over two window *pairs*:
//!
//! * the **fast pair** (default 5 s / 1 m) catches sharp burns; paging
//!   only when *both* windows exceed the page threshold keeps one noisy
//!   tick from paging while still firing seconds into a real incident;
//! * the **slow pair** (default 30 s / 6 m) catches smoulders that
//!   would exhaust the budget over hours; it raises a ticket.
//!
//! The monitor is fed one [`ApiSloSample`] batch per control tick (sim
//! ticks or wall clock — it only sees `(t, good, bad)`), keeps a
//! time-pruned ring per API, and reports a [`SloBurnSignal`] per API
//! plus a [`SloTransition`] whenever an API's severity changes. Callers
//! journal transitions as `JournalEntry::SloBurn` and export the
//! signals as `/metrics` gauges; the harness also attaches them to
//! `ClusterObservation` so controller arms and fuzz objectives can
//! consume them (DESIGN.md §18).
//!
//! Determinism: the monitor is a pure fold over its inputs — no clocks,
//! no randomness — so for a fixed run it transitions identically at any
//! worker count.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// SLO objective + burn-rate alerting policy for every API.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Fraction of requests that must be good (in-SLO successes), e.g.
    /// `0.999` tolerates 0.1% bad before the budget is exhausted.
    pub objective: f64,
    /// Fast `(short, long)` window pair, seconds. Page severity.
    pub fast_windows: (f64, f64),
    /// Slow `(short, long)` window pair, seconds. Ticket severity.
    pub slow_windows: (f64, f64),
    /// Burn-rate threshold for the fast pair (Google SRE: 14.4 spends
    /// ~2% of a 30-day budget per hour).
    pub page_burn: f64,
    /// Burn-rate threshold for the slow pair.
    pub ticket_burn: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objective: 0.999,
            fast_windows: (5.0, 60.0),
            slow_windows: (30.0, 360.0),
            page_burn: 14.4,
            ticket_burn: 6.0,
        }
    }
}

impl SloConfig {
    /// The error budget: tolerated bad fraction.
    pub fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// Alert severity, worst first when ordering matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SloSeverity {
    /// Burning within budget.
    #[default]
    Ok,
    /// The slow pair exceeds the ticket threshold: a smoulder.
    Ticket,
    /// The fast pair exceeds the page threshold: an active incident.
    Page,
}

impl SloSeverity {
    pub fn as_str(self) -> &'static str {
        match self {
            SloSeverity::Ok => "ok",
            SloSeverity::Ticket => "ticket",
            SloSeverity::Page => "page",
        }
    }
}

/// One API's contribution to a control window: counts, not rates.
#[derive(Clone, Copy, Debug)]
pub struct ApiSloSample {
    /// Requests that completed within the SLO.
    pub good: f64,
    /// Requests that violated the SLO or failed outright. Rejected
    /// requests are *neither*: shedding spends no error budget, which
    /// is exactly why an overload controller protects the budget.
    pub bad: f64,
}

/// The read-only burn-rate signal exported per API each tick.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SloBurnSignal {
    /// API index (`ApiId` ordinal).
    pub api: u32,
    /// Burn rate over the fast pair's *short* window.
    pub fast_burn: f64,
    /// Burn rate over the fast pair's *long* window.
    pub fast_burn_long: f64,
    /// Burn rate over the slow pair's *short* window.
    pub slow_burn: f64,
    /// Burn rate over the slow pair's *long* window.
    pub slow_burn_long: f64,
    /// Fraction of the run's error budget still unspent (can go
    /// negative once the objective is blown for the run so far).
    pub budget_remaining: f64,
    pub severity: SloSeverity,
}

/// An API crossed a severity boundary this tick.
#[derive(Clone, Debug)]
pub struct SloTransition {
    pub api: u32,
    pub from: SloSeverity,
    pub to: SloSeverity,
    pub fast_burn: f64,
    pub slow_burn: f64,
    pub budget_remaining: f64,
}

/// What one `observe` call produced: the per-API signals (always, one
/// per API) and any severity transitions (usually none).
#[derive(Clone, Debug, Default)]
pub struct SloTick {
    pub signals: Vec<SloBurnSignal>,
    pub transitions: Vec<SloTransition>,
}

struct ApiState {
    /// `(t, good, bad)` per observed tick, pruned to the longest window.
    ring: VecDeque<(f64, f64, f64)>,
    total_good: f64,
    total_bad: f64,
    severity: SloSeverity,
}

/// The per-API error-budget engine. Feed it once per control tick.
pub struct SloMonitor {
    cfg: SloConfig,
    apis: Vec<ApiState>,
}

impl SloMonitor {
    pub fn new(cfg: SloConfig) -> Self {
        SloMonitor {
            cfg,
            apis: Vec::new(),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    fn ensure_sized(&mut self, n: usize) {
        while self.apis.len() < n {
            self.apis.push(ApiState {
                ring: VecDeque::new(),
                total_good: 0.0,
                total_bad: 0.0,
                severity: SloSeverity::Ok,
            });
        }
    }

    /// Error ratio over the trailing `window` seconds ending at `now`,
    /// divided by the budget — the burn rate. 0 when the window is
    /// empty.
    fn burn(&self, api: usize, now: f64, window: f64) -> f64 {
        let from = now - window;
        let (mut good, mut bad) = (0.0, 0.0);
        for &(t, g, b) in &self.apis[api].ring {
            if t > from {
                good += g;
                bad += b;
            }
        }
        let total = good + bad;
        if total <= 0.0 {
            return 0.0;
        }
        (bad / total) / self.cfg.budget()
    }

    /// Ingest one control tick's per-API `(good, bad)` counts observed
    /// at time `t` (seconds since run start).
    pub fn observe(&mut self, t: f64, samples: &[ApiSloSample]) -> SloTick {
        self.ensure_sized(samples.len());
        let longest = self
            .cfg
            .fast_windows
            .1
            .max(self.cfg.slow_windows.1)
            .max(1.0);
        let mut out = SloTick::default();
        for (i, s) in samples.iter().enumerate() {
            {
                let st = &mut self.apis[i];
                st.ring.push_back((t, s.good.max(0.0), s.bad.max(0.0)));
                while st.ring.front().is_some_and(|&(t0, _, _)| t0 <= t - longest) {
                    st.ring.pop_front();
                }
                st.total_good += s.good.max(0.0);
                st.total_bad += s.bad.max(0.0);
            }
            let fast = self.burn(i, t, self.cfg.fast_windows.0);
            let fast_long = self.burn(i, t, self.cfg.fast_windows.1);
            let slow = self.burn(i, t, self.cfg.slow_windows.0);
            let slow_long = self.burn(i, t, self.cfg.slow_windows.1);
            let severity = if fast > self.cfg.page_burn && fast_long > self.cfg.page_burn {
                SloSeverity::Page
            } else if slow > self.cfg.ticket_burn && slow_long > self.cfg.ticket_burn {
                SloSeverity::Ticket
            } else {
                SloSeverity::Ok
            };
            let st = &mut self.apis[i];
            let total = st.total_good + st.total_bad;
            let budget_remaining = if total > 0.0 {
                1.0 - (st.total_bad / total) / self.cfg.budget()
            } else {
                1.0
            };
            if severity != st.severity {
                out.transitions.push(SloTransition {
                    api: i as u32,
                    from: st.severity,
                    to: severity,
                    fast_burn: fast,
                    slow_burn: slow,
                    budget_remaining,
                });
                st.severity = severity;
            }
            out.signals.push(SloBurnSignal {
                api: i as u32,
                fast_burn: fast,
                fast_burn_long: fast_long,
                slow_burn: slow,
                slow_burn_long: slow_long,
                budget_remaining,
                severity,
            });
        }
        out
    }

    /// Recompute one API's current signal from the retained window ring
    /// without ingesting a sample — a read-only probe for experiment
    /// instrumentation and dashboards. `None` until the API has been
    /// observed at least once.
    pub fn signal(&self, api: usize, now: f64) -> Option<SloBurnSignal> {
        let st = self.apis.get(api)?;
        let total = st.total_good + st.total_bad;
        let budget_remaining = if total > 0.0 {
            1.0 - (st.total_bad / total) / self.cfg.budget()
        } else {
            1.0
        };
        Some(SloBurnSignal {
            api: api as u32,
            fast_burn: self.burn(api, now, self.cfg.fast_windows.0),
            fast_burn_long: self.burn(api, now, self.cfg.fast_windows.1),
            slow_burn: self.burn(api, now, self.cfg.slow_windows.0),
            slow_burn_long: self.burn(api, now, self.cfg.slow_windows.1),
            budget_remaining,
            severity: st.severity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig::default()
    }

    /// Feed `ratio` bad for `secs` ticks at 1 Hz starting at `t0`.
    fn feed(m: &mut SloMonitor, t0: f64, secs: u64, rate: f64, ratio: f64) -> SloTick {
        let mut last = SloTick::default();
        for i in 0..secs {
            last = m.observe(
                t0 + i as f64 + 1.0,
                &[ApiSloSample {
                    good: rate * (1.0 - ratio),
                    bad: rate * ratio,
                }],
            );
        }
        last
    }

    #[test]
    fn clean_traffic_never_alerts_and_keeps_budget() {
        let mut m = SloMonitor::new(cfg());
        let tick = feed(&mut m, 0.0, 120, 100.0, 0.0);
        let s = &tick.signals[0];
        assert_eq!(s.severity, SloSeverity::Ok);
        assert_eq!(s.fast_burn, 0.0);
        assert!((s.budget_remaining - 1.0).abs() < 1e-12);
        assert!(tick.transitions.is_empty());
    }

    #[test]
    fn hard_burn_pages_once_both_fast_windows_concur() {
        let mut m = SloMonitor::new(cfg());
        // A minute of clean traffic, then 30% bad. The 5 s window
        // crosses 14.4×0.1% = 1.44% immediately; the 1 m window needs
        // bad/(total over 60s) > 1.44% ⇒ about 3 s of 30%-bad traffic.
        feed(&mut m, 0.0, 60, 100.0, 0.0);
        let mut paged_at = None;
        for i in 0..20u64 {
            let tick = feed(&mut m, 60.0 + i as f64, 1, 100.0, 0.3);
            if tick.signals[0].severity == SloSeverity::Page {
                paged_at = Some(i + 1);
                break;
            }
        }
        let paged_at = paged_at.expect("a 300× burn must page");
        assert!(
            (2..=6).contains(&paged_at),
            "long fast window should gate the page a few seconds, paged after {paged_at}s"
        );
    }

    #[test]
    fn smoulder_raises_ticket_not_page() {
        let mut m = SloMonitor::new(cfg());
        // 1% bad: fast burn = 10 < 14.4 (no page), slow burn = 10 > 6.
        let tick = feed(&mut m, 0.0, 400, 100.0, 0.01);
        assert_eq!(tick.signals[0].severity, SloSeverity::Ticket);
        // The transition was journalable exactly once.
        let mut m = SloMonitor::new(cfg());
        let mut transitions = 0;
        for i in 0..400u64 {
            transitions += feed(&mut m, i as f64, 1, 100.0, 0.01).transitions.len();
        }
        assert_eq!(transitions, 1, "steady smoulder transitions Ok→Ticket once");
    }

    #[test]
    fn recovery_clears_the_alert_and_budget_reflects_spend() {
        let mut m = SloMonitor::new(cfg());
        feed(&mut m, 0.0, 60, 100.0, 0.5);
        assert_eq!(
            m.observe(
                61.0,
                &[ApiSloSample {
                    good: 100.0,
                    bad: 0.0
                }]
            )
            .signals[0]
                .severity,
            SloSeverity::Page
        );
        // Clean traffic long enough to drain every window.
        let tick = feed(&mut m, 61.0, 400, 100.0, 0.0);
        let s = &tick.signals[0];
        assert_eq!(s.severity, SloSeverity::Ok);
        assert!(
            s.budget_remaining < 0.0,
            "50% bad for a minute blew a 0.1% budget for the run: {}",
            s.budget_remaining
        );
    }

    #[test]
    fn burn_rates_are_windowed_not_cumulative() {
        let mut m = SloMonitor::new(cfg());
        feed(&mut m, 0.0, 30, 100.0, 1.0);
        // 90 clean seconds later the fast windows are clean again.
        let tick = feed(&mut m, 30.0, 90, 100.0, 0.0);
        let s = &tick.signals[0];
        assert_eq!(s.fast_burn, 0.0);
        assert_eq!(s.fast_burn_long, 0.0);
        // …but the 6 m slow-long window still remembers the burn.
        assert!(s.slow_burn_long > 0.0);
    }

    #[test]
    fn signal_probe_matches_observe_and_never_mutates() {
        let mut m = SloMonitor::new(cfg());
        assert!(m.signal(0, 0.0).is_none(), "unseen API has no signal");
        let tick = feed(&mut m, 0.0, 30, 100.0, 0.3);
        let probed = m.signal(0, 30.0).expect("observed API");
        assert_eq!(probed, tick.signals[0]);
        // Probing again (even at a later time) must not change state.
        let _ = m.signal(0, 90.0);
        assert_eq!(m.signal(0, 30.0).expect("still there"), tick.signals[0]);
    }

    #[test]
    fn monitor_is_deterministic() {
        let run = || {
            let mut m = SloMonitor::new(cfg());
            let mut log = Vec::new();
            for i in 0..200u64 {
                let ratio = if i % 7 == 0 { 0.4 } else { 0.001 };
                let tick = m.observe(
                    i as f64,
                    &[ApiSloSample {
                        good: 80.0 * (1.0 - ratio),
                        bad: 80.0 * ratio,
                    }],
                );
                for tr in tick.transitions {
                    log.push((tr.api, tr.from, tr.to, tr.fast_burn.to_bits()));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
