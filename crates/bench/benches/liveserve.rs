//! Live serving plane hot paths.
//!
//! `admission/…` and `parse/…` measure the two operations the gateway
//! performs per request line before work is enqueued; their sum bounds
//! per-request gateway overhead. `gateway/…` measures the full loopback
//! round trip — TCP read, parse, token bucket, worker burn, TCP write —
//! by pipelining a batch of requests over one connection against a
//! near-zero-cost topology. Results are recorded in `BENCH_live.json`
//! at the repo root with the single-vCPU caveat.

use cluster::{ApiId, CallNode, EntryAdmission, Topology};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use liveserve::{gateway, LiveConfig, LiveServer};
use simnet::{SimDuration, SimTime};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Token-bucket admission with a finite limit — the gateway's per-line
/// admission decision, shared verbatim with the simulator.
fn bench_admission(c: &mut Criterion) {
    let mut adm = EntryAdmission::new(4, 0.05);
    adm.set_rate_limit(ApiId(0), 1e9, SimTime::ZERO);
    let mut now = SimTime::ZERO;
    c.bench_function("admission/try_admit-finite-limit", |b| {
        b.iter(|| {
            now += SimDuration::from_nanos(100);
            black_box(adm.try_admit(ApiId(0), now))
        })
    });
}

/// Wire-protocol parse of one request line.
fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse/request-line", |b| {
        b.iter(|| black_box(gateway::parse_request(black_box("REQ 123456789 3"))))
    });
}

fn tiny_topology() -> Topology {
    let mut t = Topology::new("live-bench");
    let svc = t.add_service(cluster::ServiceSpec::new("echo", 1).queue_capacity(1024));
    t.add_api(cluster::ApiSpec::single(
        "ping",
        CallNode::leaf(svc, SimDuration::from_micros(5)),
    ));
    t
}

/// Full loopback round trip, 1000 pipelined requests per iteration.
fn bench_gateway_roundtrip(c: &mut Criterion) {
    let cfg = LiveConfig {
        slo: Duration::from_millis(100),
        ..LiveConfig::default()
    };
    let server = LiveServer::start(&tiny_topology(), cfg).expect("bind loopback");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut id: u64 = 0;
    c.bench_function("gateway/roundtrip-1000-pipelined", |b| {
        b.iter(|| {
            let mut batch = String::with_capacity(1000 * 16);
            for _ in 0..1000 {
                id += 1;
                batch.push_str(&format!("REQ {id} 0\n"));
            }
            writer.write_all(batch.as_bytes()).expect("write");
            writer.flush().expect("flush");
            let mut line = String::new();
            for _ in 0..1000 {
                line.clear();
                reader.read_line(&mut line).expect("reply");
            }
            black_box(id)
        })
    });
    server.shutdown();
}

/// Multi-connection sustained throughput: 64 concurrent connections,
/// each pipelining 256 requests per iteration (16384 requests/iter).
/// This is the case the event-loop gateway exists for — many sockets
/// multiplexed over a few loops with per-wakeup batched admission —
/// where the old thread-per-connection design burned the core on
/// context switches. A deep queue keeps verdicts `OK` so the number is
/// end-to-end completions, not shed-path shortcuts.
fn bench_gateway_multiconn(c: &mut Criterion) {
    const CONNS: usize = 64;
    const PER_CONN: usize = 256;
    let mut topo = Topology::new("live-bench-multi");
    let svc = topo.add_service(cluster::ServiceSpec::new("echo", 1).queue_capacity(65536));
    topo.add_api(cluster::ApiSpec::single(
        "ping",
        CallNode::leaf(svc, SimDuration::from_micros(5)),
    ));
    let cfg = LiveConfig {
        slo: Duration::from_millis(500),
        ..LiveConfig::default()
    };
    let server = LiveServer::start(&topo, cfg).expect("bind loopback");
    let mut writers = Vec::with_capacity(CONNS);
    let mut readers = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_nodelay(true).ok();
        readers.push(BufReader::new(stream.try_clone().expect("clone")));
        writers.push(stream);
    }
    let mut id: u64 = 0;
    c.bench_function("gateway/roundtrip-64conn-pipelined", |b| {
        b.iter(|| {
            // Phase 1: every connection's batch goes out first, so the
            // server sees all 64 sockets readable at once …
            for w in &mut writers {
                let mut batch = String::with_capacity(PER_CONN * 16);
                for _ in 0..PER_CONN {
                    id += 1;
                    batch.push_str(&format!("REQ {id} 0\n"));
                }
                w.write_all(batch.as_bytes()).expect("write");
            }
            // … phase 2: drain every reply (batches are small enough
            // that no socket buffer fills before we come back to read).
            let mut line = String::new();
            for r in &mut readers {
                for _ in 0..PER_CONN {
                    line.clear();
                    r.read_line(&mut line).expect("reply");
                }
            }
            black_box(id)
        })
    });
    server.shutdown();
}

criterion_group!(
    benches,
    bench_admission,
    bench_parse,
    bench_gateway_roundtrip,
    bench_gateway_multiconn
);
criterion_main!(benches);
