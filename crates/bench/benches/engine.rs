//! Engine event throughput and run-executor scaling.
//!
//! `engine/…` measures the raw discrete-event core: one overloaded
//! Online Boutique run per iteration, so ns/iter ÷ events-per-run gives
//! the per-event cost. `runner/…` measures the same 8-run sweep executed
//! serially and through the worker pool; the ratio is the wall-clock
//! speedup recorded in `BENCH_engine.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use topfull_bench::exec;
use topfull_bench::runner::{default_workers, RunPlan};
use topfull_bench::scenarios::{boutique_closed_loop, Roster};

/// One 10-simulated-second overloaded boutique run (≈10⁵ events).
fn bench_event_throughput(c: &mut Criterion) {
    c.bench_function("engine/boutique-600users-10s", |b| {
        b.iter(|| {
            let (_, mut e) = boutique_closed_loop(black_box(600), 5);
            e.run_until(simnet::SimTime::from_secs(10));
            e.events_processed()
        })
    });
}

/// An 8-run controller sweep, the shape every figure fans out.
fn sweep(workers: usize) -> u64 {
    let mut plan = RunPlan::new().with_workers(workers);
    for seed in 0..8u64 {
        plan.submit(move || {
            exec::run_arm(
                "mimd",
                Roster::TopFullMimd,
                boutique_closed_loop(600, seed).1,
                10,
            )
            .events_processed
        });
    }
    plan.run().into_iter().sum()
}

fn bench_sweep_serial(c: &mut Criterion) {
    c.bench_function("runner/sweep-8-runs-serial", |b| b.iter(|| sweep(1)));
}

fn bench_sweep_parallel(c: &mut Criterion) {
    let w = default_workers();
    c.bench_function(&format!("runner/sweep-8-runs-{w}-workers"), |b| {
        b.iter(|| sweep(w))
    });
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_sweep_serial,
    bench_sweep_parallel,
);
criterion_main!(benches);
