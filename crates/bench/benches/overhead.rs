//! §6.4 "Online deployment overhead cost" micro-benchmarks.
//!
//! The paper reports, per control cycle: clustering ≈ 1.26 × 10⁶ cycles
//! on Train Ticket (41 services) and a single RL inference ≈ 2.33 × 10⁶
//! cycles, concluding one Xeon core can control ≈15 000 microservices
//! with 1 000 independent clusters. These benches measure the same
//! operations in this implementation (convert: cycles ≈ seconds × clock;
//! EXPERIMENTS.md records the comparison at 2.8 GHz).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

/// Clustering cost on Train Ticket (41 services, paper's benchmark).
fn bench_clustering_trainticket(c: &mut Criterion) {
    let tt = apps::TrainTicket::build();
    let paths = tt.topology.api_service_map();
    // A representative overloaded set: the shared query core.
    let overloaded = vec![tt.basic, tt.station, tt.order, tt.travel];
    c.bench_function("clustering/train-ticket-41svc", |b| {
        b.iter(|| topfull::cluster_apis(black_box(&paths), black_box(&overloaded)))
    });
}

/// Clustering cost on the 127-service real-trace demo.
fn bench_clustering_demo(c: &mut Criterion) {
    let demo = apps::AlibabaDemo::build(7);
    let paths = demo.topology.api_service_map();
    let overloaded = demo.hot_services.clone();
    c.bench_function("clustering/trace-demo-127svc", |b| {
        b.iter(|| topfull::cluster_apis(black_box(&paths), black_box(&overloaded)))
    });
}

/// Clustering cost at Alibaba-trace scale (23 481 services, 68
/// overloaded → 57 clusters; the §6.4 scalability claim).
fn bench_clustering_trace(c: &mut Criterion) {
    let tr = apps::trace::SyntheticTrace::generate(1);
    let paths: Vec<Vec<cluster::ServiceId>> = tr
        .api_paths
        .iter()
        .map(|p| p.iter().map(|s| cluster::ServiceId(*s)).collect())
        .collect();
    let overloaded: Vec<cluster::ServiceId> = tr
        .overloaded(apps::trace::OVERLOAD_THRESHOLD)
        .into_iter()
        .map(cluster::ServiceId)
        .collect();
    c.bench_function("clustering/alibaba-trace-23k", |b| {
        b.iter(|| topfull::cluster_apis(black_box(&paths), black_box(&overloaded)))
    });
}

/// A single RL inference (the paper's 2.33 × 10⁶-cycle number).
fn bench_rl_inference(c: &mut Criterion) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let policy = rl::policy::PolicyValue::new(2, &mut rng);
    c.bench_function("rl/inference", |b| {
        b.iter(|| policy.act_deterministic(black_box(&[0.93, 1.2])))
    });
}

/// Token-bucket admission (per-request gateway cost).
fn bench_token_bucket(c: &mut Criterion) {
    use simnet::{SimTime, TokenBucket};
    let mut bucket = TokenBucket::new(1e6, 1e4, SimTime::ZERO);
    let mut t = 0u64;
    c.bench_function("gateway/token-bucket-admit", |b| {
        b.iter(|| {
            t += 1_000;
            bucket.try_admit(black_box(SimTime::from_nanos(t)))
        })
    });
}

/// Event-queue throughput (the simulator substrate itself).
fn bench_event_queue(c: &mut Criterion) {
    use simnet::{EventQueue, SimTime};
    c.bench_function("simnet/event-queue-push-pop-1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

/// One full TopFull control decision on a Train Ticket observation
/// (clustering + state building + RL inferences + Algorithm 1).
fn bench_full_control_cycle(c: &mut Criterion) {
    use cluster::Controller;
    let tt = apps::TrainTicket::build();
    let rates: Vec<(cluster::ApiId, f64)> = tt.apis().iter().map(|a| (*a, 1100.0)).collect();
    let w = cluster::OpenLoopWorkload::constant(rates);
    let mut engine = cluster::Engine::new(
        tt.topology.clone(),
        cluster::EngineConfig::default(),
        Box::new(w),
    );
    engine.run_until(simnet::SimTime::from_secs(5));
    let obs = engine.latest_observation().expect("ran 5s").clone();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
    let policy = rl::policy::PolicyValue::new(2, &mut rng);
    let mut tf = topfull::TopFull::new(topfull::TopFullConfig::default().with_rl(policy));
    c.bench_function("topfull/control-cycle-train-ticket", |b| {
        b.iter(|| tf.control(black_box(&obs)))
    });
}

criterion_group!(
    benches,
    bench_clustering_trainticket,
    bench_clustering_demo,
    bench_clustering_trace,
    bench_rl_inference,
    bench_token_bucket,
    bench_event_queue,
    bench_full_control_cycle,
);
criterion_main!(benches);
