//! Front-door admission hot paths.
//!
//! The front door (DESIGN.md §17) runs *before* the token-bucket entry
//! admission that `benches/liveserve.rs` prices at ~6.9 ns/admit, so
//! its per-request cost is pure overhead on the gateway admit path.
//! Three things matter:
//!
//! * `front/coalesce-lookup-*` — stage 1's cache probe, the cost every
//!   keyed read pays (hit: answer from cache; miss: proceed as leader).
//! * `front/priority-check` — stage 2's `(business, user)` level
//!   computation plus threshold compare, the cost every non-coalesced
//!   request pays when the gate is on.
//! * `front/entry-only-admit` — the unchanged PR-8 baseline, re-measured
//!   here so `BENCH_admission.json` can state the overhead ratio against
//!   numbers from the same host and run. When no front door is
//!   configured the gateway never calls `pre_admit` at all, so the
//!   configured-off overhead is structurally zero.
//!
//! Results are recorded in `BENCH_admission.json` at the repo root.

use cluster::front::{CoalesceConfig, FrontConfig, FrontDoor, PreVerdict, PriorityConfig};
use cluster::{ApiId, EntryAdmission};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::{SimDuration, SimTime};
use std::sync::Arc;

fn coalesce_only() -> FrontDoor {
    FrontDoor::new(FrontConfig {
        coalesce: Some(CoalesceConfig {
            cache_capacity: 1024,
            // Long TTL so the seeded entry stays hot for the whole run.
            cache_ttl: SimDuration::from_secs(3600),
        }),
        priority: None,
    })
}

/// Stage 1 probe: cache hit (the flash-crowd fast path) and miss (the
/// leader path — what a cold key pays on top of plain admission).
fn bench_coalesce_lookup(c: &mut Criterion) {
    let mut fd = coalesce_only();
    let api = ApiId(0);
    let now = SimTime::from_secs(1);
    // Seed one completed flight so key 7 is a warm cache entry.
    assert!(matches!(
        fd.pre_admit(api, Some(7), 0, 0, now),
        PreVerdict::Proceed { lead: true }
    ));
    fd.begin_flight(api, 7, 1);
    fd.complete_flight(api, 7, Arc::from("42"), now);
    c.bench_function("front/coalesce-lookup-hit", |b| {
        b.iter(|| black_box(fd.pre_admit(api, Some(7), 0, 0, now)))
    });
    c.bench_function("front/coalesce-lookup-miss", |b| {
        b.iter(|| black_box(fd.pre_admit(api, Some(8), 0, 0, now)))
    });
}

/// Stage 2 check: level computation + threshold compare + per-level
/// admitted histogram update, cycling through users like real traffic.
fn bench_priority_check(c: &mut Criterion) {
    let mut fd = FrontDoor::new(FrontConfig {
        coalesce: None,
        priority: Some(PriorityConfig::default()),
    });
    let now = SimTime::ZERO;
    let mut user: u8 = 0;
    c.bench_function("front/priority-check", |b| {
        b.iter(|| {
            user = user.wrapping_add(1) & 127;
            black_box(fd.pre_admit(ApiId(0), None, 1, user, now))
        })
    });
}

/// The PR-8 baseline admit path, unchanged by this subsystem: the
/// token-bucket `try_admit` the gateway runs after (or without) the
/// front door. Must stay within 10% of BENCH_live.json's 6.9 ns.
fn bench_entry_only(c: &mut Criterion) {
    let mut adm = EntryAdmission::new(4, 0.05);
    adm.set_rate_limit(ApiId(0), 1e9, SimTime::ZERO);
    let mut now = SimTime::ZERO;
    c.bench_function("front/entry-only-admit", |b| {
        b.iter(|| {
            now += SimDuration::from_nanos(100);
            black_box(adm.try_admit(ApiId(0), now))
        })
    });
}

criterion_group!(
    benches,
    bench_coalesce_lookup,
    bench_priority_check,
    bench_entry_only
);
criterion_main!(benches);
