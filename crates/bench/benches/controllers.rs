//! End-to-end controller benchmarks: a short overload scenario per
//! controller, so `cargo bench` tracks the relative cost of simulating
//! each control scheme (engine + controller, 30 simulated seconds).

use baselines::{Breakwater, BreakwaterConfig, Dagor, DagorConfig};
use cluster::{Engine, EngineConfig, Harness, NoControl, OpenLoopWorkload};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use topfull::{TopFull, TopFullConfig};

fn engine() -> Engine {
    let ob = apps::OnlineBoutique::build();
    let rates: Vec<(cluster::ApiId, f64)> = ob.apis().iter().map(|a| (*a, 400.0)).collect();
    Engine::new(
        ob.topology.clone(),
        EngineConfig::default(),
        Box::new(OpenLoopWorkload::constant(rates)),
    )
}

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario-30s-online-boutique");
    g.sample_size(10);
    g.bench_function("no-control", |b| {
        b.iter(|| {
            let mut h = Harness::new(engine(), Box::new(NoControl));
            h.run_for_secs(30);
            h.result().mean_total_goodput(10.0, 30.0)
        })
    });
    g.bench_function("dagor", |b| {
        b.iter(|| {
            let mut e = engine();
            e.set_admission(Box::new(Dagor::new(
                e.topology().num_services(),
                DagorConfig::default(),
            )));
            let mut h = Harness::new(e, Box::new(NoControl));
            h.run_for_secs(30);
            h.result().mean_total_goodput(10.0, 30.0)
        })
    });
    g.bench_function("breakwater", |b| {
        b.iter(|| {
            let mut e = engine();
            e.set_admission(Box::new(Breakwater::new(
                e.topology().num_services(),
                BreakwaterConfig::default(),
            )));
            let mut h = Harness::new(e, Box::new(NoControl));
            h.run_for_secs(30);
            h.result().mean_total_goodput(10.0, 30.0)
        })
    });
    g.bench_function("topfull-rl", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let policy = rl::policy::PolicyValue::new(2, &mut rng);
        b.iter(|| {
            let tf = TopFull::new(TopFullConfig::default().with_rl(policy.clone()));
            let mut h = Harness::new(engine(), Box::new(tf));
            h.run_for_secs(30);
            h.result().mean_total_goodput(10.0, 30.0)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
