//! Telemetry-plane overhead.
//!
//! `obs/…` measures the instrument hot paths in isolation: one counter
//! increment, one histogram record (both what the engine's per-request
//! bookkeeping and the live gateway's admit/reject path pay per event),
//! the exemplar-bearing histogram record and bounded trace-log push the
//! tracing plane pays per *sampled* request, the per-batch stage-timer
//! cost (two `Instant` reads + one record, amortized over a whole epoll
//! batch), and a 1000-entry journal fill (ns/iter ÷ 1000 gives the
//! per-decision cost — decisions happen per control tick, not per
//! request).
//!
//! `engine/boutique-600users-10s-telemetry` is byte-for-byte the run
//! shape of `benches/engine.rs`'s throughput bench, re-measured with the
//! registry-backed counters in place; comparing its events/s against
//! `BENCH_engine.json`'s pre-telemetry number is the ≤5% overhead check
//! recorded in `BENCH_obs.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::SimDuration;
use topfull_bench::scenarios::boutique_closed_loop;

fn bench_counter_inc(c: &mut Criterion) {
    let reg = obs::Registry::new();
    let ctr = reg.counter("bench_events_total", &[("api", "0")]);
    c.bench_function("obs/counter-inc", |b| {
        b.iter(|| {
            ctr.inc();
            black_box(ctr.get())
        })
    });
}

fn bench_histogram_record(c: &mut Criterion) {
    let reg = obs::Registry::new();
    let h = reg.histogram("bench_latency_seconds", &[]);
    let mut n: u64 = 0;
    c.bench_function("obs/histogram-record", |b| {
        b.iter(|| {
            // Vary the value so bucket search is not branch-predicted away.
            n = n.wrapping_add(40_961);
            h.record(SimDuration::from_nanos(1_000_000 + (n & 0xf_ffff)));
            black_box(&h);
        })
    });
}

fn bench_histogram_record_exemplar(c: &mut Criterion) {
    let reg = obs::Registry::new();
    let h = reg.histogram("bench_latency_exemplar_seconds", &[]);
    let mut n: u64 = 0;
    c.bench_function("obs/histogram-record-exemplar", |b| {
        b.iter(|| {
            n = n.wrapping_add(40_961);
            h.record_with_exemplar(SimDuration::from_nanos(1_000_000 + (n & 0xf_ffff)), Some(n));
            black_box(&h);
        })
    });
}

fn bench_trace_push(c: &mut Criterion) {
    // Steady state: the bounded log is full, so every push also evicts —
    // the cost the live gateway pays per sampled stage event.
    let log = obs::TraceLog::new();
    let mut n: u64 = 0;
    c.bench_function("obs/trace-push", |b| {
        b.iter(|| {
            n = n.wrapping_add(1);
            log.push(obs::TraceEvent {
                trace: n,
                request: n,
                api: 0,
                shard: 0,
                stage: "worker".into(),
                outcome: "served".into(),
                at: n as f64,
                dur: 0.001,
            });
            black_box(log.evicted())
        })
    });
}

fn bench_stage_timer_batch(c: &mut Criterion) {
    // The per-batch profiling budget: two `Instant` reads plus one
    // histogram record, amortized over the whole batch.
    let reg = obs::Registry::new();
    let h = reg.histogram("bench_loop_stage_seconds", &[("stage", "parse")]);
    c.bench_function("obs/stage-timer-batch", |b| {
        b.iter(|| {
            let t0 = std::time::Instant::now();
            black_box(t0.elapsed());
            h.record(SimDuration::from_nanos(
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            ));
            black_box(&h);
        })
    });
}

fn bench_journal_fill(c: &mut Criterion) {
    c.bench_function("obs/journal-record-1k", |b| {
        b.iter(|| {
            // Fresh journal each iter so every record lands under the
            // bound (the post-cap drop path is cheaper and would skew).
            let j = obs::Journal::shared();
            for i in 0..1000u32 {
                j.record(obs::JournalEntry::RateBlocked {
                    t: f64::from(i),
                    api: i,
                    reason: "rate-increase blocked: path contains overloaded svc".into(),
                });
            }
            j.len()
        })
    });
}

/// The same run as `engine/boutique-600users-10s`, now with registry
/// counters live on the per-request path.
fn bench_engine_with_telemetry(c: &mut Criterion) {
    c.bench_function("engine/boutique-600users-10s-telemetry", |b| {
        b.iter(|| {
            let (_, mut e) = boutique_closed_loop(black_box(600), 5);
            e.run_until(simnet::SimTime::from_secs(10));
            e.events_processed()
        })
    });
}

criterion_group!(
    benches,
    bench_counter_inc,
    bench_histogram_record,
    bench_histogram_record_exemplar,
    bench_trace_push,
    bench_stage_timer_batch,
    bench_journal_fill,
    bench_engine_with_telemetry,
);
criterion_main!(benches);
