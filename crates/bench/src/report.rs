//! Uniform experiment reporting: "paper vs measured" rows, simple tables,
//! timelines, and JSON dumps under `artifacts/results/`.

use crate::artifacts_dir;
use serde::Serialize;

/// A titled experiment report accumulating rows and series.
#[derive(Debug, Default, Serialize)]
pub struct Report {
    pub id: String,
    pub title: String,
    /// `(label, paper_value, measured_value, unit)` comparison rows.
    pub comparisons: Vec<(String, String, String, String)>,
    /// Named numeric tables: `(name, column headers, rows)`.
    pub tables: Vec<NamedTable>,
    /// Named `(t, value)` series (timelines).
    pub series: Vec<NamedSeries>,
    pub notes: Vec<String>,
    /// Controller decision journal from one representative arm, in
    /// decision order; `topfull explain artifacts/results/<id>.json`
    /// renders it. Empty when the experiment did not capture one.
    pub journal: Vec<obs::JournalEntry>,
}

#[derive(Debug, Serialize)]
pub struct NamedTable {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

#[derive(Debug, Serialize)]
pub struct NamedSeries {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Report {
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            ..Report::default()
        }
    }

    /// Add a paper-vs-measured comparison row.
    pub fn compare(
        &mut self,
        label: impl Into<String>,
        paper: impl std::fmt::Display,
        measured: impl std::fmt::Display,
        unit: impl Into<String>,
    ) {
        self.comparisons.push((
            label.into(),
            paper.to_string(),
            measured.to_string(),
            unit.into(),
        ));
    }

    /// Add a numeric table.
    pub fn table(&mut self, name: &str, columns: &[&str], rows: Vec<Vec<String>>) {
        self.tables.push(NamedTable {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
        });
    }

    /// Add a timeline series.
    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) {
        self.series.push(NamedSeries {
            name: name.to_string(),
            points,
        });
    }

    /// Add a free-form note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Attach a controller decision journal (one representative arm).
    pub fn journal(&mut self, entries: Vec<obs::JournalEntry>) {
        self.journal = entries;
    }

    /// Print to stdout and persist JSON under `artifacts/results/`.
    pub fn finish(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        if !self.comparisons.is_empty() {
            println!("{:<44} {:>16} {:>16}  unit", "metric", "paper", "measured");
            for (label, paper, measured, unit) in &self.comparisons {
                println!("{label:<44} {paper:>16} {measured:>16}  {unit}");
            }
        }
        for t in &self.tables {
            println!("\n-- {}", t.name);
            println!("{}", t.columns.join("\t"));
            for row in &t.rows {
                println!("{}", row.join("\t"));
            }
        }
        for s in &self.series {
            let n = s.points.len();
            println!("\n-- series {} ({n} points)", s.name);
            // Print a decimated view; the full series goes to JSON.
            let stride = (n / 20).max(1);
            let line: Vec<String> = s
                .points
                .iter()
                .step_by(stride)
                .map(|(t, v)| format!("{t:.0}s:{v:.0}"))
                .collect();
            println!("{}", line.join(" "));
        }
        for note in &self.notes {
            println!("note: {note}");
        }
        let dir = artifacts_dir().join("results");
        std::fs::create_dir_all(&dir).expect("mkdir results");
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, serde_json::to_string_pretty(self).expect("json"))
            .expect("write results");
        println!("(saved {})", path.display());
    }
}

/// Format a ratio as e.g. "1.82x".
pub fn ratio(a: f64, b: f64) -> String {
    if b <= 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats_and_guards_zero() {
        assert_eq!(ratio(182.0, 100.0), "1.82x");
        assert_eq!(ratio(1.0, 0.0), "inf");
        assert_eq!(ratio(0.0, 10.0), "0.00x");
    }

    #[test]
    fn f1_rounds_to_one_decimal() {
        assert_eq!(f1(3.17), "3.2");
        assert_eq!(f1(1000.0), "1000.0");
    }

    #[test]
    fn report_accumulates_and_serializes() {
        let mut r = Report::new("test_report", "unit test");
        r.compare("metric", "1x", "2x", "");
        r.table("t", &["a", "b"], vec![vec!["1".into(), "2".into()]]);
        r.series("s", vec![(0.0, 1.0), (1.0, 2.0)]);
        r.note("a note");
        assert_eq!(r.comparisons.len(), 1);
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.series.len(), 1);
        let json = serde_json::to_string(&r).expect("serializable");
        assert!(json.contains("test_report"));
        assert!(json.contains("a note"));
    }
}
