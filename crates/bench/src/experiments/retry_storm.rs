//! Extension experiment: retry storms (not a paper figure).
//!
//! The paper's introduction lists "retry storm by misbehaving clients"
//! among the overload causes TopFull must handle (§1) but does not
//! evaluate one. This experiment closes that gap: a client population
//! whose failures are retried almost immediately (up to 3 times) turns a
//! moderate overload into a positive feedback loop — every shed request
//! comes back multiplied. An entry-point controller breaks the loop by
//! rejecting excess load *before* it costs anything, keeping latency low
//! so fewer requests fail in the first place.

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use apps::OnlineBoutique;
use cluster::{Engine, RetryStormWorkload};
use simnet::SimDuration;

const RUN_SECS: u64 = 150;
const MEASURE_FROM: f64 = 30.0;
const USERS: u32 = 2600;

fn engine(seed: u64) -> (OnlineBoutique, Engine) {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    // Misbehaving clients: 3 near-immediate retries per failed call.
    let w = RetryStormWorkload::new(
        weights,
        USERS,
        SimDuration::from_secs(1),
        3,
        SimDuration::from_millis(50),
    );
    let engine = Engine::new(ob.topology.clone(), engine_config(seed), Box::new(w));
    (ob, engine)
}

fn run_one(roster: Roster, seed: u64) -> (f64, f64) {
    let (_, eng) = engine(seed);
    let mut h = roster.into_harness(eng);
    h.run_for_secs(RUN_SECS);
    let goodput = h.result().mean_total_goodput(MEASURE_FROM, RUN_SECS as f64);
    // Offered amplification: mean offered rate vs the nominal user rate.
    let offered: f64 = {
        let xs: Vec<f64> = h
            .result()
            .samples
            .iter()
            .filter(|s| s.at.as_secs_f64() >= MEASURE_FROM)
            .map(|s| s.offered.iter().sum())
            .collect();
        simnet::stats::mean(&xs)
    };
    (goodput, offered / f64::from(USERS))
}

pub fn run() {
    let mut r = Report::new(
        "retry_storm",
        "Extension: retry storm by misbehaving clients (§1 motivation)",
    );
    let policy = models::policy_for("online-boutique");
    let (none_good, none_amp) = run_one(Roster::None, 23);
    let (dagor_good, dagor_amp) = run_one(Roster::Dagor { alpha: 0.05 }, 23);
    let (tf_good, tf_amp) = run_one(Roster::TopFull(policy), 23);
    r.table(
        "goodput and offered-load amplification under retries",
        &["controller", "goodput (rps)", "offered ÷ nominal"],
        vec![
            vec![
                "no-control".into(),
                f1(none_good),
                format!("{none_amp:.2}x"),
            ],
            vec!["dagor".into(), f1(dagor_good), format!("{dagor_amp:.2}x")],
            vec!["topfull".into(), f1(tf_good), format!("{tf_amp:.2}x")],
        ],
    );
    r.compare(
        "TopFull / no-control goodput under retry storm",
        ">1x (extension; no paper value)",
        ratio(tf_good, none_good),
        "",
    );
    r.note(
        "per-service shedding feeds the storm: every request DAGOR drops \
         is retried up to 3 times, re-consuming upstream capacity; \
         entry-point rejection is amplification-neutral",
    );
    r.finish();
}
