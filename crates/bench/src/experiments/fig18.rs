//! Figure 18: adaptation to temporary pod failures.
//!
//! "We delete 25 pods among 35 pods of ts-station microservice at time
//! 50s. Then, Kubernetes automatically starts scaling 25 pods … Without
//! TopFull, microservices serve almost zero goodput until the failures
//! are recovered even though 10 ts-station pods are alive. On the
//! contrary, TopFull detects overload in ts-station and starts load
//! control on APIs that pass ts-station microservice, guaranteeing
//! goodput that can be achieved with 10 ts-station pods."

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use apps::TrainTicket;
use cluster::failure::FailureSpec;
use cluster::{Engine, OpenLoopWorkload};
use simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 220;
const KILL_AT: u64 = 50;
/// Replacement pods take this long to come back (models image pull +
/// scheduling at scale; the degraded window of the paper's Figure 18).
const POD_STARTUP: u64 = 90;

fn engine(seed: u64) -> (TrainTicket, Engine) {
    let mut tt = TrainTicket::build();
    // The paper's deployment runs ts-station at 35 pods and the workload
    // keeps it near capacity, so losing 25 pods is a 70% capacity cut.
    // Slower pods (0.1×) put 35 of them at ≈86% utilization under this
    // workload, matching that regime.
    tt.topology.service_mut(tt.station).replicas = 35;
    tt.topology.service_mut(tt.station).pod_speed = 0.1;
    let rates: Vec<(cluster::ApiId, f64)> = tt.apis().iter().map(|a| (*a, 600.0)).collect();
    let w = OpenLoopWorkload::constant(rates);
    let mut cfg = engine_config(seed);
    cfg.pod_startup = SimDuration::from_secs(POD_STARTUP);
    let mut engine = Engine::new(tt.topology.clone(), cfg, Box::new(w));
    engine.inject_failures(vec![FailureSpec {
        at: SimTime::from_secs(KILL_AT),
        service: tt.station,
        pods: 25,
    }]);
    (tt, engine)
}

/// Returns (goodput during failure window, timeline).
fn run_one(roster: Roster, seed: u64) -> (f64, Vec<(f64, f64)>) {
    let (_, eng) = engine(seed);
    let mut h = roster.into_harness(eng);
    h.run_for_secs(RUN_SECS);
    let r = h.result();
    let failure_window =
        r.mean_total_goodput((KILL_AT + 10) as f64, (KILL_AT + POD_STARTUP) as f64);
    (failure_window, r.total_goodput_series())
}

pub fn run() {
    let mut r = Report::new(
        "fig18",
        "Adaptation toward temporary pod failures (ts-station)",
    );
    let policy = models::policy_for("train-ticket");
    let mut runs = crate::runner::run_over(vec![Roster::None, Roster::TopFull(policy)], |roster| {
        run_one(roster, 18)
    });
    let (tf_fail, tf_series) = runs.pop().expect("two runs");
    let (none_fail, none_series) = runs.pop().expect("two runs");
    r.series("no topfull", none_series);
    r.series("topfull", tf_series);
    r.table(
        "goodput during the failure window (rps)",
        &["controller", "goodput"],
        vec![
            vec!["no-topfull".into(), f1(none_fail)],
            vec!["topfull".into(), f1(tf_fail)],
        ],
    );
    r.compare(
        "without TopFull during failures",
        "almost zero goodput",
        f1(none_fail),
        "rps",
    );
    r.compare(
        "TopFull during failures",
        "≈10/35 of pre-failure capacity",
        f1(tf_fail),
        "rps",
    );
    r.compare(
        "TopFull / no-TopFull during failures",
        ">>1x",
        ratio(tf_fail, none_fail),
        "",
    );
    r.finish();
}
