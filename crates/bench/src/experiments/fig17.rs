//! Figure 17: performance gain of transfer learning.
//!
//! "We transfer the pre-trained model to the Train Ticket application and
//! Online Boutique application to generate Transfer-TT and Transfer-OB
//! models … We validate our pre-trained model, Transfer-TT, and
//! Transfer-OB through an overload scenario on the Train Ticket
//! application. … The transfer learned model serves 8-9% more requests
//! compared to the base model. … the base model itself shows a
//! reasonable performance by achieving an average goodput of 939 rps
//! during a traffic surge, which is a 1.13x higher value compared to the
//! autoscaler standalone which serves 829 rps."

use crate::experiments::fig14;
use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::Roster;

pub fn run() {
    let mut r = Report::new("fig17", "RL models under traffic surge (Train Ticket)");
    let cases = vec![
        ("autoscaler-solo", Roster::None),
        ("base-model", Roster::TopFull(models::base_model())),
        ("transfer-ob", Roster::TopFull(models::transfer_ob())),
        ("transfer-tt", Roster::TopFull(models::transfer_tt())),
    ];
    let runs = crate::runner::run_over(cases, |(label, roster)| {
        let (_, total, _) = fig14::run_one(roster, 17);
        (label, total)
    });
    let mut totals = std::collections::HashMap::new();
    let mut rows = Vec::new();
    for (label, total) in runs {
        totals.insert(label, total);
        rows.push(vec![label.to_string(), f1(total)]);
    }
    r.table(
        "avg goodput (rps) during surge",
        &["model", "goodput"],
        rows,
    );
    r.compare(
        "base model / autoscaler-solo",
        "1.13x (939 vs 829 rps)",
        ratio(totals["base-model"], totals["autoscaler-solo"]),
        "",
    );
    r.compare(
        "Transfer-TT / base model",
        "1.08-1.09x",
        ratio(totals["transfer-tt"], totals["base-model"]),
        "",
    );
    r.compare(
        "Transfer-OB / base model (cross-app transfer)",
        "≈1.08x (both transferred models gain)",
        ratio(totals["transfer-ob"], totals["base-model"]),
        "",
    );
    r.finish();
}
