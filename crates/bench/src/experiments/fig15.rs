//! Figure 15: Online Boutique under traffic surge with the autoscaler.
//!
//! "In Online Boutique, TopFull serves 3.91x higher average goodput
//! during a traffic surge compared to the autoscaler solo … and 1.19x …
//! compared to the TopFull(BW). Online Boutique showed significant
//! performance degradation during the traffic surge because
//! Recommendation microservice's pods completely failed at the initial
//! traffic surge. Although the autoscaler provided more Recommendation
//! pods, they kept failing until enough pods are allocated at once."
//! The crash-loop model reproduces that cascade.

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use apps::OnlineBoutique;
use cluster::autoscaler::{HpaConfig, VmPoolConfig};
use cluster::{ClosedLoopWorkload, Engine, RateSchedule};
use simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 240;
const SURGE_AT: u64 = 20;
const SURGE_END: u64 = 200;

/// Online Boutique engine with HPA and a user surge that crash-loops
/// Recommendation without overload control.
pub fn engine(seed: u64) -> (OnlineBoutique, Engine) {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let users = RateSchedule::surge(
        400.0,
        8000.0,
        SimTime::from_secs(SURGE_AT),
        SimTime::from_secs(SURGE_END),
    );
    let w = ClosedLoopWorkload::new(weights, users, SimDuration::from_secs(1));
    let mut cfg = engine_config(seed);
    cfg.pod_startup = SimDuration::from_secs(30);
    let mut engine = Engine::new(ob.topology.clone(), cfg, Box::new(w));
    engine.set_vm_pool(VmPoolConfig {
        vcpus_per_vm: 48,
        initial_vms: 1,
        max_vms: 10,
        vm_startup: SimDuration::from_secs(40),
        vcpus_per_pod: 1.0,
    });
    engine.enable_hpa(HpaConfig::default());
    (ob, engine)
}

/// Returns per-API mean goodput during the surge, the total, the total
/// timeline, and the number of pod crash events.
pub fn run_one(roster: Roster, seed: u64) -> (Vec<f64>, f64, Vec<(f64, f64)>, u64) {
    let (ob, eng) = engine(seed);
    let mut h = roster.into_harness(eng);
    h.run_for_secs(RUN_SECS);
    let crashes = h.engine.crash_events;
    let r = h.result();
    let per_api: Vec<f64> = ob
        .apis()
        .iter()
        .map(|a| r.mean_goodput_api(*a, SURGE_AT as f64, SURGE_END as f64))
        .collect();
    let total = r.mean_total_goodput(SURGE_AT as f64, SURGE_END as f64);
    (per_api, total, r.total_goodput_series(), crashes)
}

pub fn run() {
    let mut r = Report::new(
        "fig15",
        "Online Boutique: performance under traffic surge (with HPA)",
    );
    let policy = models::policy_for("online-boutique");
    let cases = vec![
        ("autoscaler-solo", Roster::None),
        ("topfull-bw", Roster::TopFullBw),
        ("topfull", Roster::TopFull(policy)),
    ];
    let runs = crate::runner::run_over(cases, |(label, roster)| (label, run_one(roster, 15)));
    let mut rows = Vec::new();
    let mut totals = std::collections::HashMap::new();
    let mut crash_counts = std::collections::HashMap::new();
    for (label, (per_api, total, series, crashes)) in runs {
        totals.insert(label, total);
        crash_counts.insert(label, crashes);
        let mut row = vec![label.to_string()];
        row.extend(per_api.iter().map(|g| f1(*g)));
        row.push(f1(total));
        rows.push(row);
        r.series(label, series);
    }
    r.table(
        "avg goodput (rps) during surge",
        &[
            "controller",
            "api1",
            "api2",
            "api3",
            "api4",
            "api5",
            "total",
        ],
        rows,
    );
    r.compare(
        "TopFull / autoscaler-solo",
        "3.91x",
        ratio(totals["topfull"], totals["autoscaler-solo"]),
        "",
    );
    r.compare(
        "TopFull / TopFull(BW)",
        "1.19x",
        ratio(totals["topfull"], totals["topfull-bw"]),
        "",
    );
    r.compare(
        "Recommendation crash-loop without control",
        "pods kept failing",
        format!("{} crash events", crash_counts["autoscaler-solo"]),
        "",
    );
    r.compare(
        "crash events under TopFull",
        "none/minimal",
        format!("{} crash events", crash_counts["topfull"]),
        "",
    );
    r.finish();
}
