//! Figure 9: goodput vs user demand.
//!
//! "We compare the performance of each load control at different incoming
//! request rates. … TopFull and DAGOR show consistent performance with
//! respect to the number of user demands, while Breakwater suffers from
//! further performance degradation when user demands increase" — the
//! multi-tier `(1-p)^k` effect analyzed in §6.1.

use crate::experiments::fig08;
use crate::models;
use crate::report::{f1, Report};
use crate::scenarios::Roster;
use simnet::stats;

const USER_SWEEP: [u32; 5] = [1500, 2000, 2600, 3200, 4000];

pub fn run() {
    let mut r = Report::new("fig09", "Goodput vs user demand (Online Boutique)");
    let policy = models::policy_for("online-boutique");
    let mut rows = Vec::new();
    let mut by_controller: std::collections::HashMap<&str, Vec<f64>> =
        std::collections::HashMap::new();
    for users in USER_SWEEP {
        let rosters = vec![
            Roster::Breakwater,
            Roster::Dagor { alpha: 0.05 },
            Roster::TopFull(policy.clone()),
        ];
        let mut row = vec![users.to_string()];
        for roster in rosters {
            let label = roster.label();
            let (_, total) = fig08::run_one(roster, users, 42);
            by_controller.entry(label).or_default().push(total);
            row.push(f1(total));
        }
        rows.push(row);
    }
    r.table(
        "total goodput (rps) vs users",
        &["users", "breakwater", "dagor", "topfull"],
        rows,
    );
    // Consistency = relative spread across the sweep; the paper's claim
    // is that TopFull/DAGOR stay flat while Breakwater degrades.
    for (label, totals) in [
        ("breakwater", &by_controller["breakwater"]),
        ("dagor", &by_controller["dagor"]),
        ("topfull", &by_controller["topfull"]),
    ] {
        let spread = if stats::mean(totals) > 0.0 {
            stats::std_dev(totals) / stats::mean(totals)
        } else {
            0.0
        };
        let paper = match label {
            "breakwater" => "degrades with demand",
            _ => "consistent",
        };
        r.compare(
            format!("{label}: relative spread across sweep"),
            paper,
            format!("{:.1}%", spread * 100.0),
            "",
        );
    }
    let bw = &by_controller["breakwater"];
    r.note(format!(
        "breakwater goodput from {} to {} rps across the sweep (paper: decreasing)",
        f1(bw[0]),
        f1(*bw.last().expect("non-empty"))
    ));
    r.finish();
}
