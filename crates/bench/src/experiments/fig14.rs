//! Figure 14: Train Ticket under traffic surge with the autoscaler.
//!
//! "TopFull with the autoscaler achieves a higher average goodput at
//! every APIs compared to the standalone autoscaler and TopFull(BW) …
//! In Train Ticket, TopFull serves 1.38x higher average goodput during
//! traffic surge compared to the autoscaler solo while using the same
//! number of vCPUs. TopFull also serves 1.75x … compared to the
//! TopFull(BW)."

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use apps::TrainTicket;
use cluster::autoscaler::{HpaConfig, VmPoolConfig};
use cluster::{Engine, OpenLoopWorkload, RateSchedule};
use simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 240;
const SURGE_AT: u64 = 20;
const SURGE_END: u64 = 200;
pub const MEASURE_FROM: f64 = SURGE_AT as f64;
pub const MEASURE_TO: f64 = SURGE_END as f64;

/// Train Ticket engine with HPA and a 4× surge on all six APIs.
pub fn engine(seed: u64) -> (TrainTicket, Engine) {
    let tt = TrainTicket::build();
    let rates: Vec<(cluster::ApiId, RateSchedule)> = tt
        .apis()
        .iter()
        .map(|a| {
            (
                *a,
                RateSchedule::surge(
                    120.0,
                    1400.0,
                    SimTime::from_secs(SURGE_AT),
                    SimTime::from_secs(SURGE_END),
                ),
            )
        })
        .collect();
    let w = OpenLoopWorkload::new(rates);
    let mut cfg = engine_config(seed);
    // Scheduling + image pull at scale: new pods take 30 s.
    cfg.pod_startup = SimDuration::from_secs(30);
    let mut engine = Engine::new(tt.topology.clone(), cfg, Box::new(w));
    // A finite node pool: scaling beyond the two initial VMs waits for
    // cluster-autoscaler provisioning (the timescale gap of §1).
    engine.set_vm_pool(VmPoolConfig {
        vcpus_per_vm: 48,
        initial_vms: 3,
        max_vms: 10,
        vm_startup: SimDuration::from_secs(40),
        vcpus_per_pod: 1.0,
    });
    engine.enable_hpa(HpaConfig::default());
    (tt, engine)
}

/// Returns per-API mean goodput during the surge and the total timeline.
pub fn run_one(roster: Roster, seed: u64) -> (Vec<f64>, f64, Vec<(f64, f64)>) {
    let (tt, eng) = engine(seed);
    let mut h = roster.into_harness(eng);
    h.run_for_secs(RUN_SECS);
    let r = h.result();
    let per_api: Vec<f64> = tt
        .apis()
        .iter()
        .map(|a| r.mean_goodput_api(*a, MEASURE_FROM, MEASURE_TO))
        .collect();
    let total = r.mean_total_goodput(MEASURE_FROM, MEASURE_TO);
    (per_api, total, r.total_goodput_series())
}

pub fn run() {
    let mut r = Report::new(
        "fig14",
        "Train Ticket: performance under traffic surge (with HPA)",
    );
    let policy = models::policy_for("train-ticket");
    let cases = vec![
        ("autoscaler-solo", Roster::None),
        ("topfull-bw", Roster::TopFullBw),
        ("topfull", Roster::TopFull(policy)),
    ];
    let runs = crate::runner::run_over(cases, |(label, roster)| (label, run_one(roster, 14)));
    let mut rows = Vec::new();
    let mut totals = std::collections::HashMap::new();
    for (label, (per_api, total, series)) in runs {
        totals.insert(label, total);
        let mut row = vec![label.to_string()];
        row.extend(per_api.iter().map(|g| f1(*g)));
        row.push(f1(total));
        rows.push(row);
        r.series(label, series);
    }
    r.table(
        "avg goodput (rps) during surge",
        &[
            "controller",
            "api1",
            "api2",
            "api3",
            "api4",
            "api5",
            "api6",
            "total",
        ],
        rows,
    );
    r.compare(
        "TopFull / autoscaler-solo",
        "1.38x",
        ratio(totals["topfull"], totals["autoscaler-solo"]),
        "",
    );
    r.compare(
        "TopFull / TopFull(BW)",
        "1.75x",
        ratio(totals["topfull"], totals["topfull-bw"]),
        "",
    );
    r.finish();
}
