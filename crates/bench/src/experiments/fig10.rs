//! Figure 10: component-wise performance breakdown.
//!
//! "In real-trace demo, when TopFull employs MIMD instead of RL, the
//! goodput decreases by 11.1%. TopFull without clustering … degrades by
//! 18.7%. In Train Ticket, … MIMD … decreased by 18.4%, … without
//! clustering … 22.5%. In Online Boutique, the goodput decreased by
//! 34.4% with MIMD. Without dynamic clustering …, the goodput decreased
//! by 2.6%" (Online Boutique has one dominant shared bottleneck, so
//! clustering cannot fragment the problem much).

use crate::exec;
use crate::models;
use crate::report::{f1, Report};
use crate::runner::RunPlan;
use crate::scenarios::{alibaba_surged, Roster};
use apps::{OnlineBoutique, TrainTicket};
use cluster::{ClosedLoopWorkload, Engine, OpenLoopWorkload};
use simnet::SimDuration;

const RUN_SECS: u64 = 120;
const MEASURE_FROM: f64 = 30.0;

fn boutique_engine(seed: u64) -> Engine {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let w = ClosedLoopWorkload::fixed(weights, 2600, SimDuration::from_secs(1));
    Engine::new(
        ob.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(w),
    )
}

fn trainticket_engine(seed: u64) -> Engine {
    let tt = TrainTicket::build();
    // Overload the six measured APIs.
    let rates: Vec<(cluster::ApiId, f64)> = tt.apis().iter().map(|a| (*a, 1100.0)).collect();
    let w = OpenLoopWorkload::constant(rates);
    Engine::new(
        tt.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(w),
    )
}

fn alibaba_engine(seed: u64) -> Engine {
    alibaba_surged(2.0, seed).1
}

pub fn run() {
    let mut r = Report::new("fig10", "Component-wise breakdown (3 applications)");
    type AppRow = (&'static str, fn(u64) -> Engine, &'static str);
    let apps: [AppRow; 3] = [
        ("trace-demo", alibaba_engine, "base"),
        ("train-ticket", trainticket_engine, "train-ticket"),
        ("online-boutique", boutique_engine, "online-boutique"),
    ];
    // Paper-reported degradations for the comparison rows.
    let paper_mimd = [
        ("trace-demo", 11.1),
        ("train-ticket", 18.4),
        ("online-boutique", 34.4),
    ];
    let paper_noclu = [
        ("trace-demo", 18.7),
        ("train-ticket", 22.5),
        ("online-boutique", 2.6),
    ];
    // Train/fetch each app's policy before the fan-out, then submit all
    // app × variant runs through one plan.
    let mut plan = RunPlan::new();
    for (_, mk, policy_key) in apps {
        let policy = models::policy_for(policy_key);
        let variants = vec![
            Roster::None,
            Roster::Dagor { alpha: 0.05 },
            Roster::TopFullMimd,
            Roster::TopFullNoCluster(policy.clone()),
            Roster::TopFull(policy),
        ];
        for v in variants {
            let label = v.label();
            plan.submit(move || {
                let o = exec::run_arm(label, v, mk(1010), RUN_SECS);
                (
                    label,
                    o.result.mean_total_goodput(MEASURE_FROM, RUN_SECS as f64),
                    o.result.journal,
                )
            });
        }
    }
    let mut measured = plan.run();
    let mut rows = Vec::new();
    let mut journal = Vec::new();
    for (chunk, (app, _, _)) in measured.chunks_mut(5).zip(apps) {
        let by: std::collections::HashMap<&str, f64> =
            chunk.iter().map(|(l, g, _)| (*l, *g)).collect();
        // Keep the trace-demo MIMD arm's decision journal as the
        // artifact's explainable example (`topfull explain …/fig10.json`).
        if app == "trace-demo" {
            if let Some((_, _, j)) = chunk.iter_mut().find(|(l, _, _)| *l == "topfull-mimd") {
                journal = std::mem::take(j);
            }
        }
        let tf = by["topfull"];
        rows.push(vec![
            app.to_string(),
            f1(by["no-control"]),
            f1(by["dagor"]),
            f1(by["topfull-mimd"]),
            f1(by["topfull-no-cluster"]),
            f1(tf),
        ]);
        let deg = |x: f64| {
            if tf > 0.0 {
                format!("{:.1}%", (1.0 - x / tf) * 100.0)
            } else {
                "n/a".to_string()
            }
        };
        let p_m = paper_mimd.iter().find(|(a, _)| *a == app).expect("known").1;
        let p_c = paper_noclu
            .iter()
            .find(|(a, _)| *a == app)
            .expect("known")
            .1;
        r.compare(
            format!("{app}: goodput loss with MIMD instead of RL"),
            format!("{p_m}%"),
            deg(by["topfull-mimd"]),
            "",
        );
        r.compare(
            format!("{app}: goodput loss without clustering"),
            format!("{p_c}%"),
            deg(by["topfull-no-cluster"]),
            "",
        );
    }
    r.table(
        "avg total goodput (rps)",
        &[
            "app",
            "no-control",
            "dagor",
            "w/ MIMD",
            "w/o cluster",
            "topfull",
        ],
        rows,
    );
    r.journal(journal);
    r.finish();
}
