//! Table 1: reinforcement-learning training parameters.

use crate::report::Report;
use rl::ppo::PpoConfig;

pub fn run() {
    let mut r = Report::new("table1", "RL training parameters (paper Table 1)");
    let c = PpoConfig::default();
    r.compare("Steps in episode", 50, c.steps_per_episode, "");
    r.compare(
        "Learning rate",
        "5e-5",
        format!("{:e}", c.learning_rate),
        "",
    );
    r.compare("Kullback-Leibler coeff", 0.2, c.kl_coeff, "");
    r.compare("Kullback-Leibler target", 0.01, c.kl_target, "");
    r.compare("Minibatch size", 128, c.minibatch_size, "");
    r.compare("PPO clip parameter", 0.3, c.clip_param, "");
    r.note(
        "PpoConfig::default() is the paper-exact Table 1; experiments train \
         with PpoConfig::fast() (learning rate 3e-4) to converge in CPU-minutes \
         instead of GPU-hours — see EXPERIMENTS.md.",
    );
    r.finish();
}
