//! Figure 13 + Table 2: adaptation speed after overload.
//!
//! "The overload is generated with single Post Checkout API, focusing
//! only on the effectiveness of the rate controller. TopFull takes 5s to
//! reach the maximal goodput whereas default DAGOR takes 27s … DAGOR only
//! makes static decisions of 0.05 multiplicative decreases … The
//! comparison of the convergence speed is provided in Table 2":
//! DAGOR(0.05) = 27 s, DAGOR(0.1) = 19 s, DAGOR(0.5) = ∞, TopFull = 5 s.

use crate::models;
use crate::report::Report;
use crate::scenarios::{boutique_open_loop, Roster};
use cluster::RateSchedule;
use simnet::stats;
use simnet::SimTime;

const SURGE_AT: u64 = 10;
const RUN_SECS: u64 = 90;

/// Convergence time after the surge: the first second from which goodput
/// reaches 85% of the maximal sustained level and **never again** drops
/// below 75% of it (the paper's "time to reach the maximal goodput";
/// sawtoothing controllers like DAGOR(0.5) never converge → `None`).
fn convergence_secs(series: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .copied()
        .filter(|(t, _)| *t >= SURGE_AT as f64)
        .collect();
    // Maximal sustained goodput = p90 of post-surge samples (robust to
    // single-sample spikes).
    let values: Vec<f64> = pts.iter().map(|(_, v)| *v).collect();
    let maximal = stats::quantile(&values, 0.9)?;
    if maximal <= 0.0 {
        return None;
    }
    let reach = 0.85 * maximal;
    let hold = 0.75 * maximal;
    for i in 0..pts.len() {
        if pts[i].1 >= reach && pts[i..].iter().all(|(_, v)| *v >= hold) {
            // Require a meaningful stable tail, not a last-sample fluke.
            if pts.len() - i >= 10 {
                return Some(pts[i].0 - SURGE_AT as f64);
            }
        }
    }
    None
}

fn run_one(roster: Roster, seed: u64) -> Vec<(f64, f64)> {
    // Post Checkout only: 120 rps baseline stepping to 1000 rps — far
    // past the checkout service's ≈400 rps capacity.
    let (ob, engine) = boutique_open_loop(
        |ob| {
            vec![(
                ob.postcheckout,
                RateSchedule::steps(vec![
                    (SimTime::ZERO, 120.0),
                    (SimTime::from_secs(SURGE_AT), 1000.0),
                ]),
            )]
        },
        seed,
    );
    let api = ob.postcheckout;
    let mut h = roster.into_harness(engine);
    h.run_for_secs(RUN_SECS);
    h.result().goodput_series(api)
}

pub fn run() {
    let mut r = Report::new(
        "fig13_table2",
        "Adaptation speed after overload (Fig. 13, Table 2)",
    );
    let policy = models::policy_for("online-boutique");
    let cases: Vec<(&str, Roster, &str)> = vec![
        ("DAGOR (0.05)", Roster::Dagor { alpha: 0.05 }, "27 s"),
        ("DAGOR (0.1)", Roster::Dagor { alpha: 0.1 }, "19 s"),
        ("DAGOR (0.5)", Roster::Dagor { alpha: 0.5 }, "inf"),
        ("TopFull (RL)", Roster::TopFull(policy), "5 s"),
    ];
    let runs = crate::runner::run_over(cases, |(label, roster, paper)| {
        (label, paper, run_one(roster, 100))
    });
    let mut measured = Vec::new();
    for (label, paper, series) in runs {
        let conv = convergence_secs(&series);
        let shown = conv.map_or("inf".to_string(), |c| format!("{c:.0} s"));
        r.compare(format!("convergence: {label}"), paper, &shown, "");
        r.series(label, series);
        measured.push((label, conv));
    }
    // Shape assertions recorded as notes.
    let get = |l: &str| {
        measured
            .iter()
            .find(|(label, _)| *label == l)
            .and_then(|(_, c)| *c)
    };
    if let (Some(tf), Some(d005)) = (get("TopFull (RL)"), get("DAGOR (0.05)")) {
        r.note(format!(
            "shape: TopFull converges {:.1}x faster than DAGOR(0.05) (paper: 5.4x)",
            d005 / tf.max(1.0)
        ));
    }
    r.finish();
}
