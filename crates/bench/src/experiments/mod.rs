//! One module per paper table/figure. Each exposes `run()` which prints
//! and persists a [`crate::report::Report`].

pub mod admission;
pub mod chaos;
pub mod fig04;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod metastable;
pub mod multishard;
pub mod refinements;
pub mod retry_storm;
pub mod sim2real;
pub mod slo;
pub mod table1;
pub mod trace_analysis;
pub mod training_cost;
