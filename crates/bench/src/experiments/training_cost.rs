//! §6.4 training-cost analysis: the benefit of Sim2Real transfer.
//!
//! The paper: pre-training 48 000 episodes took 6 hours on a GTX 1080;
//! specialization took 800 episodes = 12 hours of real-world sampling
//! (each step takes one real second). Without transfer, learning 48 000
//! episodes in the real world would take 30 days and ≈$5 832 at $8.1/h
//! for the minimal 3-node deployment; with transfer the real-world bill
//! is ≈$97.2.
//!
//! We measure our simulator throughputs, then reproduce the paper's
//! economics: real-world sampling time is fixed by the control cadence
//! (50 steps × 1 s per episode), so the dollar arithmetic carries over
//! exactly; what changes is the simulator-hours side, which we measure.

use crate::report::Report;
use rand::SeedableRng;
use rl::env::RlEnv;
use rl::graph_env::GraphEnv;
use rl::policy::PolicyValue;

const EPISODES_PRETRAIN: f64 = 48_000.0;
const EPISODES_SPECIALIZE: f64 = 800.0;
const STEPS_PER_EPISODE: f64 = 50.0;
const AZURE_RATE_PER_HOUR: f64 = 8.1; // 3 × D48ds_v5

pub fn run() {
    let mut r = Report::new(
        "training_cost",
        "Training cost and transfer-learning benefit (§6.4)",
    );

    // Measure graph-simulator episode throughput (env + policy inference).
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let policy = PolicyValue::new(2, &mut rng);
    let mut env = GraphEnv::new();
    let n = 2_000usize;
    let start = std::time::Instant::now();
    for _ in 0..n {
        let mut s = env.reset(&mut rng);
        loop {
            let a = policy.act_deterministic(&s);
            let res = env.step(a, &mut rng);
            s = res.state;
            if res.done {
                break;
            }
        }
    }
    let per_episode = start.elapsed().as_secs_f64() / n as f64;
    let sim_hours_48k = EPISODES_PRETRAIN * per_episode / 3600.0;
    r.compare(
        "graph-simulator sampling for 48k episodes",
        "6 h (GPU training wall-clock)",
        format!("{sim_hours_48k:.3} h (CPU env+inference)"),
        "",
    );

    // Real-world sampling economics (fixed by physics: 1 s per step).
    let real_secs_per_episode = STEPS_PER_EPISODE; // 50 steps × 1 s
    let specialize_hours = EPISODES_SPECIALIZE * real_secs_per_episode / 3600.0;
    let specialize_cost = specialize_hours * AZURE_RATE_PER_HOUR;
    r.compare(
        "real-world specialization time (800 episodes)",
        "12 h",
        format!("{specialize_hours:.1} h"),
        "",
    );
    r.compare(
        "real-world specialization cost",
        "$97.2",
        format!("${specialize_cost:.1}"),
        "",
    );
    let no_transfer_hours = EPISODES_PRETRAIN * real_secs_per_episode / 3600.0;
    let no_transfer_cost = no_transfer_hours * AZURE_RATE_PER_HOUR;
    r.compare(
        "without transfer: real-world sampling",
        "30 days",
        format!("{:.1} days", no_transfer_hours / 24.0),
        "",
    );
    r.compare(
        "without transfer: cost",
        "$5,832",
        format!("${no_transfer_cost:.0}"),
        "",
    );
    r.compare(
        "transfer-learning cost reduction",
        "60x",
        format!("{:.0}x", no_transfer_cost / specialize_cost),
        "",
    );
    r.note(format!(
        "measured {:.2} ms per simulator episode; this reproduction trains \
         {} pre-training and {} specialization episodes (scaled from the \
         paper's 48,000/800) — see EXPERIMENTS.md",
        per_episode * 1e3,
        crate::models::BASE_EPISODES,
        crate::models::SPECIALIZE_EPISODES,
    ));
    r.finish();
}
