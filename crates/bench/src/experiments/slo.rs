//! Extension experiment: the SLO burn-rate alert as a *leading*
//! indicator of goodput collapse under flash-crowd waves (not a paper
//! figure; `figures slo`).
//!
//! The scenario is a two-wave flash crowd on Online Boutique's Get
//! Product API. A short precursor wave (700 rps for 4 s against the
//! recommendation bottleneck's ≈500 rps) overflows the bounded queue:
//! a slice of requests fails while *served* goodput barely moves — the
//! classic window where point-in-time dashboards look healthy. Those
//! failures spend error budget, so the multi-window burn-rate monitor
//! pages during the precursor. The full crowd lands 15 s later, pins
//! the queue past the liveness-probe saturation threshold, crash-loops
//! the service, and collapses goodput for the rest of the run.
//!
//! The claims under test:
//! * in the uncontrolled arm, the first page-severity `SloBurn` journal
//!   entry precedes the sustained goodput collapse by ≥2 control ticks
//!   — the alert is actionable *before* the outage;
//! * a TopFull arm fed the same waves sheds at the entry point
//!   (rejected requests spend no budget), keeps the bottleneck below
//!   its crash threshold, and sustains crowd-phase goodput the
//!   uncontrolled arm loses. The arm uses the aggressive end of the
//!   Fig. 13 MIMD step sweep (0.5 decrease): the crowd is a 5×
//!   overshoot and the crash loop fires after 6 saturated probes, so
//!   the paper-default 0.05 step cannot clamp inside the window.

use crate::report::{f1, ratio, Report};
use crate::scenarios::boutique_open_loop;
use cluster::{Controller, Harness, NoControl, RateSchedule};
use simnet::SimTime;
use topfull::{TopFull, TopFullConfig};

const RUN_SECS: u64 = 40;
const BASELINE_RPS: f64 = 120.0;
/// Precursor wave: above the ≈500 rps recommendation capacity but too
/// brief to trip the 6-probe crash loop.
const PRECURSOR_AT: u64 = 10;
const PRECURSOR_END: u64 = 14;
const PRECURSOR_RPS: f64 = 700.0;
/// Full crowd: pins the bounded queue until the liveness probes crash
/// the service.
const CROWD_AT: u64 = 25;
const CROWD_RPS: f64 = 2600.0;
const SEED: u64 = 31;
/// Collapse = goodput sustained below this fraction of the pre-wave
/// baseline through the end of the run.
const COLLAPSE_FRACTION: f64 = 0.6;

/// One arm's instrumented run.
struct ArmRun {
    goodput: Vec<(f64, f64)>,
    fast_burn: Vec<(f64, f64)>,
    journal: Vec<obs::JournalEntry>,
    budget_remaining: f64,
    crowd_goodput: f64,
}

/// The two arms: no control, and TopFull with fast MIMD steps.
#[derive(Clone, Copy)]
enum Arm {
    Uncontrolled,
    TopFullFast,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Uncontrolled => "no-control",
            Arm::TopFullFast => "topfull-mimd(0.5)",
        }
    }

    fn controller(self) -> Box<dyn Controller> {
        match self {
            Arm::Uncontrolled => Box::new(NoControl),
            Arm::TopFullFast => Box::new(TopFull::new(
                TopFullConfig::default().with_mimd_steps(0.5, 0.2),
            )),
        }
    }
}

fn run_one(arm: Arm) -> ArmRun {
    let (ob, engine) = boutique_open_loop(
        |ob| {
            vec![
                (
                    ob.getproduct,
                    RateSchedule::steps(vec![
                        (SimTime::ZERO, BASELINE_RPS),
                        (SimTime::from_secs(PRECURSOR_AT), PRECURSOR_RPS),
                        (SimTime::from_secs(PRECURSOR_END), BASELINE_RPS),
                        (SimTime::from_secs(CROWD_AT), CROWD_RPS),
                    ]),
                ),
                (ob.postcheckout, RateSchedule::constant(BASELINE_RPS)),
                (ob.getcart, RateSchedule::constant(200.0)),
                (ob.postcart, RateSchedule::constant(200.0)),
                (ob.emptycart, RateSchedule::constant(200.0)),
            ]
        },
        SEED,
    );
    let gp = ob.getproduct;
    let mut h = Harness::new(engine, arm.controller());
    // Tick-by-tick so the burn-rate series can be probed as it evolves
    // (the harness feeds the monitor at each control tick).
    let mut fast_burn = Vec::new();
    for t in 1..=RUN_SECS {
        h.run_until(SimTime::from_secs(t));
        let sig = h.slo_monitor().signal(gp.idx(), t as f64);
        fast_burn.push((t as f64, sig.as_ref().map(|s| s.fast_burn).unwrap_or(0.0)));
    }
    let budget_remaining = h
        .slo_monitor()
        .signal(gp.idx(), RUN_SECS as f64)
        .map(|s| s.budget_remaining)
        .unwrap_or(1.0);
    let goodput = h.result().goodput_series(gp);
    let crowd_goodput = h
        .result()
        .mean_goodput_api(gp, CROWD_AT as f64 + 3.0, RUN_SECS as f64);
    ArmRun {
        goodput,
        fast_burn,
        journal: h.journal().snapshot(),
        budget_remaining,
        crowd_goodput,
    }
}

/// First page-severity `SloBurn` journal time, if any.
fn first_page(journal: &[obs::JournalEntry]) -> Option<f64> {
    journal
        .iter()
        .filter_map(|e| match e {
            obs::JournalEntry::SloBurn { t, to, .. } if to == "page" => Some(*t),
            _ => None,
        })
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.min(t)))
        })
}

/// First tick after which goodput stays below `threshold` through the
/// end of the run (a transient dip that recovers is not a collapse).
fn sustained_collapse(series: &[(f64, f64)], threshold: f64) -> Option<f64> {
    let mut collapse = None;
    for &(t, v) in series {
        if v < threshold {
            collapse.get_or_insert(t);
        } else {
            collapse = None;
        }
    }
    collapse
}

pub fn run() {
    let mut r = Report::new(
        "slo",
        "Extension: burn-rate page leads flash-crowd goodput collapse",
    );
    let mut results = crate::runner::run_over([Arm::Uncontrolled, Arm::TopFullFast], |arm| {
        (arm.label(), run_one(arm))
    });
    let topfull = results.pop().expect("topfull arm");
    let uncontrolled = results.pop().expect("no-control arm");

    let baseline = {
        let pre: Vec<f64> = uncontrolled
            .1
            .goodput
            .iter()
            .filter(|(t, _)| (3.0..PRECURSOR_AT as f64).contains(t))
            .map(|(_, v)| *v)
            .collect();
        simnet::stats::mean(&pre)
    };
    let threshold = COLLAPSE_FRACTION * baseline;
    let page_t = first_page(&uncontrolled.1.journal);
    let collapse_t = sustained_collapse(&uncontrolled.1.goodput, threshold);
    let lead = match (page_t, collapse_t) {
        (Some(p), Some(c)) => c - p,
        _ => f64::NAN,
    };

    r.compare(
        "uncontrolled: page lead over collapse (ticks)",
        "≥2 (alert fires before the outage)",
        f1(lead),
        "s",
    );
    r.compare(
        "uncontrolled: first page-severity SloBurn",
        format!("≈{PRECURSOR_AT}–{PRECURSOR_END} (precursor wave)"),
        page_t.map(f1).unwrap_or_else(|| "never".into()),
        "s",
    );
    r.compare(
        "uncontrolled: sustained goodput collapse",
        format!("≥{CROWD_AT} (full crowd)"),
        collapse_t.map(f1).unwrap_or_else(|| "never".into()),
        "s",
    );
    r.compare(
        "topfull ÷ uncontrolled crowd-phase goodput",
        ">1x (entry shedding averts the crash loop)",
        ratio(
            topfull.1.crowd_goodput,
            uncontrolled.1.crowd_goodput.max(1.0),
        ),
        "",
    );

    let pages = |j: &[obs::JournalEntry]| {
        j.iter()
            .filter(|e| matches!(e, obs::JournalEntry::SloBurn { to, .. } if to == "page"))
            .count()
    };
    let mut rows = Vec::new();
    for (label, arm) in [(uncontrolled.0, &uncontrolled.1), (topfull.0, &topfull.1)] {
        rows.push(vec![
            label.into(),
            f1(arm.crowd_goodput),
            format!("{:.3}", arm.budget_remaining),
            pages(&arm.journal).to_string(),
        ]);
    }
    r.table(
        "getproduct by arm",
        &[
            "arm",
            "crowd goodput (rps)",
            "budget remaining",
            "page entries",
        ],
        rows,
    );

    r.series("no-control getproduct goodput", uncontrolled.1.goodput);
    r.series("no-control getproduct fast-burn", uncontrolled.1.fast_burn);
    r.series("topfull getproduct goodput", topfull.1.goodput);
    r.series("topfull getproduct fast-burn", topfull.1.fast_burn);

    r.note(format!(
        "collapse = goodput sustained below {COLLAPSE_FRACTION} × the {}-rps pre-wave \
         baseline ({threshold:.0} rps) through the end of the run; the precursor wave's \
         queue-overflow failures spend budget while served goodput holds, which is \
         exactly the gap a point-in-time p99 dashboard misses",
        f1(baseline),
    ));
    r.note(
        "rejected (never-admitted) requests are neither good nor bad: the TopFull arm \
         sheds at the entry point, so its budget stays intact while the uncontrolled \
         arm burns through the run's budget and crash-loops the bottleneck",
    );
    // The uncontrolled arm's journal carries the SloBurn escalations the
    // figure is about; `topfull explain artifacts/results/slo.json`
    // renders them interleaved with the plane's window aggregates.
    r.journal(uncontrolled.1.journal);
    r.finish();
}
