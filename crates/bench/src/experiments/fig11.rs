//! Figure 11: per-API goodput with business priorities, DAGOR vs TopFull.
//!
//! "Among API 1, API 2, API 3, and API 4, the former APIs are assigned a
//! higher business priority than the latter APIs. … TopFull achieves
//! 2.60x higher goodput on average. With DAGOR, we observe that APIs with
//! lower business priority experience severe starvation. … TopFull serves
//! 1.58x more requests for API 1 …, 7.55x more for API 2 …, \[and\] 22.45x
//! more [for API 4]."

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{boutique_open_loop, Roster};
use cluster::RateSchedule;

const RUN_SECS: u64 = 120;
const MEASURE_FROM: f64 = 40.0;

/// Overload APIs 1–4 simultaneously with explicit business priorities
/// API1 > API2 > API3 > API4 (the paper assigns them for this
/// experiment). Returns per-API mean goodput.
fn run_one(roster: Roster, seed: u64) -> [f64; 4] {
    let (mut ob, _) = boutique_open_loop(|_| vec![], seed);
    for (i, api) in [ob.postcheckout, ob.getproduct, ob.getcart, ob.postcart]
        .into_iter()
        .enumerate()
    {
        ob.topology.api_mut(api).business = cluster::types::BusinessPriority(i as u8);
    }
    let engine = {
        let rates = vec![
            (ob.postcheckout, RateSchedule::constant(900.0)),
            (ob.getproduct, RateSchedule::constant(700.0)),
            (ob.getcart, RateSchedule::constant(700.0)),
            (ob.postcart, RateSchedule::constant(700.0)),
        ];
        cluster::Engine::new(
            ob.topology.clone(),
            crate::scenarios::engine_config(seed),
            Box::new(cluster::OpenLoopWorkload::new(rates)),
        )
    };
    let apis = [ob.postcheckout, ob.getproduct, ob.getcart, ob.postcart];
    let mut h = roster.into_harness(engine);
    h.run_for_secs(RUN_SECS);
    let r = h.result();
    apis.map(|a| r.mean_goodput_api(a, MEASURE_FROM, RUN_SECS as f64))
}

pub fn run() {
    let mut r = Report::new(
        "fig11",
        "Per-API goodput with business priorities (DAGOR vs TopFull)",
    );
    let policy = models::policy_for("online-boutique");
    let mut runs = crate::runner::run_over(
        vec![Roster::Dagor { alpha: 0.05 }, Roster::TopFull(policy)],
        |roster| run_one(roster, 11),
    );
    let tf = runs.pop().expect("two runs");
    let dagor = runs.pop().expect("two runs");
    r.table(
        "avg goodput (rps); API1 highest priority",
        &["controller", "api1", "api2", "api3", "api4"],
        vec![
            vec![
                "dagor".into(),
                f1(dagor[0]),
                f1(dagor[1]),
                f1(dagor[2]),
                f1(dagor[3]),
            ],
            vec!["topfull".into(), f1(tf[0]), f1(tf[1]), f1(tf[2]), f1(tf[3])],
        ],
    );
    let avg_tf: f64 = tf.iter().sum::<f64>() / 4.0;
    let avg_dg: f64 = dagor.iter().sum::<f64>() / 4.0;
    r.compare(
        "TopFull / DAGOR average goodput",
        "2.60x",
        ratio(avg_tf, avg_dg),
        "",
    );
    r.compare(
        "API 1 (highest priority)",
        "1.58x",
        ratio(tf[0], dagor[0]),
        "",
    );
    r.compare("API 2", "7.55x", ratio(tf[1], dagor[1]), "");
    r.compare(
        "API 4 (lowest priority)",
        "22.45x",
        ratio(tf[3], dagor[3]),
        "",
    );
    r.note(
        "shape to hold: DAGOR starves low-priority APIs almost completely; \
         TopFull keeps them alive while preserving high-priority goodput",
    );
    r.finish();
}
