//! Gray-failure chaos: hardened vs unhardened control under a fault
//! schedule the paper's testbed never threw at TopFull.
//!
//! The schedule layers the fault plane's gray failures over a steady
//! Online Boutique workload: a slow-pod brownout of the product catalog,
//! a total telemetry dropout, multiplicative metric noise, a controller
//! stall, and stale observations. The *hardened* stack (safe-fallback
//! rate controller + harness watchdog) must shed load during the
//! brownout, hold limits steady while blind, and recover goodput once
//! the faults clear; the *unhardened* stack — the paper-faithful loop —
//! is the baseline showing what the robustness layer buys.

use crate::report::{f1, ratio, Report};
use crate::scenarios::engine_config;
use apps::OnlineBoutique;
use cluster::{Engine, FaultSpec, Harness, OpenLoopWorkload, RateSchedule, WatchdogConfig};
use simnet::{SimDuration, SimTime};
use topfull::{TopFull, TopFullConfig};

const RUN_SECS: u64 = 240;
/// Faults are active inside [40, 130); measurement windows around them.
const PRE_FAULT: (f64, f64) = (20.0, 40.0);
const DURING_FAULT: (f64, f64) = (45.0, 130.0);
const POST_FAULT: (f64, f64) = (200.0, 240.0);

/// The chaos schedule: overlapping gray failures (see module docs).
pub fn fault_schedule(ob: &OnlineBoutique) -> Vec<FaultSpec> {
    vec![
        FaultSpec::SlowPods {
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(70),
            service: ob.productcatalog,
            factor: 8.0,
        },
        FaultSpec::TelemetryDropout {
            from: SimTime::from_secs(60),
            until: SimTime::from_secs(90),
            service: None,
        },
        FaultSpec::TelemetryNoise {
            from: SimTime::from_secs(90),
            until: SimTime::from_secs(110),
            sigma: 0.5,
        },
        FaultSpec::ControllerStall {
            from: SimTime::from_secs(100),
            until: SimTime::from_secs(112),
        },
        FaultSpec::TelemetryStaleness {
            from: SimTime::from_secs(115),
            until: SimTime::from_secs(130),
            by: SimDuration::from_secs(10),
        },
    ]
}

/// Steady workload kept just under the boutique's crash-loop line so the
/// faults — not the baseline — create the overload.
fn engine(seed: u64) -> (OnlineBoutique, Engine) {
    let ob = OnlineBoutique::build();
    let rates = vec![
        (
            ob.getproduct,
            RateSchedule::steps(vec![
                (SimTime::ZERO, 150.0),
                (SimTime::from_secs(15), 300.0),
            ]),
        ),
        (ob.getcart, RateSchedule::constant(100.0)),
        (ob.postcheckout, RateSchedule::constant(60.0)),
    ];
    let w = OpenLoopWorkload::new(rates);
    let mut engine = Engine::new(ob.topology.clone(), engine_config(seed), Box::new(w));
    engine.inject_faults(fault_schedule(&ob));
    (ob, engine)
}

/// (pre, during, post) goodput plus the timeline and watchdog stats.
struct ChaosOutcome {
    pre: f64,
    during: f64,
    post: f64,
    series: Vec<(f64, f64)>,
    stalled: u64,
    frozen: u64,
    decayed: u64,
    journal: Vec<obs::JournalEntry>,
}

fn run_one(hardened: bool, seed: u64) -> ChaosOutcome {
    let (_, eng) = engine(seed);
    let mut cfg = TopFullConfig::default().with_mimd();
    if hardened {
        cfg = cfg.hardened().with_rate_bounds(1.0, 10_000.0);
    }
    let tf = Box::new(TopFull::new(cfg));
    let mut h = if hardened {
        Harness::with_watchdog(eng, tf, WatchdogConfig::default())
    } else {
        Harness::new(eng, tf)
    };
    h.run_for_secs(RUN_SECS);
    let stats = h.watchdog_stats();
    let r = h.result();
    ChaosOutcome {
        pre: r.mean_total_goodput(PRE_FAULT.0, PRE_FAULT.1),
        during: r.mean_total_goodput(DURING_FAULT.0, DURING_FAULT.1),
        post: r.mean_total_goodput(POST_FAULT.0, POST_FAULT.1),
        series: r.total_goodput_series(),
        stalled: stats.stalled_ticks,
        frozen: stats.frozen_ticks,
        decayed: stats.decayed_ticks,
        journal: h.journal().snapshot(),
    }
}

pub fn run() {
    let mut r = Report::new(
        "chaos",
        "Gray-failure chaos: hardened vs unhardened control loop",
    );
    let mut runs = crate::runner::run_over(vec![false, true], |hardened| run_one(hardened, 11));
    let hard = runs.pop().expect("two runs");
    let plain = runs.pop().expect("two runs");
    r.series("unhardened", plain.series);
    r.series("hardened", hard.series);
    r.table(
        "total goodput (rps) around the fault window",
        &["stack", "pre-fault", "during", "post-fault", "post/pre"],
        vec![
            vec![
                "unhardened".into(),
                f1(plain.pre),
                f1(plain.during),
                f1(plain.post),
                f1(plain.post / plain.pre.max(1e-9)),
            ],
            vec![
                "hardened".into(),
                f1(hard.pre),
                f1(hard.during),
                f1(hard.post),
                f1(hard.post / hard.pre.max(1e-9)),
            ],
        ],
    );
    r.table(
        "hardened watchdog activity (control ticks)",
        &["stalled", "frozen", "decayed"],
        vec![vec![
            hard.stalled.to_string(),
            hard.frozen.to_string(),
            hard.decayed.to_string(),
        ]],
    );
    r.compare(
        "hardened post-fault recovery",
        "≥0.9 of pre-fault",
        f1(hard.post / hard.pre.max(1e-9)),
        "",
    );
    r.compare(
        "unhardened post-fault recovery",
        "reported",
        f1(plain.post / plain.pre.max(1e-9)),
        "",
    );
    r.note(format!(
        "during faults: hardened {} rps vs unhardened {} rps ({}) — the \
         watchdog freezes then decays limits while telemetry is dark, \
         trading fault-window throughput for finite bounded limits, a \
         stall-proof loop, and a ramped re-entry",
        f1(hard.during),
        f1(plain.during),
        ratio(hard.during, plain.during),
    ));
    // The hardened arm's decision journal: every detector transition,
    // re-clustering, rate action, fallback strike and watchdog event —
    // `topfull explain artifacts/results/chaos.json` renders it.
    r.journal(hard.journal);
    r.finish();
}
