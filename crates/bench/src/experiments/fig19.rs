//! Figure 19: sensitivity to VM startup time.
//!
//! "we emulated different VM startup times … we tested TopFull with 20s,
//! 40s, and 60s VM startup. … Both autoscaler standalone and TopFull
//! with autoscaler show higher average goodput when VM startup time is
//! reduced. Also, the sensitivity test shows that TopFull still shows up
//! to 1.52x higher average goodput compared to autoscaler standalone."

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use cluster::autoscaler::{HpaConfig, VmPoolConfig};
use cluster::{ClosedLoopWorkload, Engine, RateSchedule};
use simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 220;
const SURGE_AT: u64 = 20;
const SURGE_END: u64 = 180; // the paper's surge "lasted 160 seconds"

fn engine(vm_startup_secs: u64, seed: u64) -> Engine {
    let ob = apps::OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let users = RateSchedule::surge(
        400.0,
        4000.0,
        SimTime::from_secs(SURGE_AT),
        SimTime::from_secs(SURGE_END),
    );
    let w = ClosedLoopWorkload::new(weights, users, SimDuration::from_secs(1));
    let mut cfg = engine_config(seed);
    cfg.pod_startup = SimDuration::from_secs(20);
    let mut engine = Engine::new(ob.topology.clone(), cfg, Box::new(w));
    // A tight VM pool so scaling must wait for new VMs.
    engine.set_vm_pool(VmPoolConfig {
        vcpus_per_vm: 48,
        initial_vms: 1,
        max_vms: 10,
        vm_startup: SimDuration::from_secs(vm_startup_secs),
        vcpus_per_pod: 1.0,
    });
    engine.enable_hpa(HpaConfig::default());
    engine
}

fn measure(roster: Roster, vm_startup: u64, seed: u64) -> f64 {
    let mut h = roster.into_harness(engine(vm_startup, seed));
    h.run_for_secs(RUN_SECS);
    h.result()
        .mean_total_goodput(SURGE_AT as f64, SURGE_END as f64)
}

pub fn run() {
    let mut r = Report::new(
        "fig19",
        "Average goodput vs VM startup time (Online Boutique)",
    );
    let policy = models::policy_for("online-boutique");
    let startups = [20u64, 40, 60];
    let mut plan = crate::runner::RunPlan::new();
    for &startup in &startups {
        plan.submit(move || measure(Roster::None, startup, 19));
        let p = policy.clone();
        plan.submit(move || measure(Roster::TopFull(p), startup, 19));
    }
    let out = plan.run();
    let mut rows = Vec::new();
    let mut best_gain: f64 = 0.0;
    let mut solo_by_startup = Vec::new();
    for (&startup, pair) in startups.iter().zip(out.chunks(2)) {
        let (solo, tf) = (pair[0], pair[1]);
        best_gain = best_gain.max(if solo > 0.0 { tf / solo } else { 0.0 });
        solo_by_startup.push(solo);
        rows.push(vec![
            format!("{startup}s"),
            f1(solo),
            f1(tf),
            ratio(tf, solo),
        ]);
    }
    r.table(
        "avg goodput (rps) during surge",
        &["vm startup", "autoscaler-solo", "topfull", "gain"],
        rows,
    );
    r.compare(
        "max TopFull gain across startup times",
        "up to 1.52x",
        format!("{best_gain:.2}x"),
        "",
    );
    let monotone = solo_by_startup.windows(2).all(|w| w[0] >= w[1] * 0.95);
    r.compare(
        "goodput improves with faster VM startup",
        "yes",
        if monotone { "yes" } else { "no" },
        "",
    );
    r.finish();
}
