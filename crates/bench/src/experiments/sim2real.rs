//! Sim2Real: the same controller, virtual vs wall clock.
//!
//! Runs one Online Boutique surge scenario twice with an *identical*
//! TopFull controller configuration — once in the discrete-event
//! simulator, once against the live serving plane (`liveserve`: real
//! loopback TCP gateway, CPU-burning worker pool, wall-clock metric
//! windows) — and overlays the goodput and p99 trajectories on a
//! normalized time axis.
//!
//! What should match: the control *shape* — detect, cut, hold, recover,
//! release. What cannot match: absolute capacity. The live worker pool
//! shares one host core across all services (one worker thread per
//! service, burn divided by replica count), so the live plane saturates
//! at the *sum* of per-service CPU along the path, while the simulator
//! gives every service its own cores. The figure therefore reports each
//! plane's goodput normalized to its own pre-surge mean alongside the
//! raw series.

use crate::models;
use crate::report::{f1, Report};
use apps::OnlineBoutique;
use cluster::{
    Controller, Engine, EngineConfig, Harness, OpenLoopWorkload, RateSchedule, Topology,
};
use liveserve::{LiveConfig, LiveServer, LoadGen, OpenLoopArm};
use simnet::SimTime;
use std::time::Duration;
use topfull::{TopFull, TopFullConfig};

/// Simulated scenario length (virtual seconds).
const SIM_SECS: u64 = 120;
/// Live replay length (wall-clock seconds); schedules compress by
/// `LIVE_SECS / SIM_SECS`.
const LIVE_SECS: u64 = 30;
/// Baseline getproduct rate — under capacity on both planes.
const BASE_RPS: f64 = 150.0;
/// Surge rate: 3× the simulator's recommendation-service capacity
/// (≈500 rps) and ≈5× the live plane's single-core capacity.
const SURGE_RPS: f64 = 1500.0;

/// The shared controller: the cached Sim2Real-transferred policy when
/// present, the MIMD ablation otherwise. Never trains here — `figures
/// train` owns that.
fn controller() -> (Box<dyn Controller>, &'static str) {
    match models::load("transfer_ob") {
        Some(policy) => (
            Box::new(TopFull::new(TopFullConfig::default().with_rl(policy))),
            "topfull-rl(transfer_ob)",
        ),
        None => (
            Box::new(TopFull::new(TopFullConfig::default().with_mimd())),
            "topfull-mimd (no cached policy)",
        ),
    }
}

/// `(t, rps)` surge schedule over a horizon of `secs`.
fn schedule(secs: u64) -> [(f64, f64); 3] {
    let t = secs as f64;
    [
        (0.0, BASE_RPS),
        (t / 3.0, SURGE_RPS),
        (2.0 * t / 3.0, BASE_RPS),
    ]
}

struct Arm {
    label: &'static str,
    horizon_secs: f64,
    /// getproduct `(t, goodput)`.
    goodput: Vec<(f64, f64)>,
    /// getproduct `(t, p99 seconds)`.
    p99: Vec<(f64, f64)>,
}

impl Arm {
    fn mean_goodput(&self, from: f64, to: f64) -> f64 {
        let xs: Vec<f64> = self
            .goodput
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        simnet::stats::mean(&xs)
    }

    /// Seconds from surge end until goodput first regains `frac` of the
    /// pre-surge mean (`None` = never within the run).
    fn recovery_secs(&self, frac: f64) -> Option<f64> {
        let surge_end = 2.0 * self.horizon_secs / 3.0;
        let pre = self.mean_goodput(self.horizon_secs / 6.0, self.horizon_secs / 3.0);
        self.goodput
            .iter()
            .find(|(t, v)| *t >= surge_end && *v >= frac * pre)
            .map(|(t, _)| t - surge_end)
    }

    fn normalized(&self, series: &[(f64, f64)]) -> Vec<(f64, f64)> {
        series
            .iter()
            .map(|(t, v)| (t / self.horizon_secs, *v))
            .collect()
    }
}

fn sim_arm(topo: Topology, api: usize) -> Arm {
    let steps = schedule(SIM_SECS)
        .iter()
        .map(|&(t, v)| (SimTime::from_nanos((t * 1e9) as u64), v))
        .collect();
    let workload = Box::new(OpenLoopWorkload::new(vec![(
        cluster::ApiId(api as u32),
        RateSchedule::steps(steps),
    )]));
    let engine = Engine::new(topo, EngineConfig::default(), workload);
    let (ctrl, _) = controller();
    let mut h = Harness::new(engine, ctrl);
    h.run_for_secs(SIM_SECS);
    let r = h.result();
    Arm {
        label: "sim",
        horizon_secs: SIM_SECS as f64,
        goodput: r.goodput_series(cluster::ApiId(api as u32)),
        p99: r
            .samples
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.p99[api]))
            .collect(),
    }
}

fn live_arm(topo: &Topology, api: usize) -> Result<Arm, String> {
    let cfg = LiveConfig {
        slo: Duration::from_secs(1),
        control_interval: Duration::from_millis(250),
        cpu_scale: 1.0,
        ..LiveConfig::default()
    };
    let mut server = LiveServer::start(topo, cfg).map_err(|e| format!("live server: {e}"))?;
    let scale = LIVE_SECS as f64 / SIM_SECS as f64;
    let rate_steps = schedule(SIM_SECS)
        .iter()
        .map(|&(t, v)| (t * scale, v))
        .collect();
    let arm = OpenLoopArm {
        api,
        rate_steps,
        key_space: 0,
    };
    let gen = LoadGen::start(server.addr(), None, vec![arm])
        .map_err(|e| format!("load generator: {e}"))?;
    let (mut ctrl, _) = controller();
    let result = server.run(ctrl.as_mut(), Duration::from_secs(LIVE_SECS));
    gen.stop();
    server.shutdown();
    Ok(Arm {
        label: "live",
        horizon_secs: LIVE_SECS as f64,
        goodput: result.goodput_series(api),
        p99: result.p99_series(api),
    })
}

pub fn run() {
    let mut r = Report::new(
        "sim2real",
        "Sim2Real: live TCP serving plane vs simulator, same controller",
    );
    let ob = OnlineBoutique::build();
    let api = ob.getproduct.idx();
    let (_, ctrl_label) = controller();
    r.note(format!(
        "controller: {ctrl_label}; getproduct open-loop surge {BASE_RPS}→{SURGE_RPS}→{BASE_RPS} rps; \
         sim horizon {SIM_SECS}s virtual, live horizon {LIVE_SECS}s wall clock (schedule compressed 4x)"
    ));

    let sim = sim_arm(ob.topology.clone(), api);
    let live = match live_arm(&ob.topology, api) {
        Ok(a) => a,
        Err(e) => {
            r.note(format!("live arm failed to start: {e}"));
            r.finish();
            return;
        }
    };

    let mut rows = Vec::new();
    for arm in [&sim, &live] {
        r.series(
            &format!("{} getproduct goodput (rps vs normalized t)", arm.label),
            arm.normalized(&arm.goodput),
        );
        r.series(
            &format!("{} getproduct p99 (s vs normalized t)", arm.label),
            arm.normalized(&arm.p99),
        );
        let pre = arm.mean_goodput(arm.horizon_secs / 6.0, arm.horizon_secs / 3.0);
        let surge = arm.mean_goodput(arm.horizon_secs / 3.0, 2.0 * arm.horizon_secs / 3.0);
        let recovery = arm.recovery_secs(0.8);
        rows.push(vec![
            arm.label.to_string(),
            f1(pre),
            f1(surge),
            recovery.map_or("never".into(), f1),
        ]);
    }
    r.table(
        "per-plane control summary (recovery target: 80% of pre-surge within 10s wall)",
        &[
            "plane",
            "pre-surge goodput (rps)",
            "goodput during surge (rps)",
            "recovery after surge end (s)",
        ],
        rows,
    );
    r.note(
        "caveat: single-vCPU host — the live worker pool multiplexes every service onto one \
         core, so live absolute capacity is the path's summed CPU (≈270 rps for getproduct), \
         not the simulator's per-service replica capacity (≈500 rps at recommendationservice). \
         Compare control shape (cut/hold/recover), not raw magnitudes.",
    );
    r.finish();
}
