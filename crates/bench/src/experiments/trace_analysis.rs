//! §2 + §6.4 trace analyses: starvation vulnerability, clustering
//! scalability, and the "surges create multiple overloads" measurement.
//!
//! * §2: "44.4% of APIs among those involved in overloaded microservices
//!   were potentially vulnerable to starvation"; "it creates 3.4
//!   overloaded microservices on average" for single-API surges on
//!   Online Boutique.
//! * §6.4: "59% of [overloaded services] do not share any overlapping
//!   APIs … the remaining 41% … forming an average of 2.38
//!   microservices"; "the initial problem with 68 overloaded
//!   microservices … is divided into 57 independent clusters with each
//!   sub-problem containing 1.19 constraints on average."

use crate::report::{f1, Report};
use crate::scenarios::engine_config;
use apps::trace::{SyntheticTrace, OVERLOAD_THRESHOLD};
use apps::OnlineBoutique;
use cluster::types::ServiceId;
use cluster::{Engine, OpenLoopWorkload};
use simnet::SimTime;
use topfull::cluster_apis;

/// §2 empirical check: surge one Online Boutique API at a time and count
/// services that exceed the overload threshold.
fn overloads_per_single_api_surge() -> f64 {
    let ob = OnlineBoutique::build();
    let mut counts = Vec::new();
    for api in ob.apis() {
        let w = OpenLoopWorkload::constant(vec![(api, 4000.0)]);
        let mut engine = Engine::new(ob.topology.clone(), engine_config(2), Box::new(w));
        engine.run_until(SimTime::from_secs(30));
        let obs = engine.latest_observation().expect("ran 30s");
        counts.push(obs.overloaded_services(OVERLOAD_THRESHOLD).len() as f64);
    }
    simnet::stats::mean(&counts)
}

pub fn run() {
    let mut r = Report::new("trace_analysis", "Alibaba-trace analyses (§2, §6.4)");
    let tr = SyntheticTrace::generate(1);
    let over = tr.overloaded(OVERLOAD_THRESHOLD);
    r.compare("microservices in trace", "23,481", tr.utilization.len(), "");
    r.compare("overloaded at analyzed instant", 68, over.len(), "");

    // §6.4 sharing stats.
    let sharing = tr.sharing_analysis(OVERLOAD_THRESHOLD);
    r.compare(
        "overloaded sharing no APIs (isolated)",
        "59%",
        format!("{:.0}%", sharing.isolated_fraction() * 100.0),
        "",
    );
    r.compare(
        "mean sharing-group size",
        "2.38",
        format!("{:.2}", sharing.mean_group_size()),
        "",
    );

    // Clustering through TopFull's own production clustering code.
    let paths: Vec<Vec<ServiceId>> = tr
        .api_paths
        .iter()
        .map(|p| p.iter().map(|s| ServiceId(*s)).collect())
        .collect();
    let over_sids: Vec<ServiceId> = over.iter().map(|s| ServiceId(*s)).collect();
    let clusters = cluster_apis(&paths, &over_sids);
    r.compare("independent clusters", 57, clusters.len(), "");
    let constraints: f64 = clusters.iter().map(|c| c.overloaded.len() as f64).sum();
    r.compare(
        "constraints per cluster",
        1.19,
        format!("{:.2}", constraints / clusters.len() as f64),
        "",
    );

    // §2 starvation vulnerability.
    let st = tr.starvation_analysis(OVERLOAD_THRESHOLD);
    r.compare(
        "starvation-vulnerable APIs",
        "44.4%",
        format!("{:.1}%", st.vulnerable_fraction() * 100.0),
        "",
    );

    // §2 surge experiment on Online Boutique.
    let avg_over = overloads_per_single_api_surge();
    r.compare(
        "overloaded services per single-API surge (Online Boutique)",
        3.4,
        f1(avg_over),
        "",
    );
    r.finish();
}
