//! Extension ablation: the three controller refinements DESIGN.md §5
//! documents on top of the paper's Algorithm 1 (no paper counterpart).
//!
//! 1. **Multi-target per cluster** — act on every overloaded service in
//!    a cluster each interval (fewest-API order, claimed candidates)
//!    instead of literally one at a time. Without it, a target the RL
//!    holds hovering at the detection threshold starves control of every
//!    other bottleneck in the cluster.
//! 2. **Contributing-only cuts** — Algorithm 1's "lowest priority
//!    candidate" may be idle or already at the floor; cutting it relieves
//!    nothing while the actual offender keeps hammering.
//! 3. **Chiu–Jain group steps** — proportional cuts + equal-share raises
//!    converge same-priority APIs toward an even split; equal factors in
//!    both directions freeze the transient's skew.
//!
//! Each row disables exactly one refinement on the Train Ticket and
//! Online Boutique overload scenarios and reports the goodput cost.

use crate::models;
use crate::report::{f1, Report};
use apps::{OnlineBoutique, TrainTicket};
use cluster::{ClosedLoopWorkload, Engine, Harness, OpenLoopWorkload};
use rl::policy::PolicyValue;
use simnet::SimDuration;
use topfull::{TopFull, TopFullConfig};

const RUN_SECS: u64 = 120;
const MEASURE_FROM: f64 = 30.0;

fn trainticket_engine(seed: u64) -> Engine {
    let tt = TrainTicket::build();
    let rates: Vec<(cluster::ApiId, f64)> = tt.apis().iter().map(|a| (*a, 1100.0)).collect();
    Engine::new(
        tt.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(OpenLoopWorkload::constant(rates)),
    )
}

fn boutique_engine(seed: u64) -> Engine {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let w = ClosedLoopWorkload::fixed(weights, 2600, SimDuration::from_secs(1));
    Engine::new(
        ob.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(w),
    )
}

/// Getproduct surges alone while idle lower-priority APIs share its
/// Recommendation bottleneck: verbatim Algorithm 1 keeps "cutting" the
/// idle getcart and never touches the offender — the scenario
/// refinement 2 exists for. Returns the surging API's goodput.
fn idle_lowprio_offender_goodput(cfg: TopFullConfig, seed: u64) -> f64 {
    let mut ob = OnlineBoutique::build();
    for (i, api) in ob.apis().into_iter().enumerate() {
        ob.topology.api_mut(api).business = cluster::types::BusinessPriority(i as u8);
    }
    let rates = vec![(ob.getproduct, 1200.0)];
    let engine = Engine::new(
        ob.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(OpenLoopWorkload::constant(rates)),
    );
    let mut h = Harness::new(engine, Box::new(TopFull::new(cfg)));
    h.run_for_secs(RUN_SECS);
    h.result()
        .mean_goodput_api(ob.getproduct, MEASURE_FROM, RUN_SECS as f64)
}

/// Two equal-priority APIs with 3:1 offered skew on the shared
/// Recommendation bottleneck: the scenario refinement 3 (fair group
/// steps) exists for. Returns `(minority goodput, majority/minority)`.
fn skewed_pair_split(cfg: TopFullConfig, seed: u64) -> (f64, f64) {
    let ob = OnlineBoutique::build();
    let rates = vec![(ob.getproduct, 900.0), (ob.getcart, 300.0)];
    let engine = Engine::new(
        ob.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(OpenLoopWorkload::constant(rates)),
    );
    let mut h = Harness::new(engine, Box::new(TopFull::new(cfg)));
    h.run_for_secs(300);
    let gp = h.result().mean_goodput_api(ob.getproduct, 200.0, 300.0);
    let gc = h.result().mean_goodput_api(ob.getcart, 200.0, 300.0);
    (gc.min(gp), gp.max(gc) / gp.min(gc).max(1.0))
}

fn measure(engine: Engine, cfg: TopFullConfig) -> f64 {
    let mut h = Harness::new(engine, Box::new(TopFull::new(cfg)));
    h.run_for_secs(RUN_SECS);
    h.result().mean_total_goodput(MEASURE_FROM, RUN_SECS as f64)
}

fn variants(policy: &PolicyValue) -> Vec<(&'static str, TopFullConfig)> {
    let base = || TopFullConfig::default().with_rl(policy.clone());
    vec![
        ("all refinements (default)", base()),
        (
            "single target per cluster",
            TopFullConfig {
                single_target_per_cluster: true,
                ..base()
            },
        ),
        (
            "verbatim Algorithm 1 cuts",
            TopFullConfig {
                restrict_cuts_to_contributing: false,
                ..base()
            },
        ),
        (
            "multiplicative group raises",
            TopFullConfig {
                fair_group_steps: false,
                ..base()
            },
        ),
    ]
}

pub fn run() {
    let mut r = Report::new(
        "refinements",
        "Extension: ablating the DESIGN.md §5 controller refinements",
    );
    type AppRow = (&'static str, fn(u64) -> Engine, &'static str);
    let apps: Vec<AppRow> = vec![
        ("train-ticket", trainticket_engine, "train-ticket"),
        ("online-boutique", boutique_engine, "online-boutique"),
    ];
    let mut rows = Vec::new();
    for (app, mk, policy_key) in apps {
        let policy = models::policy_for(policy_key);
        let mut baseline = 0.0;
        for (i, (label, cfg)) in variants(&policy).into_iter().enumerate() {
            let goodput = measure(mk(2020), cfg);
            if i == 0 {
                baseline = goodput;
            }
            let delta = if baseline > 0.0 {
                format!("{:+.1}%", (goodput / baseline - 1.0) * 100.0)
            } else {
                "n/a".into()
            };
            rows.push(vec![app.to_string(), label.to_string(), f1(goodput), delta]);
        }
    }
    r.table(
        "avg total goodput (rps) with one refinement disabled",
        &["app", "variant", "goodput", "vs default"],
        rows,
    );

    // Focused mechanism demos: each disabled refinement against the
    // scenario shape it exists for.
    let policy = models::policy_for("online-boutique");
    let base = TopFullConfig::default().with_rl(policy.clone());
    let verbatim = TopFullConfig {
        restrict_cuts_to_contributing: false,
        ..base.clone()
    };
    let refined_g = idle_lowprio_offender_goodput(base.clone(), 2021);
    let verbatim_g = idle_lowprio_offender_goodput(verbatim, 2021);
    r.table(
        "refinement 2: surging API goodput when idle low-priority APIs share its bottleneck",
        &["variant", "offender goodput (rps)"],
        vec![
            vec!["contributing-only cuts (default)".into(), f1(refined_g)],
            vec!["verbatim Algorithm 1".into(), f1(verbatim_g)],
        ],
    );
    let unfair = TopFullConfig {
        fair_group_steps: false,
        ..base.clone()
    };
    let (fair_min, fair_ratio) = skewed_pair_split(base, 2022);
    let (unfair_min, unfair_ratio) = skewed_pair_split(unfair, 2022);
    r.table(
        "refinement 3: equal-priority split under 3:1 offered skew (shared bottleneck)",
        &["variant", "minority API goodput (rps)", "majority/minority"],
        vec![
            vec![
                "Chiu-Jain group steps (default)".into(),
                f1(fair_min),
                format!("{fair_ratio:.2}x"),
            ],
            vec![
                "multiplicative both ways".into(),
                f1(unfair_min),
                format!("{unfair_ratio:.2}x"),
            ],
        ],
    );
    r.note(
        "no paper counterpart: these are the engineering choices this \
         reproduction had to make where the paper's prose is ambiguous \
         (see DESIGN.md §5); negative deltas justify the defaults",
    );
    r.finish();
}
