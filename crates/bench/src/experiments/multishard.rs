//! Multi-shard overlay: one logical controller over N gateway shards.
//!
//! Runs the Online Boutique getproduct surge four times — simulator and
//! live serving plane, each with a single gateway and with three shards
//! under the sharded control plane — and overlays the goodput
//! trajectories. The acceptance bar: sharding is a *deployment* change,
//! not a *control* change, so the 3-shard arms must track their
//! single-gateway twins within noise while the journal shows the extra
//! aggregation/split machinery at work.

use crate::report::{f1, Report};
use apps::OnlineBoutique;
use cluster::{Engine, EngineConfig, Harness, OpenLoopWorkload, RateSchedule, Topology};
use liveserve::{LiveConfig, LiveServer, LoadGen, OpenLoopArm, ShardedLive, ShardedLiveConfig};
use simnet::SimTime;
use std::time::Duration;
use topfull::{ShardedConfig, ShardedHarness, TopFull, TopFullConfig};

/// Simulated scenario length (virtual seconds).
const SIM_SECS: u64 = 120;
/// Live replay length (wall-clock seconds).
const LIVE_SECS: u64 = 36;
/// Baseline getproduct rate — under capacity on both planes.
const BASE_RPS: f64 = 150.0;
/// Surge rate: ~3× the recommendation-service capacity.
const SURGE_RPS: f64 = 1500.0;
/// Shard count for the sharded arms.
const SHARDS: usize = 3;

fn controller() -> Box<dyn cluster::Controller> {
    Box::new(TopFull::new(TopFullConfig::default().with_mimd()))
}

/// `(t, rps)` surge schedule over a horizon of `secs`.
fn schedule(secs: u64) -> [(f64, f64); 3] {
    let t = secs as f64;
    [
        (0.0, BASE_RPS),
        (t / 3.0, SURGE_RPS),
        (2.0 * t / 3.0, BASE_RPS),
    ]
}

struct Arm {
    label: String,
    horizon_secs: f64,
    /// getproduct `(t, goodput)`.
    goodput: Vec<(f64, f64)>,
}

impl Arm {
    fn mean_goodput(&self, from: f64, to: f64) -> f64 {
        let xs: Vec<f64> = self
            .goodput
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        simnet::stats::mean(&xs)
    }

    fn normalized(&self) -> Vec<(f64, f64)> {
        self.goodput
            .iter()
            .map(|(t, v)| (t / self.horizon_secs, *v))
            .collect()
    }
}

fn sim_workload(topo: &Topology, api: usize) -> Engine {
    let steps = schedule(SIM_SECS)
        .iter()
        .map(|&(t, v)| (SimTime::from_nanos((t * 1e9) as u64), v))
        .collect();
    let workload = Box::new(OpenLoopWorkload::new(vec![(
        cluster::ApiId(api as u32),
        RateSchedule::steps(steps),
    )]));
    Engine::new(topo.clone(), EngineConfig::default(), workload)
}

fn sim_single(topo: &Topology, api: usize) -> Arm {
    let mut h = Harness::new(sim_workload(topo, api), controller());
    h.run_for_secs(SIM_SECS);
    Arm {
        label: "sim 1-gateway".into(),
        horizon_secs: SIM_SECS as f64,
        goodput: h.result().goodput_series(cluster::ApiId(api as u32)),
    }
}

fn sim_sharded(topo: &Topology, api: usize) -> (Arm, Vec<obs::JournalEntry>, String) {
    let cfg = ShardedConfig::uniform(SHARDS);
    let mut h =
        ShardedHarness::new(sim_workload(topo, api), controller(), cfg).expect("valid config");
    h.run_for_secs(SIM_SECS);
    let plane = h.plane_stats();
    let detail = format!(
        "sim 3-shard plane: merges={} strike-outs={} redistributions={}",
        plane.merges, plane.strike_outs, plane.redistributions
    );
    let journal = h.journal().snapshot();
    (
        Arm {
            label: format!("sim {SHARDS}-shard"),
            horizon_secs: SIM_SECS as f64,
            goodput: h.result().goodput_series(cluster::ApiId(api as u32)),
        },
        journal,
        detail,
    )
}

fn live_rate_steps() -> Vec<(f64, f64)> {
    let scale = LIVE_SECS as f64 / SIM_SECS as f64;
    schedule(SIM_SECS)
        .iter()
        .map(|&(t, v)| (t * scale, v))
        .collect()
}

fn live_cfg() -> LiveConfig {
    LiveConfig {
        slo: Duration::from_secs(1),
        control_interval: Duration::from_millis(250),
        cpu_scale: 1.0,
        ..LiveConfig::default()
    }
}

fn live_single(topo: &Topology, api: usize) -> Result<Arm, String> {
    let mut server =
        LiveServer::start(topo, live_cfg()).map_err(|e| format!("live server: {e}"))?;
    let arms = vec![OpenLoopArm {
        api,
        rate_steps: live_rate_steps(),
        key_space: 0,
    }];
    let gen =
        LoadGen::start(server.addr(), None, arms).map_err(|e| format!("load generator: {e}"))?;
    let mut ctrl = controller();
    let result = server.run(ctrl.as_mut(), Duration::from_secs(LIVE_SECS));
    gen.stop();
    server.shutdown();
    Ok(Arm {
        label: "live 1-gateway".into(),
        horizon_secs: LIVE_SECS as f64,
        goodput: result.goodput_series(api),
    })
}

fn live_sharded(topo: &Topology, api: usize) -> Result<(Arm, String), String> {
    let cfg = ShardedLiveConfig::new(SHARDS, live_cfg());
    let arms = vec![OpenLoopArm {
        api,
        rate_steps: live_rate_steps(),
        key_space: 0,
    }];
    let mut fleet =
        ShardedLive::start(topo, cfg, None, arms).map_err(|e| format!("sharded fleet: {e}"))?;
    let mut ctrl = controller();
    let result = fleet.run(ctrl.as_mut(), Duration::from_secs(LIVE_SECS));
    let sharded = fleet.shutdown();
    let detail = format!(
        "live 3-shard plane: merges={} strike-outs={} redistributions={}",
        sharded.plane_stats.merges,
        sharded.plane_stats.strike_outs,
        sharded.plane_stats.redistributions
    );
    Ok((
        Arm {
            label: format!("live {SHARDS}-shard"),
            horizon_secs: LIVE_SECS as f64,
            goodput: result.goodput_series(api),
        },
        detail,
    ))
}

pub fn run() {
    let mut r = Report::new(
        "multishard",
        "Sharded control plane: 3 gateway shards vs 1, simulator and live",
    );
    let ob = OnlineBoutique::build();
    let api = ob.getproduct.idx();
    r.note(format!(
        "topfull-mimd; getproduct open-loop surge {BASE_RPS}→{SURGE_RPS}→{BASE_RPS} rps; \
         sim horizon {SIM_SECS}s virtual, live horizon {LIVE_SECS}s wall clock; sharded arms \
         run {SHARDS} gateways whose observations merge into one logical controller"
    ));

    let single = sim_single(&ob.topology, api);
    let (sharded, journal, sim_detail) = sim_sharded(&ob.topology, api);
    r.note(sim_detail);
    r.journal(journal);

    let mut arms = vec![single, sharded];
    match live_single(&ob.topology, api) {
        Ok(a) => arms.push(a),
        Err(e) => r.note(format!("live 1-gateway arm failed: {e}")),
    }
    match live_sharded(&ob.topology, api) {
        Ok((a, detail)) => {
            r.note(detail);
            arms.push(a);
        }
        Err(e) => r.note(format!("live {SHARDS}-shard arm failed: {e}")),
    }

    let mut rows = Vec::new();
    for arm in &arms {
        r.series(
            &format!("{} getproduct goodput (rps vs normalized t)", arm.label),
            arm.normalized(),
        );
        let h = arm.horizon_secs;
        rows.push(vec![
            arm.label.clone(),
            f1(arm.mean_goodput(h / 6.0, h / 3.0)),
            f1(arm.mean_goodput(h / 3.0, 2.0 * h / 3.0)),
            f1(arm.mean_goodput(5.0 * h / 6.0, h)),
        ]);
    }
    r.table(
        "per-arm goodput means (rps)",
        &["arm", "pre-surge", "during surge", "post-surge"],
        rows,
    );

    // The acceptance check: per plane, 3-shard surge goodput within
    // noise of the single gateway.
    for plane in ["sim", "live"] {
        let pick = |suffix: &str| {
            arms.iter()
                .find(|a| a.label == format!("{plane} {suffix}"))
                .map(|a| a.mean_goodput(a.horizon_secs / 3.0, 2.0 * a.horizon_secs / 3.0))
        };
        if let (Some(one), Some(n)) = (pick("1-gateway"), pick(&format!("{SHARDS}-shard"))) {
            let delta = (n - one).abs() / one.max(1.0) * 100.0;
            r.note(format!(
                "{plane}: surge goodput 1-gateway {one:.1} rps vs {SHARDS}-shard {n:.1} rps \
                 (delta {delta:.1}%)"
            ));
        }
    }
    r.note(
        "caveat: single-vCPU host — the 3-shard live arm runs three full worker pools on one \
         core, so deep-overload goodput and recovery pace carry extra contention the simulator \
         (and a real multi-host fleet) would not see. Compare pre/post steady state and control \
         shape; the sim arms isolate the control-plane question and overlay exactly.",
    );
    r.finish();
}
