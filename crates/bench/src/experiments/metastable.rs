//! Extension experiment: metastable retry storms vs the request-plane
//! resilience layer (not a paper figure).
//!
//! A retry storm is the canonical metastable failure: shed load comes
//! back multiplied, so the cluster stays saturated long after the
//! trigger is gone. This experiment quantifies how much of that
//! amplification the resilience layer removes, by crossing three client
//! retry policies — none, unbounded, budgeted (gRPC/Finagle-style token
//! bucket) — with deadline propagation + doomed-work cancellation on or
//! off, under both TopFull(MIMD) entry control and DAGOR per-service
//! admission.
//!
//! The claims under test:
//! * unbounded retries measurably collapse goodput below the no-retry
//!   baseline (the storm feeds itself);
//! * budgeted retries plus deadline cancellation sustain ≥90% of the
//!   no-retry baseline — the budget starves the storm, cancellation
//!   stops doomed work from burning capacity;
//! * the doomed-work-cancelled and retries-suppressed counters are
//!   nonzero, i.e. the mechanisms actually engaged.

use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use apps::OnlineBoutique;
use cluster::{
    DeadlineConfig, Engine, ResilienceConfig, ResilienceStats, RetryBudgetConfig,
    RetryStormWorkload,
};
use simnet::SimDuration;

const RUN_SECS: u64 = 150;
const MEASURE_FROM: f64 = 30.0;
const USERS: u32 = 2600;
const SEED: u64 = 23;

/// Client retry policy arm.
#[derive(Clone, Copy)]
enum RetryArm {
    None,
    Unbounded,
    Budgeted,
}

impl RetryArm {
    fn label(self) -> &'static str {
        match self {
            RetryArm::None => "no-retry",
            RetryArm::Unbounded => "unbounded",
            RetryArm::Budgeted => "budgeted",
        }
    }
}

fn engine(arm: RetryArm, deadlines: bool) -> Engine {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let max_retries = match arm {
        RetryArm::None => 0,
        // "Unbounded" within a client timeout: far more attempts than
        // any request could ever need.
        RetryArm::Unbounded | RetryArm::Budgeted => 100,
    };
    let mut w = RetryStormWorkload::new(
        weights,
        USERS,
        SimDuration::from_secs(1),
        max_retries,
        SimDuration::from_millis(50),
    );
    if matches!(arm, RetryArm::Budgeted) {
        w = w.with_retry_budget(RetryBudgetConfig::default());
    }
    let mut e = Engine::new(ob.topology.clone(), engine_config(SEED), Box::new(w));
    if deadlines {
        e.set_resilience(ResilienceConfig {
            deadlines: Some(DeadlineConfig::default()),
            breakers: None,
        });
    }
    e
}

/// One run: steady-state goodput + the resilience counters.
fn run_one(roster: Roster, arm: RetryArm, deadlines: bool) -> (f64, ResilienceStats) {
    let mut h = roster.into_harness(engine(arm, deadlines));
    h.run_for_secs(RUN_SECS);
    let goodput = h.result().mean_total_goodput(MEASURE_FROM, RUN_SECS as f64);
    (goodput, h.engine.resilience_totals())
}

pub fn run() {
    let mut r = Report::new(
        "metastable",
        "Extension: retry-storm metastability vs budgeted retries + deadlines",
    );
    for roster in [Roster::TopFullMimd, Roster::Dagor { alpha: 0.05 }] {
        let ctrl = roster.label();
        let mut arms = Vec::new();
        for arm in [RetryArm::None, RetryArm::Unbounded, RetryArm::Budgeted] {
            for deadlines in [false, true] {
                arms.push((arm, deadlines));
            }
        }
        let results: Vec<_> = crate::runner::run_over(arms, |(arm, deadlines)| {
            let (good, stats) = run_one(roster.clone(), arm, deadlines);
            (arm.label(), deadlines, good, stats)
        });
        let mut rows = Vec::new();
        for (label, deadlines, good, stats) in &results {
            rows.push(vec![
                (*label).into(),
                if *deadlines { "on" } else { "off" }.into(),
                f1(*good),
                stats.retries_issued.to_string(),
                stats.retries_suppressed.to_string(),
                stats.doomed_cancelled.to_string(),
            ]);
        }
        r.table(
            &format!("{ctrl}: goodput by retry policy × deadlines"),
            &[
                "retries",
                "deadlines",
                "goodput (rps)",
                "issued",
                "suppressed",
                "doomed-cancelled",
            ],
            rows,
        );
        let find = |label: &str, dl: bool| {
            results
                .iter()
                .find(|(l, d, _, _)| *l == label && *d == dl)
                .expect("arm present")
        };
        let baseline = find("no-retry", false).2;
        let unbounded = find("unbounded", false).2;
        let hardened = find("budgeted", true);
        r.compare(
            format!("{ctrl}: budgeted+deadlines ÷ no-retry baseline"),
            "≥0.90 (storm fully defused)",
            ratio(hardened.2, baseline),
            "",
        );
        r.compare(
            format!("{ctrl}: unbounded ÷ no-retry baseline"),
            "<1x (storm collapses goodput)",
            ratio(unbounded, baseline),
            "",
        );
        let s = &hardened.3;
        r.note(format!(
            "{ctrl}: hardened arm engaged its mechanisms — {} retries \
             suppressed, {} doomed calls cancelled, {} client timeouts torn down",
            s.retries_suppressed, s.doomed_cancelled, s.client_cancelled
        ));
    }
    r.note(
        "budgeted retries starve the storm (only successes refill the \
         bucket) while deadline cancellation stops abandoned work from \
         re-consuming the capacity the controller just protected",
    );
    r.finish();
}
