//! Figure 16: resource saving under traffic spikes.
//!
//! "We show the potential resource saving of TopFull by comparing the
//! performance … with and without TopFull while varying the degree of
//! overprovisioning for critical microservices. For the traffic spikes,
//! we generate a temporary load increase that lasts for two minutes. …
//! In Train Ticket, TopFull shows the same or higher average goodput
//! with up to 50% fewer vCPUs … \[and\] 2.98x higher average goodput …
//! when 5 vCPUs allocated. In Online Boutique, … up to 57% fewer vCPUs
//! … \[and\] 12.96x higher … when 15 vCPUs allocated."
//!
//! One vCPU = one pod in the simulator, so "allocated vCPUs" is the
//! total pod count pre-provisioned across the app's critical services.

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use apps::{OnlineBoutique, TrainTicket};
use cluster::{ClosedLoopWorkload, Engine, OpenLoopWorkload, RateSchedule};
use simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 180;
const SPIKE_AT: u64 = 20;
const SPIKE_END: u64 = 140; // two-minute spike

/// Train Ticket engine with `vcpus` pods split across its critical
/// services (travel, ticketinfo, basic, station, seat).
fn tt_engine(vcpus: u32, seed: u64) -> Engine {
    let mut tt = TrainTicket::build();
    let critical = [tt.travel, tt.ticketinfo, tt.basic, tt.station, tt.seat];
    let share = (vcpus / critical.len() as u32).max(1);
    let mut left = vcpus;
    for (i, svc) in critical.iter().enumerate() {
        let n = if i + 1 == critical.len() {
            left.max(1)
        } else {
            share
                .min(left.saturating_sub((critical.len() - 1 - i) as u32))
                .max(1)
        };
        left = left.saturating_sub(n);
        tt.topology.service_mut(*svc).replicas = n;
    }
    let rates: Vec<(cluster::ApiId, RateSchedule)> = tt
        .apis()
        .iter()
        .map(|a| {
            (
                *a,
                RateSchedule::surge(
                    80.0,
                    450.0,
                    SimTime::from_secs(SPIKE_AT),
                    SimTime::from_secs(SPIKE_END),
                ),
            )
        })
        .collect();
    Engine::new(
        tt.topology.clone(),
        engine_config(seed),
        Box::new(OpenLoopWorkload::new(rates)),
    )
}

/// Online Boutique engine with `vcpus` pods split across its critical
/// services (recommendation, checkout, productcatalog, cart, frontend).
fn ob_engine(vcpus: u32, seed: u64) -> Engine {
    let mut ob = OnlineBoutique::build();
    let critical = [
        ob.recommendation,
        ob.checkout,
        ob.productcatalog,
        ob.cart,
        ob.frontend,
    ];
    let share = (vcpus / critical.len() as u32).max(1);
    let mut left = vcpus;
    for (i, svc) in critical.iter().enumerate() {
        let n = if i + 1 == critical.len() {
            left.max(1)
        } else {
            share
                .min(left.saturating_sub((critical.len() - 1 - i) as u32))
                .max(1)
        };
        left = left.saturating_sub(n);
        ob.topology.service_mut(*svc).replicas = n;
    }
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let users = RateSchedule::surge(
        300.0,
        3000.0,
        SimTime::from_secs(SPIKE_AT),
        SimTime::from_secs(SPIKE_END),
    );
    let w = ClosedLoopWorkload::new(weights, users, SimDuration::from_secs(1));
    Engine::new(ob.topology.clone(), engine_config(seed), Box::new(w))
}

fn measure(roster: Roster, engine: Engine) -> f64 {
    let mut h = roster.into_harness(engine);
    h.run_for_secs(RUN_SECS);
    h.result()
        .mean_total_goodput(SPIKE_AT as f64, SPIKE_END as f64)
}

/// `(vcpu, without, with)` sweep rows for one app. Both arms of every
/// allocation point run through the worker pool; the paired results are
/// reassembled in vCPU order.
fn sweep(
    mk: impl Fn(u32, u64) -> Engine + Sync,
    vcpus: &[u32],
    policy: rl::policy::PolicyValue,
    seed: u64,
) -> Vec<(u32, f64, f64)> {
    let mk = &mk;
    let mut plan = crate::runner::RunPlan::new();
    for &v in vcpus {
        plan.submit(move || measure(Roster::None, mk(v, seed)));
        let p = policy.clone();
        plan.submit(move || measure(Roster::TopFull(p), mk(v, seed)));
    }
    let out = plan.run();
    vcpus
        .iter()
        .zip(out.chunks(2))
        .map(|(&v, pair)| (v, pair[0], pair[1]))
        .collect()
}

/// Resource saving: the smallest vCPU count where TopFull matches the
/// best no-TopFull goodput achieved at any higher vCPU count.
fn saving(rows: &[(u32, f64, f64)]) -> Option<f64> {
    for &(v_with, _, with) in rows {
        for &(v_without, without, _) in rows.iter().rev() {
            if v_without > v_with && with >= without * 0.98 {
                return Some(1.0 - f64::from(v_with) / f64::from(v_without));
            }
        }
    }
    None
}

pub fn run() {
    let mut r = Report::new(
        "fig16",
        "Average goodput vs pre-allocated vCPUs under spikes",
    );
    let tt_policy = models::policy_for("train-ticket");
    let ob_policy = models::policy_for("online-boutique");
    let tt_rows = sweep(tt_engine, &[5, 10, 15, 20, 30, 40], tt_policy, 16);
    let ob_rows = sweep(ob_engine, &[10, 15, 25, 35, 50], ob_policy, 16);
    for (name, rows) in [("train-ticket", &tt_rows), ("online-boutique", &ob_rows)] {
        r.table(
            &format!("{name}: goodput vs allocated vCPUs"),
            &["vcpus", "without topfull", "with topfull"],
            rows.iter()
                .map(|(v, wo, w)| vec![v.to_string(), f1(*wo), f1(*w)])
                .collect(),
        );
    }
    let tt_low = tt_rows[0];
    r.compare(
        "Train Ticket gain at 5 vCPUs (with/without)",
        "2.98x",
        ratio(tt_low.2, tt_low.1),
        "",
    );
    // The paper's 12.96x appears at its most constrained allocation
    // (15 of their vCPU units); ours is the 10-pod point.
    let ob_low = ob_rows[0];
    r.compare(
        "Online Boutique gain at the scarcest allocation",
        "12.96x (at 15 vCPUs)",
        format!("{} (at {} vCPUs)", ratio(ob_low.2, ob_low.1), ob_low.0),
        "",
    );
    if let Some(s) = saving(&tt_rows) {
        r.compare(
            "Train Ticket vCPU saving at equal goodput",
            "up to 50%",
            format!("{:.0}%", s * 100.0),
            "",
        );
    }
    if let Some(s) = saving(&ob_rows) {
        r.compare(
            "Online Boutique vCPU saving at equal goodput",
            "up to 57%",
            format!("{:.0}%", s * 100.0),
            "",
        );
    }
    r.finish();
}
