//! Figure 12: load-control timeline of API 1 (Post Checkout) and API 2
//! (Get Product).
//!
//! "In local overload at Product microservice, DAGOR prioritizes business
//! logic and sheds all the lower business priority API that passes
//! Product microservice. On the other hand, TopFull manages the load
//! between API 1 and API 2. … when resolving overload at Checkout
//! microservice, API 1 is rate-limited. In response, TopFull re-increases
//! the rate-limit of API 2 to fully utilize the Product microservice."

use crate::experiments::fig04;
use crate::models;
use crate::report::{f1, Report};
use crate::scenarios::Roster;
use simnet::stats;

pub fn run() {
    let mut r = Report::new(
        "fig12",
        "Goodput timeline of API 1 (Post Checkout) and API 2 (Get Product)",
    );
    let policy = models::policy_for("online-boutique");
    // The same overload scenario as Fig. 4 — both APIs share
    // Recommendation and ProductCatalog, Post Checkout additionally owns
    // Checkout.
    let ((gp_d, pc_d), gp_series_d, pc_series_d) =
        fig04::run_one(Roster::Dagor { alpha: 0.05 }, 12, true);
    let ((gp_t, pc_t), gp_series_t, pc_series_t) =
        fig04::run_one(Roster::TopFull(policy), 12, true);
    r.series("topfull api1 postcheckout", pc_series_t.clone());
    r.series("topfull api2 getproduct", gp_series_t.clone());
    r.series("dagor api1 postcheckout", pc_series_d);
    r.series("dagor api2 getproduct", gp_series_d);
    r.table(
        "avg goodput (rps)",
        &["controller", "api1 postcheckout", "api2 getproduct"],
        vec![
            vec!["dagor".into(), f1(pc_d), f1(gp_d)],
            vec!["topfull".into(), f1(pc_t), f1(gp_t)],
        ],
    );
    // The paper's qualitative claim: under TopFull, API 2 recovers while
    // API 1 is held by the Checkout bottleneck — both stay non-zero.
    let late_gp: Vec<f64> = gp_series_t
        .iter()
        .filter(|(t, _)| *t > 60.0)
        .map(|(_, v)| *v)
        .collect();
    let late_pc: Vec<f64> = pc_series_t
        .iter()
        .filter(|(t, _)| *t > 60.0)
        .map(|(_, v)| *v)
        .collect();
    r.compare(
        "TopFull late-run Get Product goodput",
        "recovers (nonzero)",
        f1(stats::mean(&late_gp)),
        "rps",
    );
    r.compare(
        "TopFull late-run Post Checkout goodput",
        "held at Checkout capacity",
        f1(stats::mean(&late_pc)),
        "rps",
    );
    r.finish();
}
