//! Figure 8: goodput under overload — TopFull vs DAGOR vs Breakwater vs
//! no control on Online Boutique.
//!
//! "The overload is generated from 2600 Locust users invoking 1 request
//! per second. … TopFull outperforms DAGOR by 1.82x and Breakwater by
//! 2.26x on total average goodput under overload." Breakwater carries no
//! business priorities here ("we regarded all APIs as having the same
//! business priority"), so every controller runs with uniform priorities.

use crate::models;
use crate::report::{f1, ratio, Report};
use crate::scenarios::Roster;
use apps::OnlineBoutique;
use cluster::types::BusinessPriority;
use cluster::{ClosedLoopWorkload, Engine};
use simnet::SimDuration;

pub const USERS: u32 = 2600;
const RUN_SECS: u64 = 120;
const MEASURE_FROM: f64 = 30.0;

/// Build the Fig. 8 engine: uniform priorities, closed-loop users.
pub fn engine(users: u32, seed: u64) -> (OnlineBoutique, Engine) {
    let mut ob = OnlineBoutique::build();
    for api in ob.apis() {
        ob.topology.api_mut(api).business = BusinessPriority(0);
    }
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let w = ClosedLoopWorkload::fixed(weights, users, SimDuration::from_secs(1));
    let engine = Engine::new(
        ob.topology.clone(),
        crate::scenarios::engine_config(seed),
        Box::new(w),
    );
    (ob, engine)
}

/// Run one roster entry; returns (per-API mean goodput, total).
pub fn run_one(roster: Roster, users: u32, seed: u64) -> (Vec<f64>, f64) {
    let (ob, eng) = engine(users, seed);
    let mut h = roster.into_harness(eng);
    h.run_for_secs(RUN_SECS);
    let r = h.result();
    let per_api: Vec<f64> = ob
        .apis()
        .iter()
        .map(|a| r.mean_goodput_api(*a, MEASURE_FROM, RUN_SECS as f64))
        .collect();
    let total = r.mean_total_goodput(MEASURE_FROM, RUN_SECS as f64);
    (per_api, total)
}

pub fn run() {
    let mut r = Report::new(
        "fig08",
        "Goodput under overload (Online Boutique, 2600 users)",
    );
    let policy = models::policy_for("online-boutique");
    let rosters = vec![
        Roster::None,
        Roster::Breakwater,
        Roster::Wisp,
        Roster::Dagor { alpha: 0.05 },
        Roster::TopFull(policy),
    ];
    let mut rows = Vec::new();
    let mut totals = std::collections::HashMap::new();
    for roster in rosters {
        let label = roster.label();
        let (per_api, total) = run_one(roster, USERS, 42);
        totals.insert(label, total);
        let mut row = vec![label.to_string()];
        row.extend(per_api.iter().map(|g| f1(*g)));
        row.push(f1(total));
        rows.push(row);
    }
    r.table(
        "avg goodput (rps) per API and total",
        &[
            "controller",
            "api1 postcheckout",
            "api2 getproduct",
            "api3 getcart",
            "api4 postcart",
            "api5 emptycart",
            "total",
        ],
        rows,
    );
    let tf = totals["topfull"];
    r.compare(
        "TopFull / DAGOR total goodput",
        "1.82x",
        ratio(tf, totals["dagor"]),
        "",
    );
    r.compare(
        "TopFull / Breakwater total goodput",
        "2.26x",
        ratio(tf, totals["breakwater"]),
        "",
    );
    r.compare(
        "TopFull / no-control total goodput",
        ">1x",
        ratio(tf, totals["no-control"]),
        "",
    );
    r.compare(
        "TopFull / WISP total goodput (extension; WISP not in paper eval)",
        ">1x expected (§7 analysis)",
        ratio(tf, totals["wisp"]),
        "",
    );
    r.finish();
}
