//! Front-door admission figures (repo extension; DESIGN.md §17).
//!
//! Two figures, one per stage of the front door:
//!
//! * **Flash-crowd coalescing** — a read-heavy surge whose requests
//!   concentrate on a small key space (the committed
//!   `scenarios/read_flash_crowd.json` shape). With single-flight
//!   coalescing the duplicate reads collapse onto one backend flight
//!   plus a bounded TTL cache, so effective goodput must clear **2×**
//!   the no-coalescing arm.
//! * **TopFull+DAGOR hybrid** — a mixed-priority surge where the
//!   DAGOR-style priority gate (shedding low-business users first)
//!   composes with TopFull's per-API token buckets, against either
//!   stage alone. The hybrid arm's journal carries every
//!   priority-threshold move (`topfull explain` renders them).

use crate::report::{f1, ratio, Report};
use crate::scenarios::{engine_config, Roster};
use cluster::front::{CoalesceConfig, FrontConfig, PriorityConfig};
use cluster::types::BusinessPriority;
use cluster::{
    ApiId, ApiSpec, CallNode, Engine, OpenLoopWorkload, RateSchedule, ServiceSpec, Topology,
};
use simnet::{SimDuration, SimTime};

const RUN_SECS: u64 = 60;
const SURGE_AT: u64 = 10;
const MEASURE_FROM: f64 = 30.0;

/// The read-flash-crowd app: a cheap frontend fanning into a single
/// slow catalog replica (~100 rps capacity), surged to 1200 rps.
fn read_engine(seed: u64) -> (Engine, ApiId) {
    let mut t = Topology::default();
    let fe = t.add_service(ServiceSpec::new("frontend", 2).queue_capacity(256));
    let cat = t.add_service(ServiceSpec::new("catalog", 1).queue_capacity(256));
    let read = t.add_api(ApiSpec::single(
        "read",
        CallNode::with_children(
            fe,
            SimDuration::from_micros(500),
            vec![CallNode::leaf(cat, SimDuration::from_millis(10))],
        ),
    ));
    let w = OpenLoopWorkload::new(vec![(
        read,
        RateSchedule::steps(vec![
            (SimTime::ZERO, 60.0),
            (SimTime::from_secs(SURGE_AT), 1200.0),
        ]),
    )]);
    (Engine::new(t, engine_config(seed), Box::new(w)), read)
}

/// The mixed-priority app: checkout (business 0) and browse (business
/// 1) share one backend; the flash crowd is almost entirely browse.
fn mixed_engine(seed: u64) -> (Engine, ApiId, ApiId) {
    let mut t = Topology::default();
    let fe = t.add_service(ServiceSpec::new("frontend", 2).queue_capacity(256));
    let be = t.add_service(ServiceSpec::new("backend", 1).queue_capacity(256));
    let api = |name: &str, business: u8| {
        ApiSpec::single(
            name,
            CallNode::with_children(
                fe,
                SimDuration::from_micros(500),
                vec![CallNode::leaf(be, SimDuration::from_millis(8))],
            ),
        )
        .business(BusinessPriority(business))
    };
    let checkout = t.add_api(api("checkout", 0));
    let browse = t.add_api(api("browse", 1));
    let w = OpenLoopWorkload::new(vec![
        (checkout, RateSchedule::steps(vec![(SimTime::ZERO, 50.0)])),
        (
            browse,
            RateSchedule::steps(vec![
                (SimTime::ZERO, 60.0),
                (SimTime::from_secs(SURGE_AT), 900.0),
            ]),
        ),
    ]);
    (
        Engine::new(t, engine_config(seed), Box::new(w)),
        checkout,
        browse,
    )
}

fn coalesce_front() -> FrontConfig {
    FrontConfig {
        coalesce: Some(CoalesceConfig {
            cache_capacity: 1024,
            cache_ttl: SimDuration::from_millis(400),
        }),
        priority: None,
    }
}

fn priority_front() -> FrontConfig {
    FrontConfig {
        coalesce: None,
        priority: Some(PriorityConfig::default()),
    }
}

/// Flash-crowd coalescing: goodput with the single-flight stage on
/// must be ≥2× the no-coalescing arm.
fn run_coalesce() {
    let mut r = Report::new(
        "admission_coalesce",
        "Read flash crowd: single-flight coalescing vs plain TopFull",
    );
    let (engine, read) = read_engine(11);
    let mut h = Roster::TopFullMimd.into_harness(engine);
    h.run_for_secs(RUN_SECS);
    let base = h
        .result()
        .mean_goodput_api(read, MEASURE_FROM, RUN_SECS as f64);
    let base_series = h.result().goodput_series(read);

    let (mut engine, read) = read_engine(11);
    engine.set_front_door(coalesce_front(), vec![16]);
    let mut h = Roster::TopFullMimd.into_harness(engine);
    h.run_for_secs(RUN_SECS);
    let co = h
        .result()
        .mean_goodput_api(read, MEASURE_FROM, RUN_SECS as f64);
    let co_series = h.result().goodput_series(read);
    let stats = h.engine.front_stats().expect("front door installed");
    let hits = stats.cache_hits.get() + stats.follower_hits.get();

    r.table(
        "steady-state goodput (rps) under a 1200 rps read surge, key space 16",
        &["arm", "goodput"],
        vec![
            vec!["topfull (no coalescing)".into(), f1(base)],
            vec!["topfull + coalescing".into(), f1(co)],
        ],
    );
    r.compare(
        "coalescing / no-coalescing effective goodput",
        ">=2x",
        ratio(co, base),
        "",
    );
    r.note(format!(
        "coalesced {hits} duplicate reads (cache {} + in-flight {}), hit rate {:.3}",
        stats.cache_hits.get(),
        stats.follower_hits.get(),
        stats.hit_rate.get()
    ));
    r.series("goodput: no coalescing", base_series);
    r.series("goodput: coalescing", co_series);
    r.journal(h.journal().snapshot());
    r.finish();
}

/// One hybrid-figure arm; returns (checkout, browse) steady goodputs,
/// the browse priority-shed count, and the run journal.
fn mixed_arm(
    front: Option<FrontConfig>,
    roster: Roster,
    seed: u64,
) -> ((f64, f64), u64, Vec<obs::JournalEntry>) {
    let (mut engine, checkout, browse) = mixed_engine(seed);
    if let Some(cfg) = front {
        engine.set_front_door(cfg, Vec::new());
    }
    let mut h = roster.into_harness(engine);
    h.run_for_secs(RUN_SECS);
    let to = RUN_SECS as f64;
    let goodputs = (
        h.result().mean_goodput_api(checkout, MEASURE_FROM, to),
        h.result().mean_goodput_api(browse, MEASURE_FROM, to),
    );
    let shed = h.engine.api_totals(browse).rejected_shed;
    (goodputs, shed, h.journal().snapshot())
}

/// TopFull+DAGOR hybrid vs each stage alone on the mixed-priority
/// surge: the hybrid must hold checkout at its offered 50 rps.
fn run_hybrid() {
    let mut r = Report::new(
        "admission_hybrid",
        "Mixed-priority surge: TopFull+DAGOR hybrid vs either stage alone",
    );
    let ((tf_co, tf_br), _, _) = mixed_arm(None, Roster::TopFullMimd, 7);
    let ((dg_co, dg_br), dg_shed, _) = mixed_arm(Some(priority_front()), Roster::None, 7);
    let ((hy_co, hy_br), hy_shed, journal) =
        mixed_arm(Some(priority_front()), Roster::TopFullMimd, 7);
    r.table(
        "steady-state goodput (rps); checkout offered 50, browse surged to 900",
        &["arm", "checkout", "browse", "browse priority-sheds"],
        vec![
            vec!["topfull-only".into(), f1(tf_co), f1(tf_br), "0".into()],
            vec![
                "dagor-only".into(),
                f1(dg_co),
                f1(dg_br),
                dg_shed.to_string(),
            ],
            vec![
                "topfull+dagor".into(),
                f1(hy_co),
                f1(hy_br),
                hy_shed.to_string(),
            ],
        ],
    );
    r.compare(
        "hybrid / topfull-only checkout goodput",
        ">=1x",
        ratio(hy_co, tf_co),
        "",
    );
    let moves = journal
        .iter()
        .filter(|e| matches!(e, obs::JournalEntry::PriorityThreshold { .. }))
        .count();
    r.note(format!(
        "hybrid arm journaled {moves} priority-threshold moves \
         (render with `topfull explain artifacts/results/admission_hybrid.json`)"
    ));
    r.journal(journal);
    r.finish();
}

pub fn run() {
    run_coalesce();
    run_hybrid();
}
