//! Scenario and controller builders shared by the experiments.

use apps::{AlibabaDemo, OnlineBoutique, TrainTicket};
use baselines::{Breakwater, BreakwaterConfig, Dagor, DagorConfig, Wisp, WispConfig};
use cluster::{
    ClosedLoopWorkload, Controller, Engine, EngineConfig, Harness, NoControl, OpenLoopWorkload,
    RateSchedule, Topology, Workload,
};
use rl::policy::PolicyValue;
use simnet::SimDuration;
use topfull::{TopFull, TopFullConfig};

/// The controller roster used across experiments.
#[derive(Clone)]
pub enum Roster {
    /// No overload control anywhere.
    None,
    /// DAGOR per-service admission control (α = multiplicative decrease).
    Dagor { alpha: f64 },
    /// Breakwater per-service credit control.
    Breakwater,
    /// WISP upward-propagated rate limits (§7; extension comparator).
    Wisp,
    /// TopFull with the RL policy.
    TopFull(PolicyValue),
    /// TopFull ablation: MIMD steps instead of RL (§6.2).
    TopFullMimd,
    /// TopFull ablation: clustering disabled (§6.2).
    TopFullNoCluster(PolicyValue),
    /// TopFull with Breakwater's control law (TopFull(BW), §6.3).
    TopFullBw,
}

impl Roster {
    /// Short label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            Roster::None => "no-control",
            Roster::Dagor { .. } => "dagor",
            Roster::Breakwater => "breakwater",
            Roster::Wisp => "wisp",
            Roster::TopFull(_) => "topfull",
            Roster::TopFullMimd => "topfull-mimd",
            Roster::TopFullNoCluster(_) => "topfull-no-cluster",
            Roster::TopFullBw => "topfull-bw",
        }
    }

    /// Install this roster entry into an engine + harness pair.
    pub fn into_harness(self, mut engine: Engine) -> Harness {
        let n = engine.topology().num_services();
        let controller: Box<dyn Controller> = match self {
            Roster::None => Box::new(NoControl),
            Roster::Dagor { alpha } => {
                engine.set_admission(Box::new(Dagor::new(
                    n,
                    DagorConfig {
                        alpha,
                        ..DagorConfig::default()
                    },
                )));
                Box::new(NoControl)
            }
            Roster::Breakwater => {
                engine.set_admission(Box::new(Breakwater::new(n, BreakwaterConfig::default())));
                Box::new(NoControl)
            }
            Roster::Wisp => {
                let wisp = Wisp::new(engine.topology(), WispConfig::default());
                engine.set_admission(Box::new(wisp));
                Box::new(NoControl)
            }
            Roster::TopFull(policy) => {
                Box::new(TopFull::new(TopFullConfig::default().with_rl(policy)))
            }
            Roster::TopFullMimd => Box::new(TopFull::new(TopFullConfig::default().with_mimd())),
            Roster::TopFullNoCluster(policy) => Box::new(TopFull::new(
                TopFullConfig::default()
                    .with_rl(policy)
                    .without_clustering(),
            )),
            Roster::TopFullBw => Box::new(TopFull::new(TopFullConfig::default().with_bw())),
        };
        Harness::new(engine, controller)
    }
}

/// Default engine config for experiments (1 s SLO, 1 s control cadence).
pub fn engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        ..EngineConfig::default()
    }
}

/// Online Boutique with a closed-loop Locust-style population split
/// uniformly across the five APIs (§6.1: "2600 Locust users invoking 1
/// request per second").
pub fn boutique_closed_loop(users: u32, seed: u64) -> (OnlineBoutique, Engine) {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let w = ClosedLoopWorkload::fixed(weights, users, SimDuration::from_secs(1));
    let engine = Engine::new(ob.topology.clone(), engine_config(seed), Box::new(w));
    (ob, engine)
}

/// Online Boutique with per-API open-loop schedules.
pub fn boutique_open_loop(
    rates: impl Fn(&OnlineBoutique) -> Vec<(cluster::ApiId, RateSchedule)>,
    seed: u64,
) -> (OnlineBoutique, Engine) {
    let ob = OnlineBoutique::build();
    let w = OpenLoopWorkload::new(rates(&ob));
    let engine = Engine::new(ob.topology.clone(), engine_config(seed), Box::new(w));
    (ob, engine)
}

/// Train Ticket with per-API open-loop schedules.
pub fn trainticket_open_loop(
    rates: impl Fn(&TrainTicket) -> Vec<(cluster::ApiId, RateSchedule)>,
    seed: u64,
) -> (TrainTicket, Engine) {
    let tt = TrainTicket::build();
    let w = OpenLoopWorkload::new(rates(&tt));
    let engine = Engine::new(tt.topology.clone(), engine_config(seed), Box::new(w));
    (tt, engine)
}

/// The Alibaba real-trace demo with a surge overloading its hot services.
pub fn alibaba_surged(surge: f64, seed: u64) -> (AlibabaDemo, Engine) {
    let demo = AlibabaDemo::build(7);
    // Offered load per API proportional to its hot anchor's capacity.
    let rates: Vec<(cluster::ApiId, f64)> = demo.apis.iter().map(|a| (*a, 120.0 * surge)).collect();
    let w = OpenLoopWorkload::constant(rates);
    let engine = Engine::new(demo.topology.clone(), engine_config(seed), Box::new(w));
    (demo, engine)
}

/// Build an engine for an arbitrary topology with constant open-loop
/// rates on every API.
pub fn uniform_open_loop(topo: Topology, rate_per_api: f64, seed: u64) -> Engine {
    let rates: Vec<(cluster::ApiId, f64)> = topo.apis().map(|(id, _)| (id, rate_per_api)).collect();
    let w: Box<dyn Workload> = Box::new(OpenLoopWorkload::constant(rates));
    Engine::new(topo, engine_config(seed), w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_labels_are_distinct() {
        let policy = rl::policy::PolicyValue::new(
            2,
            &mut <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1),
        );
        let rosters = [
            Roster::None,
            Roster::Dagor { alpha: 0.05 },
            Roster::Breakwater,
            Roster::Wisp,
            Roster::TopFull(policy.clone()),
            Roster::TopFullMimd,
            Roster::TopFullNoCluster(policy),
            Roster::TopFullBw,
        ];
        let labels: std::collections::HashSet<&str> = rosters.iter().map(Roster::label).collect();
        assert_eq!(labels.len(), rosters.len(), "labels must be unique");
    }

    #[test]
    fn every_roster_builds_a_harness() {
        let policy = rl::policy::PolicyValue::new(
            2,
            &mut <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(2),
        );
        for roster in [
            Roster::None,
            Roster::Dagor { alpha: 0.05 },
            Roster::Breakwater,
            Roster::Wisp,
            Roster::TopFull(policy.clone()),
            Roster::TopFullMimd,
            Roster::TopFullNoCluster(policy),
            Roster::TopFullBw,
        ] {
            let (_, engine) = boutique_closed_loop(10, 1);
            let mut h = roster.into_harness(engine);
            h.run_for_secs(3);
            assert_eq!(h.result().samples.len(), 3);
        }
    }

    #[test]
    fn builders_produce_expected_apps() {
        let (ob, e) = boutique_closed_loop(100, 1);
        assert_eq!(e.topology().num_services(), 11);
        assert_eq!(ob.apis().len(), 5);
        let (tt, e) =
            trainticket_open_loop(|tt| vec![(tt.query_order, RateSchedule::constant(10.0))], 1);
        assert_eq!(e.topology().num_services(), 41);
        assert_eq!(tt.apis().len(), 6);
        let (demo, e) = alibaba_surged(1.0, 1);
        assert_eq!(e.topology().num_services(), 127);
        assert_eq!(demo.apis.len(), 25);
        let topo = apps::OnlineBoutique::build().topology;
        let e = uniform_open_loop(topo, 10.0, 1);
        assert_eq!(e.topology().num_apis(), 5);
    }
}
