//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p topfull-bench --bin figures -- <experiment>…
//! cargo run --release -p topfull-bench --bin figures -- all
//! cargo run --release -p topfull-bench --bin figures -- train
//! ```

use topfull_bench::experiments as ex;
use topfull_bench::models;

const EXPERIMENTS: &[(&str, fn())] = &[
    ("table1", ex::table1::run),
    ("admission", ex::admission::run),
    ("fig4", ex::fig04::run),
    ("fig8", ex::fig08::run),
    ("fig9", ex::fig09::run),
    ("fig10", ex::fig10::run),
    ("fig11", ex::fig11::run),
    ("fig12", ex::fig12::run),
    ("fig13", ex::fig13::run),
    ("fig14", ex::fig14::run),
    ("fig15", ex::fig15::run),
    ("fig16", ex::fig16::run),
    ("fig17", ex::fig17::run),
    ("fig18", ex::fig18::run),
    ("fig19", ex::fig19::run),
    ("retry-storm", ex::retry_storm::run),
    ("metastable", ex::metastable::run),
    ("refinements", ex::refinements::run),
    ("trace-analysis", ex::trace_analysis::run),
    ("training-cost", ex::training_cost::run),
    ("chaos", ex::chaos::run),
    ("sim2real", ex::sim2real::run),
    ("multishard", ex::multishard::run),
    ("slo", ex::slo::run),
];

fn usage() -> ! {
    eprintln!("usage: figures <experiment>… | all | train");
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for (name, f) in EXPERIMENTS {
                    eprintln!("\n>>> running {name}");
                    f();
                }
            }
            "train" => {
                // Force the full Sim2Real pipeline (cached afterwards).
                let _ = models::base_model();
                let _ = models::transfer_tt();
                let _ = models::transfer_ob();
                eprintln!("models trained and cached under artifacts/models/");
            }
            name => match EXPERIMENTS.iter().find(|(n, _)| *n == name) {
                Some((_, f)) => f(),
                None => usage(),
            },
        }
    }
}
