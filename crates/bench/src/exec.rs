//! Shared experiment execution built on the [`crate::runner`] pool.
//!
//! Every figure used to hand-roll the same loop: build a topology, pick
//! a controller arm, wrap the pair in a [`Harness`], run it for a fixed
//! horizon, and pull numbers out of the result. These helpers fold that
//! boilerplate into one place and route the independent runs through a
//! [`RunPlan`], so sweeps execute in parallel while the reported rows
//! keep their submission order (and therefore their bytes) at any
//! worker count.

use crate::runner::RunPlan;
use crate::scenarios::Roster;
use cluster::{Engine, Harness, ResilienceStats, RunResult, WatchdogStats};

/// Everything an experiment may need from one finished run, captured
/// before the harness (and its non-`Send` engine) is dropped inside the
/// worker thread.
pub struct ArmOutcome {
    /// The roster label (or a caller-supplied override).
    pub label: String,
    /// The full per-interval timeline.
    pub result: RunResult,
    /// Simulator events processed over the run (a cheap whole-run
    /// checksum: any behavioral divergence moves it).
    pub events_processed: u64,
    /// Pod crash-loop events over the run.
    pub crash_events: u64,
    /// Request-plane resilience counters summed over the run.
    pub resilience: ResilienceStats,
    /// Watchdog activity (zeroes when no watchdog was attached).
    pub watchdog: WatchdogStats,
}

/// Run an already-built harness for `secs` and capture the outcome.
pub fn finish(label: &str, mut h: Harness, secs: u64) -> ArmOutcome {
    h.run_for_secs(secs);
    ArmOutcome {
        label: label.to_string(),
        events_processed: h.engine.events_processed(),
        crash_events: h.engine.crash_events,
        resilience: h.engine.resilience_totals(),
        watchdog: h.watchdog_stats(),
        result: h.into_result(),
    }
}

/// One arm: install `roster` over `engine`, run `secs`, capture.
pub fn run_arm(label: &str, roster: Roster, engine: Engine, secs: u64) -> ArmOutcome {
    finish(label, roster.into_harness(engine), secs)
}

/// Fan a set of `(label, roster)` arms over the worker pool, each arm
/// building its engine from `mk` *inside* its worker (engines are not
/// `Send`). Results come back in arm order. Fetch any RL policies the
/// rosters need before calling this — training must not race.
pub fn run_arms(
    arms: Vec<(&'static str, Roster)>,
    mk: impl Fn() -> Engine + Sync,
    secs: u64,
) -> Vec<ArmOutcome> {
    let mk = &mk;
    let mut plan = RunPlan::new();
    for (label, roster) in arms {
        plan.submit(move || run_arm(label, roster, mk(), secs));
    }
    plan.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::boutique_closed_loop;

    fn fingerprint(o: &ArmOutcome) -> Vec<u64> {
        o.result
            .samples
            .iter()
            .flat_map(|s| s.goodput.iter().map(|g| g.to_bits()))
            .collect()
    }

    #[test]
    fn run_arms_matches_serial_execution() {
        let arms = || {
            vec![
                ("no-control", Roster::None),
                ("topfull-mimd", Roster::TopFullMimd),
                ("dagor", Roster::Dagor { alpha: 0.05 }),
            ]
        };
        let mk = || boutique_closed_loop(400, 7).1;
        let parallel = run_arms(arms(), mk, 15);
        let serial: Vec<ArmOutcome> = arms()
            .into_iter()
            .map(|(label, roster)| run_arm(label, roster, mk(), 15))
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.label, s.label);
            assert_eq!(fingerprint(p), fingerprint(s), "arm {}", p.label);
            assert_eq!(p.resilience, s.resilience);
        }
    }

    #[test]
    fn outcome_captures_harness_state() {
        let o = run_arm("none", Roster::None, boutique_closed_loop(100, 3).1, 5);
        assert_eq!(o.label, "none");
        assert_eq!(o.result.samples.len(), 5);
        assert_eq!(o.watchdog, WatchdogStats::default());
    }
}
