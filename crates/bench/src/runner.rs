//! Parallel run executor for experiment sweeps.
//!
//! Every `(app, controller-arm, seed)` run is a pure function of its
//! inputs — the engine is single-threaded and deterministic — so runs
//! are embarrassingly parallel. A [`RunPlan`] collects independent run
//! closures and fans them out over a fixed pool of scoped worker
//! threads, returning results in **submission order** regardless of
//! which worker finished first or last.
//!
//! ## Determinism contract
//!
//! Each job owns its seeded RNG (engines are constructed *inside* the
//! closure), no job observes another job's progress, and results are
//! slotted by submission index — so experiment artifacts are
//! byte-identical at any worker count. `TOPFULL_WORKERS=1` forces a
//! serial execution path for debugging; the tests assert serial and
//! parallel runs fingerprint identically.
//!
//! The worker pool defaults to `min(available_parallelism, 8)`
//! ([`default_workers`], also used by the RL trainer) and is overridden
//! by the `TOPFULL_WORKERS` environment variable ([`worker_count`]).
//! Training deliberately ignores `TOPFULL_WORKERS`: rollout seeding
//! depends on the worker index, so changing the trainer's pool would
//! change the models it produces.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the experiment worker count.
pub const WORKERS_ENV: &str = "TOPFULL_WORKERS";

/// The environment-independent default worker count:
/// `min(available_parallelism, 8)`, falling back to 4 when parallelism
/// cannot be queried. The RL trainer uses this directly (its rollout
/// seeding depends on the worker count, so it must not follow the env
/// override).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

/// The worker count for experiment runs: [`default_workers`] unless
/// `TOPFULL_WORKERS` is set to a positive integer (`1` forces serial).
pub fn worker_count() -> usize {
    match std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => default_workers(),
    }
}

type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A batch of independent run closures, executed across a worker pool
/// with results returned in submission order.
pub struct RunPlan<'a, T: Send> {
    jobs: Vec<Job<'a, T>>,
    workers: usize,
}

impl<T: Send> Default for RunPlan<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, T: Send> RunPlan<'a, T> {
    /// An empty plan using [`worker_count`] workers.
    pub fn new() -> Self {
        RunPlan {
            jobs: Vec::new(),
            workers: worker_count(),
        }
    }

    /// Override the worker count (primarily for tests — experiments
    /// should let `TOPFULL_WORKERS` decide).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Queue one run. The closure should construct its engine/harness
    /// inside (engines are not `Send`) and return the measured result.
    pub fn submit(&mut self, job: impl FnOnce() -> T + Send + 'a) {
        self.jobs.push(Box::new(job));
    }

    /// Execute every queued run and return the results in submission
    /// order. Panics in a job propagate after all workers drain.
    pub fn run(self) -> Vec<T> {
        let n = self.jobs.len();
        if self.workers <= 1 || n <= 1 {
            return self.jobs.into_iter().map(|job| job()).collect();
        }
        let jobs: Vec<Mutex<Option<Job<'a, T>>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|_| loop {
                    // Work-stealing by atomic index: scheduling order is
                    // irrelevant to the output because results land in
                    // their submission slot.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let out = job();
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        })
        .expect("runner scope");
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker panicked before storing its result")
            })
            .collect()
    }
}

/// Fan a closure over `items`, returning one result per item in order.
/// Convenience for the common "same measurement, N configurations"
/// sweep.
pub fn run_over<I, T, F>(items: I, f: F) -> Vec<T>
where
    I: IntoIterator,
    I::Item: Send,
    T: Send,
    F: Fn(I::Item) -> T + Sync,
{
    let f = &f;
    let mut plan = RunPlan::new();
    for item in items {
        plan.submit(move || f(item));
    }
    plan.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let mut plan = RunPlan::new().with_workers(4);
        for i in 0..32u64 {
            // Reverse the natural finishing order: early jobs are slow.
            plan.submit(move || {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i));
                }
                i * i
            });
        }
        let out = plan.run();
        assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |w: usize| {
            let mut plan = RunPlan::new().with_workers(w);
            for i in 0..16u64 {
                plan.submit(move || {
                    let mut rng = simnet::rng::fork(i, "runner-test");
                    use rand::Rng;
                    (0..100).map(|_| rng.gen::<u32>() as u64).sum::<u64>()
                });
            }
            plan.run()
        };
        assert_eq!(work(1), work(4));
    }

    #[test]
    fn run_over_maps_in_order() {
        let out = run_over(0..10u32, |x| x + 1);
        assert_eq!(out, (1..=10u32).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_is_capped() {
        let w = default_workers();
        assert!((1..=8).contains(&w));
    }
}
