//! Sim2Real training pipeline and model cache.
//!
//! The paper trains the rate controller in two stages (§4.3): 48 000
//! episodes on the lightweight graph simulator (6 GPU-hours), then 800
//! episodes on the target application (12 hours of real-world sampling).
//! Our environments are simulators all the way down, so the same pipeline
//! runs in minutes; episode counts are scaled accordingly and recorded in
//! EXPERIMENTS.md. Trained policies are cached as JSON under
//! `artifacts/models/` so experiments are reproducible without retraining.

use crate::artifacts_dir;
use apps::{OnlineBoutique, TrainTicket};
use rl::cluster_env::{ClusterEnv, ClusterEnvConfig};
use rl::graph_env::GraphEnv;
use rl::policy::PolicyValue;
use rl::ppo::PpoConfig;
use rl::trainer::{Trainer, TrainerConfig};
use std::path::PathBuf;

/// Episodes for base pre-training (paper: 48 000; scaled for CPU).
pub const BASE_EPISODES: usize = 4_000;
/// Episodes for specialization (paper: 800).
pub const SPECIALIZE_EPISODES: usize = 600;

fn model_path(name: &str) -> PathBuf {
    artifacts_dir().join("models").join(format!("{name}.json"))
}

/// Load a cached model, or `None` if absent/corrupt.
pub fn load(name: &str) -> Option<PolicyValue> {
    PolicyValue::load(&model_path(name)).ok()
}

fn store(name: &str, model: &PolicyValue) {
    let path = model_path(name);
    std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir artifacts");
    model.save(&path).expect("save model");
}

fn trainer_config(episodes: usize, seed: u64) -> TrainerConfig {
    TrainerConfig {
        // Table 1 structure with the faster-converging learning rate
        // profile (documented in EXPERIMENTS.md).
        ppo: PpoConfig::fast(),
        episodes,
        checkpoint_every: 50,
        validation_episodes: 12,
        // Deliberately NOT `runner::worker_count()`: rollout seeding
        // depends on the worker count, so honoring TOPFULL_WORKERS here
        // would change the models the pipeline produces and caches.
        workers: crate::runner::default_workers(),
        seed,
    }
}

/// Stage 1: pre-train the base policy on the graph simulator.
pub fn train_base(episodes: usize, seed: u64) -> PolicyValue {
    let mut trainer = Trainer::new(trainer_config(episodes, seed));
    let report = trainer.train(GraphEnv::new);
    eprintln!(
        "base model: {} episodes, best validation reward {:.3}",
        report.episodes_run, report.best_validation_reward
    );
    report.best_model
}

/// Stage 2: specialize a pre-trained policy on a target application.
pub fn specialize(
    base: PolicyValue,
    topo: cluster::Topology,
    episodes: usize,
    seed: u64,
) -> PolicyValue {
    let mut trainer = Trainer::from_model(trainer_config(episodes, seed), base);
    let cfg = ClusterEnvConfig::default();
    let report = trainer.train(move || ClusterEnv::new(topo.clone(), cfg.clone()));
    eprintln!(
        "specialized model: {} episodes, best validation reward {:.3}",
        report.episodes_run, report.best_validation_reward
    );
    report.best_model
}

/// The base (graph-simulator) policy, cached.
pub fn base_model() -> PolicyValue {
    if let Some(m) = load("base") {
        return m;
    }
    eprintln!("training base model ({BASE_EPISODES} episodes on the graph simulator)…");
    let m = train_base(BASE_EPISODES, 1000);
    store("base", &m);
    m
}

/// Transfer-TT: the base policy specialized on Train Ticket.
pub fn transfer_tt() -> PolicyValue {
    if let Some(m) = load("transfer_tt") {
        return m;
    }
    eprintln!("specializing on Train Ticket ({SPECIALIZE_EPISODES} episodes)…");
    let m = specialize(
        base_model(),
        TrainTicket::build().topology,
        SPECIALIZE_EPISODES,
        2000,
    );
    store("transfer_tt", &m);
    m
}

/// Transfer-OB: the base policy specialized on Online Boutique.
pub fn transfer_ob() -> PolicyValue {
    if let Some(m) = load("transfer_ob") {
        return m;
    }
    eprintln!("specializing on Online Boutique ({SPECIALIZE_EPISODES} episodes)…");
    let m = specialize(
        base_model(),
        OnlineBoutique::build().topology,
        SPECIALIZE_EPISODES,
        3000,
    );
    store("transfer_ob", &m);
    m
}

/// The default policy experiments use for "TopFull" rows: Transfer-OB
/// for Online Boutique scenarios, Transfer-TT for Train Ticket, base for
/// the real-trace demo. Picks by topology name.
pub fn policy_for(topology_name: &str) -> PolicyValue {
    match topology_name {
        "online-boutique" => transfer_ob(),
        "train-ticket" => transfer_tt(),
        _ => base_model(),
    }
}
