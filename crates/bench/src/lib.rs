//! # topfull-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6).
//! Shared infrastructure lives here:
//!
//! * [`models`] — the Sim2Real training pipeline producing the base
//!   (graph-simulator) policy and the Transfer-TT / Transfer-OB
//!   specialized policies, cached as JSON under `artifacts/models/`.
//! * [`scenarios`] — engine/workload builders for the three benchmark
//!   applications and the controller roster (TopFull, TopFull ablations,
//!   DAGOR, Breakwater, no-control, HPA combinations).
//! * [`report`] — uniform "paper vs measured" result rows and JSON dumps
//!   under `artifacts/results/`.
//! * [`runner`] — the parallel run executor: independent `(app, arm,
//!   seed)` runs fan out over a worker pool (`TOPFULL_WORKERS` overrides
//!   the size, `=1` forces serial) with byte-identical artifacts at any
//!   worker count.
//! * [`exec`] — shared roster-sweep helpers built on the runner, so each
//!   experiment submits arms instead of hand-rolling harness loops.
//! * [`experiments`] — one module per figure/table; the `figures` binary
//!   dispatches to them.
//!
//! Run everything with `cargo run --release -p topfull-bench --bin
//! figures -- all`, or a single experiment with e.g. `-- fig8`.

pub mod exec;
pub mod experiments;
pub mod models;
pub mod report;
pub mod runner;
pub mod scenarios;

/// Repository-relative artifacts directory (models, results).
pub fn artifacts_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; artifacts live at the repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../artifacts")
        .components()
        .collect()
}
