//! Regression pins for fuzzer-found controller weaknesses.
//!
//! Every genome under `scenarios/found/` was produced by `topfull fuzz`
//! (seeded, deterministic) and shrunk to a minimal reproducer. Fixed
//! findings are replayed here and must stay fixed; known-open findings
//! are pinned as *still tripping* so the corpus stays honest — when a
//! future change fixes one, its test fails and the finding graduates
//! into the fixed set.

use std::fs;
use std::path::PathBuf;

use topfull_scenario::fuzz::run_pair;
use topfull_scenario::{evaluate, parse_workflow, trips, Objective, WorkflowSpec};

fn found_genome(name: &str) -> WorkflowSpec {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios/found")
        .join(name);
    let text = fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
    parse_workflow(&text).unwrap_or_else(|e| panic!("parse {}: {e}", p.display()))
}

fn breach_trips(name: &str) -> bool {
    let wf = found_genome(name);
    let (arm, oracle) = run_pair(&wf).expect("reproducer pair runs");
    let violations = evaluate(&wf, &arm, &oracle);
    trips(&violations, Objective::SustainedBreach)
}

/// Fixed: a flash crowd inflates the entry limit (admitted at overload
/// entry ≈ the burst peak) far above backend capacity; the paper's
/// −5%/tick walk-down left p99 above 1.5×SLO for 23 s with zero
/// goodput. The collapse backoff now deepens those cuts.
#[test]
fn flash_crowd_entry_inflation_stays_fixed() {
    assert!(
        !breach_trips("fuzz_1_3_breach.workflow.json"),
        "flash-crowd entry-inflation breach regressed"
    );
}

/// Fixed: the same inflation via a second route — a slow ramp past
/// capacity leaves the limit uninitialized (raises skip unlimited
/// APIs) until the first cut snapshots an admitted rate that has
/// already overshot capacity. The collapse-backoff episode window is
/// keyed on limit initialization, not overload entry, to cover this.
#[test]
fn ramp_first_throttle_inflation_stays_fixed() {
    assert!(
        !breach_trips("fuzz_1_8_breach.workflow.json"),
        "ramp first-throttle inflation breach regressed"
    );
}

/// Fixed: telemetry noise (σ≈0.86) made the overload detector flap, so
/// cuts routed through the per-API recovery-probe path where the
/// collapse backoff did not apply, and the walk-down from an inflated
/// limit was −5%/tick again — p99 pinned past 1.5×SLO with zero
/// goodput for the breach window. The recovery path now runs the same
/// escalation law (per-API anchors, same episode budget); see
/// `TopFull::escalate_recovery_cut`.
#[test]
fn noise_blinded_descent_stays_fixed() {
    assert!(
        !breach_trips("fuzz_2_10_breach.workflow.json"),
        "noise-blinded recovery-path descent regressed"
    );
}
