//! Property tests for the scenario engine.
//!
//! 1. Workflow composition is deterministic: the same genome produces
//!    the same decision-journal fingerprint no matter how many workers
//!    the experiment pool uses.
//! 2. The shrinker terminates within its evaluation budget and always
//!    returns a reproducer that still trips the objective it was
//!    shrinking against.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use topfull_bench::runner::RunPlan;
use topfull_cli::run_scenario;
use topfull_scenario::fuzz::{base_workflow, mutate};
use topfull_scenario::shrink::{shrink, size};
use topfull_scenario::WorkflowSpec;

/// Random-but-seeded genome: a few mutation steps away from the base.
fn genome(seed: u64) -> WorkflowSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut wf = base_workflow();
    for _ in 0..3 {
        wf = mutate(&mut rng, &wf);
    }
    wf
}

fn fingerprints(wf: &WorkflowSpec, workers: usize, copies: usize) -> Vec<String> {
    let mut plan = RunPlan::new().with_workers(workers);
    for _ in 0..copies {
        plan.submit(|| {
            let sc = wf.compile().expect("genome compiles");
            run_scenario(&sc).expect("genome runs")
        });
    }
    plan.run()
        .into_iter()
        .map(|o| {
            format!(
                "{:#018x}",
                obs::journal_fingerprint(&obs::to_jsonl(&o.journal))
            )
        })
        .collect()
}

#[test]
fn same_genome_same_fingerprint_across_worker_counts() {
    for seed in [1u64, 9] {
        let wf = genome(seed);
        let solo = fingerprints(&wf, 1, 2);
        let pooled = fingerprints(&wf, 4, 2);
        assert_eq!(
            solo[0], solo[1],
            "seed {seed}: repeated runs diverged on one worker"
        );
        assert_eq!(
            solo, pooled,
            "seed {seed}: fingerprint depends on worker count"
        );
    }
}

#[test]
fn shrinker_terminates_with_still_tripping_reproducer() {
    const BUDGET: u32 = 100;
    let mut exercised = 0;
    for seed in 0..10u64 {
        let wf = genome(seed);
        // Synthetic objective — cheap and monotone enough to leave the
        // shrinker real work: the genome keeps a long-enough run.
        let still_trips = |w: &WorkflowSpec| w.duration_secs() >= 40;
        if !still_trips(&wf) {
            continue;
        }
        exercised += 1;
        let shrunk = shrink(&wf, BUDGET, &mut |c| still_trips(c));
        assert!(
            still_trips(&shrunk.genome),
            "seed {seed}: shrinker returned a non-tripping genome"
        );
        assert!(
            shrunk.genome.validate().is_ok(),
            "seed {seed}: shrunk genome fails validation"
        );
        assert!(
            size(&shrunk.genome) <= size(&wf),
            "seed {seed}: shrinking grew the genome"
        );
        assert!(shrunk.evals <= BUDGET, "seed {seed}: budget exceeded");
    }
    assert!(exercised >= 5, "too few genomes exercised the shrinker");
}
