//! Declarative workload workflows.
//!
//! A workflow composes reusable **phases** (plateau, ramp, flash crowd,
//! diurnal, oscillating) into per-API tracks, plus a fault schedule and
//! a controller arm, and compiles down to the plain [`Scenario`] schema
//! — so the simulator, the live plane, and the sharded plane all run
//! workflow-generated scenarios unchanged. The compiler is a pure
//! function: the same workflow always produces byte-identical step
//! schedules, which is what makes matrix runs and fuzz findings
//! reproducible.

use serde::{Deserialize, Serialize};
use topfull_cli::keys;
use topfull_cli::schema::{
    AppSpec, ControllerSpec, FaultSpecJson, RateSpec, ReportSpec, ResilienceSpec, Scenario,
    ShardingSpec, WorkloadSpec,
};

/// Sampling resolution (seconds) for curved phases (ramp, diurnal).
/// Piecewise-constant steps at this grid approximate the curve; 2 s is
/// well below the controller's reaction time, so finer sampling only
/// bloats the schedule.
pub const SAMPLE_SECS: u64 = 2;

/// One workload phase. Phases play back to back on the scenario clock;
/// `duration_secs` is the phase length, rates are requests/second.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PhaseSpec {
    /// Hold `rate` for the whole phase.
    Plateau { duration_secs: u64, rate: f64 },
    /// Linear ramp from `from` to `to`.
    Ramp {
        duration_secs: u64,
        from: f64,
        to: f64,
    },
    /// Plateau at `base` with a burst to `peak` over
    /// `[burst_from_secs, burst_until_secs)` (phase-relative).
    FlashCrowd {
        duration_secs: u64,
        base: f64,
        peak: f64,
        burst_from_secs: u64,
        burst_until_secs: u64,
    },
    /// `base + amplitude · sin(2π t / period)` — a compressed day.
    Diurnal {
        duration_secs: u64,
        base: f64,
        amplitude: f64,
        period_secs: u64,
    },
    /// Square wave between `low` and `high`, starting low, switching
    /// every `period_secs / 2`.
    Oscillate {
        duration_secs: u64,
        low: f64,
        high: f64,
        period_secs: u64,
    },
}

impl PhaseSpec {
    pub fn duration_secs(&self) -> u64 {
        match self {
            PhaseSpec::Plateau { duration_secs, .. }
            | PhaseSpec::Ramp { duration_secs, .. }
            | PhaseSpec::FlashCrowd { duration_secs, .. }
            | PhaseSpec::Diurnal { duration_secs, .. }
            | PhaseSpec::Oscillate { duration_secs, .. } => *duration_secs,
        }
    }

    /// Offered rate `t` seconds into the phase (pure; the compiler and
    /// the fuzz objectives share this curve).
    pub fn rate_at(&self, t: f64) -> f64 {
        match self {
            PhaseSpec::Plateau { rate, .. } => *rate,
            PhaseSpec::Ramp {
                duration_secs,
                from,
                to,
            } => {
                let d = (*duration_secs).max(1) as f64;
                from + (to - from) * (t / d).clamp(0.0, 1.0)
            }
            PhaseSpec::FlashCrowd {
                base,
                peak,
                burst_from_secs,
                burst_until_secs,
                ..
            } => {
                if t >= *burst_from_secs as f64 && t < *burst_until_secs as f64 {
                    *peak
                } else {
                    *base
                }
            }
            PhaseSpec::Diurnal {
                base,
                amplitude,
                period_secs,
                ..
            } => {
                let p = (*period_secs).max(1) as f64;
                (base + amplitude * (std::f64::consts::TAU * t / p).sin()).max(0.0)
            }
            PhaseSpec::Oscillate {
                low,
                high,
                period_secs,
                ..
            } => {
                let half = ((*period_secs).max(2) / 2) as f64;
                if ((t / half) as u64).is_multiple_of(2) {
                    *low
                } else {
                    *high
                }
            }
        }
    }

    /// Every rate parameter of the phase (for validation).
    fn rates(&self) -> Vec<f64> {
        match self {
            PhaseSpec::Plateau { rate, .. } => vec![*rate],
            PhaseSpec::Ramp { from, to, .. } => vec![*from, *to],
            PhaseSpec::FlashCrowd { base, peak, .. } => vec![*base, *peak],
            PhaseSpec::Diurnal {
                base, amplitude, ..
            } => vec![*base, *amplitude],
            PhaseSpec::Oscillate { low, high, .. } => vec![*low, *high],
        }
    }

    fn validate(&self, ctx: &str) -> Result<(), String> {
        if self.duration_secs() == 0 {
            return Err(format!("{ctx}: phase duration_secs must be positive"));
        }
        for r in self.rates() {
            if !r.is_finite() || r < 0.0 {
                return Err(format!("{ctx}: rates must be finite and non-negative"));
            }
        }
        match self {
            PhaseSpec::FlashCrowd {
                duration_secs,
                burst_from_secs,
                burst_until_secs,
                ..
            } if burst_from_secs >= burst_until_secs || burst_until_secs > duration_secs => {
                return Err(format!(
                    "{ctx}: burst window [{burst_from_secs}, {burst_until_secs}) must be \
                     non-empty and inside the {duration_secs}s phase"
                ));
            }
            PhaseSpec::Diurnal { period_secs, .. } | PhaseSpec::Oscillate { period_secs, .. }
                if *period_secs < 2 =>
            {
                return Err(format!("{ctx}: period_secs must be at least 2"));
            }
            _ => {}
        }
        Ok(())
    }

    /// Emit the phase's `(offset_from_phase_start, rate)` steps.
    fn steps(&self, out: &mut Vec<(u64, f64)>) {
        let d = self.duration_secs();
        match self {
            PhaseSpec::Plateau { rate, .. } => out.push((0, *rate)),
            PhaseSpec::FlashCrowd {
                base,
                peak,
                burst_from_secs,
                burst_until_secs,
                ..
            } => {
                out.push((0, *base));
                out.push((*burst_from_secs, *peak));
                if *burst_until_secs < d {
                    out.push((*burst_until_secs, *base));
                }
            }
            PhaseSpec::Oscillate { period_secs, .. } => {
                let half = (*period_secs).max(2) / 2;
                let mut t = 0;
                while t < d {
                    out.push((t, self.rate_at(t as f64)));
                    t += half;
                }
            }
            PhaseSpec::Ramp { .. } | PhaseSpec::Diurnal { .. } => {
                let mut t = 0;
                while t < d {
                    out.push((t, self.rate_at(t as f64)));
                    t += SAMPLE_SECS;
                }
            }
        }
    }
}

/// One API's phase sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrackSpec {
    pub api: String,
    pub phases: Vec<PhaseSpec>,
}

impl TrackSpec {
    pub fn duration_secs(&self) -> u64 {
        self.phases.iter().map(PhaseSpec::duration_secs).sum()
    }

    /// Offered rate at absolute scenario time `t` (0 past the end).
    pub fn rate_at(&self, t: f64) -> f64 {
        let mut start = 0.0;
        for p in &self.phases {
            let end = start + p.duration_secs() as f64;
            if t < end {
                return p.rate_at(t - start);
            }
            start = end;
        }
        self.phases.last().map_or(0.0, |p| {
            // Hold the final phase's closing rate, matching the
            // open-loop workload's "last step persists" semantics.
            p.rate_at((p.duration_secs().max(1) - 1) as f64)
        })
    }

    /// Compile to the scenario schema's step schedule.
    fn to_rate_spec(&self) -> RateSpec {
        let mut steps: Vec<(u64, f64)> = Vec::new();
        let mut start = 0u64;
        for p in &self.phases {
            let mut phase_steps = Vec::new();
            p.steps(&mut phase_steps);
            for (off, rate) in phase_steps {
                steps.push((start + off, rate));
            }
            start += p.duration_secs();
        }
        // Drop steps that repeat the previous rate — they are no-ops
        // for the workload and only bloat the compiled scenario.
        let mut dedup: Vec<(u64, f64)> = Vec::with_capacity(steps.len());
        for (t, r) in steps {
            if dedup.last().is_some_and(|&(_, prev)| prev == r) {
                continue;
            }
            dedup.push((t, r));
        }
        RateSpec {
            api: self.api.clone(),
            steps: dedup,
        }
    }
}

/// A declarative workflow: per-API phase tracks × a fault schedule × a
/// controller arm, over an app topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkflowSpec {
    #[serde(default = "default_name")]
    pub name: String,
    #[serde(default = "default_seed")]
    pub seed: u64,
    #[serde(default = "default_slo_ms")]
    pub slo_ms: u64,
    pub app: AppSpec,
    pub tracks: Vec<TrackSpec>,
    #[serde(default)]
    pub controller: ControllerSpec,
    #[serde(default)]
    pub faults: Vec<FaultSpecJson>,
    #[serde(default)]
    pub resilience: Option<ResilienceSpec>,
    #[serde(default)]
    pub sharding: Option<ShardingSpec>,
    #[serde(default = "default_measure_from")]
    pub measure_from_secs: u64,
}

fn default_name() -> String {
    "workflow".into()
}
fn default_seed() -> u64 {
    1
}
fn default_slo_ms() -> u64 {
    1000
}
fn default_measure_from() -> u64 {
    30
}

impl WorkflowSpec {
    /// Total scenario duration: the longest track.
    pub fn duration_secs(&self) -> u64 {
        self.tracks
            .iter()
            .map(TrackSpec::duration_secs)
            .max()
            .unwrap_or(0)
    }

    /// Total offered rate across tracks at absolute time `t`.
    pub fn offered_at(&self, t: f64) -> f64 {
        self.tracks.iter().map(|tr| tr.rate_at(t)).sum()
    }

    /// The time after which the input stops changing: the last rate
    /// step and the last fault window have both passed. `None` when the
    /// workflow contains a permanent disturbance (pod kills don't
    /// "clear", so there is nothing to re-converge to).
    pub fn quiesce_secs(&self) -> Option<f64> {
        let mut q = 0u64;
        for f in &self.faults {
            match f {
                FaultSpecJson::PodKill { .. } => return None,
                FaultSpecJson::SlowPods { until_secs, .. }
                | FaultSpecJson::NetworkDegrade { until_secs, .. }
                | FaultSpecJson::TelemetryDropout { until_secs, .. }
                | FaultSpecJson::TelemetryStaleness { until_secs, .. }
                | FaultSpecJson::TelemetryNoise { until_secs, .. }
                | FaultSpecJson::ControllerStall { until_secs, .. } => q = q.max(*until_secs),
            }
        }
        for tr in &self.tracks {
            for (t, _) in &tr.to_rate_spec().steps {
                q = q.max(*t);
            }
        }
        Some(q as f64)
    }

    /// Windows where a fault injects latency the controller cannot shed
    /// (slow pods, network degrade). The sustained-p99 objective skips
    /// these spans — a breach the controller can't influence is not a
    /// controller weakness.
    pub fn latency_fault_windows(&self) -> Vec<(f64, f64)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                FaultSpecJson::SlowPods {
                    from_secs,
                    until_secs,
                    ..
                } => Some((*from_secs as f64, *until_secs as f64)),
                FaultSpecJson::NetworkDegrade {
                    from_secs,
                    until_secs,
                    extra_latency_ms,
                    loss,
                    ..
                } if *extra_latency_ms > 0 || *loss > 0.0 => {
                    Some((*from_secs as f64, *until_secs as f64))
                }
                _ => None,
            })
            .collect()
    }

    /// Structural validation (the compiled scenario gets the full
    /// engine-level check on top via `topfull_cli::validate_scenario`).
    pub fn validate(&self) -> Result<(), String> {
        if self.tracks.is_empty() {
            return Err("workflow has no tracks: nothing would offer load".into());
        }
        for (i, tr) in self.tracks.iter().enumerate() {
            if tr.phases.is_empty() {
                return Err(format!("track[{i}] ('{}') has no phases", tr.api));
            }
            for (j, p) in tr.phases.iter().enumerate() {
                p.validate(&format!("track[{i}] ('{}') phase[{j}]", tr.api))?;
            }
        }
        Ok(())
    }

    /// Compile to the plain scenario schema. The output runs on every
    /// plane the repo has: `topfull-sim run`, `topfull live`, sharded.
    pub fn compile(&self) -> Result<Scenario, String> {
        self.validate()?;
        Ok(Scenario {
            name: self.name.clone(),
            seed: self.seed,
            duration_secs: self.duration_secs(),
            slo_ms: self.slo_ms,
            app: self.app.clone(),
            workload: WorkloadSpec::OpenLoop {
                rates: self.tracks.iter().map(TrackSpec::to_rate_spec).collect(),
            },
            controller: self.controller.clone(),
            autoscaler: None,
            failures: vec![],
            faults: self.faults.clone(),
            resilience: self.resilience.clone(),
            live: None,
            sharding: self.sharding.clone(),
            admission: None,
            slo: None,
            report: ReportSpec {
                measure_from_secs: self.measure_from_secs,
                // The timeline is the eyeball surface for control
                // behavior (shed → recover arcs); emitted scenarios
                // should show it by default.
                timeline: true,
            },
        })
    }
}

const WORKFLOW_KEYS: &[&str] = &[
    "name",
    "seed",
    "slo_ms",
    "app",
    "tracks",
    "controller",
    "faults",
    "resilience",
    "sharding",
    "measure_from_secs",
];
const TRACK_KEYS: &[&str] = &["api", "phases"];
const PHASE_VARIANTS: &[(&str, &[&str])] = &[
    ("plateau", &["duration_secs", "rate"]),
    ("ramp", &["duration_secs", "from", "to"]),
    (
        "flash_crowd",
        &[
            "duration_secs",
            "base",
            "peak",
            "burst_from_secs",
            "burst_until_secs",
        ],
    ),
    (
        "diurnal",
        &["duration_secs", "base", "amplitude", "period_secs"],
    ),
    (
        "oscillate",
        &["duration_secs", "low", "high", "period_secs"],
    ),
];

/// Key-check a `tracks` array value (shared with matrix workload defs,
/// which nest tracks under a different path — `prefix` names it).
pub(crate) fn check_tracks_keys(
    doc: &str,
    prefix: &str,
    value: &serde_json::JsonValue,
) -> Result<(), String> {
    if let serde::Value::Array(tracks) = value {
        for (i, tr) in tracks.iter().enumerate() {
            keys::check_keys(doc, &format!("{prefix}[{i}]"), tr, TRACK_KEYS)?;
            if let Some(phases) = tr.get("phases") {
                keys::check_tagged_items(
                    doc,
                    &format!("{prefix}[{i}].phases"),
                    phases,
                    "kind",
                    PHASE_VARIANTS,
                )?;
            }
        }
    }
    Ok(())
}

/// Key-check a raw workflow value (top level, tracks, phases, faults).
pub(crate) fn check_workflow_keys(doc: &str, value: &serde_json::JsonValue) -> Result<(), String> {
    keys::check_keys(doc, "", value, WORKFLOW_KEYS)?;
    if let Some(tracks) = value.get("tracks") {
        check_tracks_keys(doc, "tracks", tracks)?;
    }
    if let Some(faults) = value.get("faults") {
        keys::check_tagged_items(doc, "faults", faults, "kind", topfull_cli::FAULT_VARIANTS)?;
    }
    Ok(())
}

/// Parse a workflow spec from JSON text, rejecting unknown keys at
/// every level with a "did you mean" hint.
pub fn parse_workflow(json: &str) -> Result<WorkflowSpec, String> {
    let value: serde_json::JsonValue =
        serde_json::from_str(json).map_err(|e| format!("invalid workflow: {e}"))?;
    let serde::Value::Object(_) = value else {
        return Err("invalid workflow: top level must be a JSON object".into());
    };
    check_workflow_keys("workflow", &value)?;
    serde_json::from_str(json).map_err(|e| format!("invalid workflow: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier_app() -> AppSpec {
        match Scenario::example().app {
            app @ AppSpec::Inline { .. } => app,
            _ => unreachable!("example app is inline"),
        }
    }

    fn wf(phases: Vec<PhaseSpec>) -> WorkflowSpec {
        WorkflowSpec {
            name: "t".into(),
            seed: 7,
            slo_ms: 1000,
            app: two_tier_app(),
            tracks: vec![TrackSpec {
                api: "get".into(),
                phases,
            }],
            controller: ControllerSpec::default(),
            faults: vec![],
            resilience: None,
            sharding: None,
            measure_from_secs: 10,
        }
    }

    #[test]
    fn plateau_and_flash_compile_to_exact_steps() {
        let w = wf(vec![
            PhaseSpec::Plateau {
                duration_secs: 20,
                rate: 50.0,
            },
            PhaseSpec::FlashCrowd {
                duration_secs: 40,
                base: 50.0,
                peak: 300.0,
                burst_from_secs: 10,
                burst_until_secs: 25,
            },
        ]);
        let sc = w.compile().expect("compiles");
        assert_eq!(sc.duration_secs, 60);
        let WorkloadSpec::OpenLoop { rates } = &sc.workload else {
            panic!("open loop")
        };
        // (0,50) deduped through the flash base, then the burst edges.
        assert_eq!(rates[0].steps, vec![(0, 50.0), (30, 300.0), (45, 50.0)]);
    }

    #[test]
    fn ramp_samples_monotonically() {
        let w = wf(vec![PhaseSpec::Ramp {
            duration_secs: 10,
            from: 0.0,
            to: 100.0,
        }]);
        let sc = w.compile().expect("compiles");
        let WorkloadSpec::OpenLoop { rates } = &sc.workload else {
            panic!("open loop")
        };
        let steps = &rates[0].steps;
        assert_eq!(steps.first(), Some(&(0, 0.0)));
        assert!(steps.windows(2).all(|w| w[0].1 < w[1].1), "{steps:?}");
        assert!(steps.windows(2).all(|w| w[0].0 < w[1].0), "{steps:?}");
    }

    #[test]
    fn oscillate_emits_square_edges() {
        let w = wf(vec![PhaseSpec::Oscillate {
            duration_secs: 40,
            low: 20.0,
            high: 200.0,
            period_secs: 20,
        }]);
        let sc = w.compile().expect("compiles");
        let WorkloadSpec::OpenLoop { rates } = &sc.workload else {
            panic!("open loop")
        };
        assert_eq!(
            rates[0].steps,
            vec![(0, 20.0), (10, 200.0), (20, 20.0), (30, 200.0)]
        );
    }

    #[test]
    fn offered_at_matches_the_compiled_curve() {
        let w = wf(vec![
            PhaseSpec::Plateau {
                duration_secs: 10,
                rate: 40.0,
            },
            PhaseSpec::Oscillate {
                duration_secs: 20,
                low: 10.0,
                high: 90.0,
                period_secs: 10,
            },
        ]);
        assert_eq!(w.offered_at(5.0), 40.0);
        assert_eq!(w.offered_at(12.0), 10.0);
        assert_eq!(w.offered_at(17.0), 90.0);
        // Past the end: the closing rate holds.
        assert_eq!(w.offered_at(100.0), w.offered_at(29.9));
    }

    #[test]
    fn quiesce_tracks_faults_and_steps() {
        let mut w = wf(vec![PhaseSpec::FlashCrowd {
            duration_secs: 60,
            base: 40.0,
            peak: 400.0,
            burst_from_secs: 10,
            burst_until_secs: 20,
        }]);
        assert_eq!(w.quiesce_secs(), Some(20.0));
        w.faults.push(FaultSpecJson::NetworkDegrade {
            from_secs: 25,
            until_secs: 45,
            service: None,
            extra_latency_ms: 500,
            loss: 0.0,
        });
        assert_eq!(w.quiesce_secs(), Some(45.0));
        assert_eq!(w.latency_fault_windows(), vec![(25.0, 45.0)]);
        w.faults.push(FaultSpecJson::PodKill {
            at_secs: 30,
            service: "backend".into(),
            pods: 1,
        });
        assert_eq!(w.quiesce_secs(), None, "pod kills never clear");
    }

    #[test]
    fn validation_rejects_degenerate_phases() {
        let w = wf(vec![PhaseSpec::Plateau {
            duration_secs: 0,
            rate: 10.0,
        }]);
        assert!(w.compile().unwrap_err().contains("duration_secs"));
        let w = wf(vec![PhaseSpec::FlashCrowd {
            duration_secs: 30,
            base: 10.0,
            peak: 100.0,
            burst_from_secs: 20,
            burst_until_secs: 40,
        }]);
        assert!(w.compile().unwrap_err().contains("burst window"));
        let mut w = wf(vec![PhaseSpec::Plateau {
            duration_secs: 10,
            rate: 10.0,
        }]);
        w.tracks.clear();
        assert!(w.compile().unwrap_err().contains("no tracks"));
    }

    #[test]
    fn parse_rejects_unknown_keys_at_depth() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "tracks": [{"api": "getproduct", "phases": [
                {"kind": "plateau", "duration_secs": 30, "rte": 100.0}
            ]}]
        }"#;
        let err = parse_workflow(json).expect_err("phase typo rejected");
        assert!(err.contains("'tracks[0].phases[0] (plateau)'"), "{err}");
        assert!(err.contains("did you mean 'rate'?"), "{err}");
    }

    #[test]
    fn compiled_scenario_passes_full_validation() {
        let w = wf(vec![PhaseSpec::Diurnal {
            duration_secs: 60,
            base: 80.0,
            amplitude: 60.0,
            period_secs: 40,
        }]);
        let sc = w.compile().expect("compiles");
        topfull_cli::validate_scenario(&sc).expect("engine-level check passes");
    }
}
