//! Workflow matrices: workloads × fault plans × controller arms.
//!
//! A matrix spec names reusable pieces once — phase tracks, fault
//! schedules, controller arms — and the expander takes the cross
//! product, compiling every cell to a plain [`Scenario`] and executing
//! the cells through the experiment worker pool. The report carries a
//! journal fingerprint per cell, so two matrix runs (or the same run at
//! different `TOPFULL_WORKERS`) can be diffed for determinism.

use crate::workflow::{self, TrackSpec, WorkflowSpec};
use serde::{Deserialize, Serialize};
use topfull_bench::runner::RunPlan;
use topfull_cli::schema::{
    AppSpec, ControllerSpec, FaultSpecJson, ResilienceSpec, Scenario, ShardingSpec,
};
use topfull_cli::{keys, run_scenario};

/// A named workload: one set of per-API phase tracks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadDef {
    pub name: String,
    pub tracks: Vec<TrackSpec>,
}

/// A named fault schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultPlanDef {
    pub name: String,
    #[serde(default)]
    pub faults: Vec<FaultSpecJson>,
}

/// A named controller arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArmDef {
    pub name: String,
    #[serde(default)]
    pub controller: ControllerSpec,
}

/// The matrix: shared app/SLO/seed plus the three axes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixSpec {
    #[serde(default = "default_name")]
    pub name: String,
    #[serde(default = "default_seed")]
    pub seed: u64,
    #[serde(default = "default_slo_ms")]
    pub slo_ms: u64,
    pub app: AppSpec,
    #[serde(default)]
    pub resilience: Option<ResilienceSpec>,
    #[serde(default)]
    pub sharding: Option<ShardingSpec>,
    #[serde(default = "default_measure_from")]
    pub measure_from_secs: u64,
    pub workloads: Vec<WorkloadDef>,
    /// Defaults to a single fault-free plan named `clean`.
    #[serde(default)]
    pub fault_plans: Vec<FaultPlanDef>,
    pub arms: Vec<ArmDef>,
}

fn default_name() -> String {
    "matrix".into()
}
fn default_seed() -> u64 {
    1
}
fn default_slo_ms() -> u64 {
    1000
}
fn default_measure_from() -> u64 {
    30
}

/// One expanded cell: its id (`workload/fault_plan/arm`) and workflow.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    pub id: String,
    pub workload: String,
    pub fault_plan: String,
    pub arm: String,
    pub workflow: WorkflowSpec,
}

impl MatrixSpec {
    fn fault_plans_or_clean(&self) -> Vec<FaultPlanDef> {
        if self.fault_plans.is_empty() {
            vec![FaultPlanDef {
                name: "clean".into(),
                faults: vec![],
            }]
        } else {
            self.fault_plans.clone()
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty() {
            return Err("matrix has no workloads".into());
        }
        if self.arms.is_empty() {
            return Err("matrix has no arms".into());
        }
        for axis in [
            self.workloads.iter().map(|w| &w.name).collect::<Vec<_>>(),
            self.fault_plans.iter().map(|f| &f.name).collect(),
            self.arms.iter().map(|a| &a.name).collect(),
        ] {
            for (i, n) in axis.iter().enumerate() {
                if axis[..i].contains(n) {
                    return Err(format!("matrix axis has duplicate name '{n}'"));
                }
            }
        }
        Ok(())
    }

    /// Cross product in axis order: workloads (outer) × fault plans ×
    /// arms (inner). Deterministic — this is the execution order.
    pub fn expand(&self) -> Result<Vec<MatrixCell>, String> {
        self.validate()?;
        let mut cells = Vec::new();
        for w in &self.workloads {
            for fp in &self.fault_plans_or_clean() {
                for arm in &self.arms {
                    let id = format!("{}/{}/{}", w.name, fp.name, arm.name);
                    let wf = WorkflowSpec {
                        name: format!("{}:{id}", self.name),
                        seed: self.seed,
                        slo_ms: self.slo_ms,
                        app: self.app.clone(),
                        tracks: w.tracks.clone(),
                        controller: arm.controller.clone(),
                        faults: fp.faults.clone(),
                        resilience: self.resilience.clone(),
                        sharding: self.sharding.clone(),
                        measure_from_secs: self.measure_from_secs,
                    };
                    // Compile every cell up front so a bad spec fails
                    // before any cell runs, not mid-matrix.
                    wf.compile()?;
                    cells.push(MatrixCell {
                        id,
                        workload: w.name.clone(),
                        fault_plan: fp.name.clone(),
                        arm: arm.name.clone(),
                        workflow: wf,
                    });
                }
            }
        }
        Ok(cells)
    }

    /// Validate without running: expand + engine-level check per cell.
    pub fn check(&self) -> Result<usize, String> {
        let cells = self.expand()?;
        for c in &cells {
            let sc = c.workflow.compile()?;
            topfull_cli::validate_scenario(&sc).map_err(|e| format!("cell '{}': {e}", c.id))?;
        }
        Ok(cells.len())
    }
}

/// One executed cell's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct MatrixRow {
    pub id: String,
    pub workload: String,
    pub fault_plan: String,
    pub arm: String,
    pub total_goodput: f64,
    pub crash_events: u64,
    pub journal_entries: usize,
    /// Order-sensitive FNV-1a over the cell's journal JSONL — equal
    /// across worker counts and repeat runs when the cell is
    /// deterministic.
    pub journal_fingerprint: String,
    /// Rate cuts / raises the controller issued (|action| ≥ 0.01).
    pub cuts: usize,
    pub raises: usize,
}

/// The comparative report for a whole matrix run.
#[derive(Clone, Debug, Serialize)]
pub struct MatrixReport {
    pub matrix: String,
    pub seed: u64,
    /// Number of expanded cells (workloads x fault plans x arms).
    pub cells: usize,
    pub rows: Vec<MatrixRow>,
}

fn count_actions(journal: &[obs::JournalEntry]) -> (usize, usize) {
    let mut cuts = 0;
    let mut raises = 0;
    for e in journal {
        if let obs::JournalEntry::RateAction { action, .. } = e {
            if *action <= -0.01 {
                cuts += 1;
            } else if *action >= 0.01 {
                raises += 1;
            }
        }
    }
    (cuts, raises)
}

/// Execute every cell through the experiment worker pool and tabulate.
/// Results come back in expansion order regardless of worker count.
pub fn run_matrix(spec: &MatrixSpec, workers: Option<usize>) -> Result<MatrixReport, String> {
    let cells = spec.expand()?;
    let mut plan = RunPlan::new();
    if let Some(w) = workers {
        plan = plan.with_workers(w);
    }
    for cell in &cells {
        let sc: Scenario = cell.workflow.compile()?;
        plan.submit(move || run_scenario(&sc));
    }
    let outcomes = plan.run();
    let mut rows = Vec::with_capacity(cells.len());
    for (cell, outcome) in cells.iter().zip(outcomes) {
        let outcome = outcome.map_err(|e| format!("cell '{}': {e}", cell.id))?;
        let jsonl = obs::to_jsonl(&outcome.journal);
        let (cuts, raises) = count_actions(&outcome.journal);
        rows.push(MatrixRow {
            id: cell.id.clone(),
            workload: cell.workload.clone(),
            fault_plan: cell.fault_plan.clone(),
            arm: cell.arm.clone(),
            total_goodput: outcome.total_goodput,
            crash_events: outcome.crash_events,
            journal_entries: outcome.journal.len(),
            journal_fingerprint: format!("{:#018x}", obs::journal_fingerprint(&jsonl)),
            cuts,
            raises,
        });
    }
    Ok(MatrixReport {
        matrix: spec.name.clone(),
        seed: spec.seed,
        cells: rows.len(),
        rows,
    })
}

/// Human-readable comparison table, grouped by workload × fault plan.
pub fn render_matrix(report: &MatrixReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "matrix: {} (seed {}, {} cells)",
        report.matrix, report.seed, report.cells
    );
    let _ = writeln!(
        s,
        "{:<40} {:>10} {:>8} {:>6} {:>7}  journal fp",
        "cell", "goodput", "crashes", "cuts", "raises"
    );
    let mut group = String::new();
    for r in &report.rows {
        let this_group = format!("{}/{}", r.workload, r.fault_plan);
        if this_group != group {
            if !group.is_empty() {
                let _ = writeln!(s);
            }
            group = this_group;
        }
        let _ = writeln!(
            s,
            "{:<40} {:>10.1} {:>8} {:>6} {:>7}  {}",
            r.id, r.total_goodput, r.crash_events, r.cuts, r.raises, r.journal_fingerprint
        );
    }
    // Per-group best arm, the comparative punchline.
    for r in best_arms(report) {
        let _ = writeln!(s, "best[{}]: {} at {:.1} rps", r.0, r.1, r.2);
    }
    s
}

/// Best arm per workload × fault-plan group.
fn best_arms(report: &MatrixReport) -> Vec<(String, String, f64)> {
    let mut out: Vec<(String, String, f64)> = Vec::new();
    for r in &report.rows {
        let g = format!("{}/{}", r.workload, r.fault_plan);
        match out.iter_mut().find(|(og, _, _)| *og == g) {
            Some(e) if r.total_goodput > e.2 => {
                e.1 = r.arm.clone();
                e.2 = r.total_goodput;
            }
            Some(_) => {}
            None => out.push((g, r.arm.clone(), r.total_goodput)),
        }
    }
    out
}

const MATRIX_KEYS: &[&str] = &[
    "name",
    "seed",
    "slo_ms",
    "app",
    "resilience",
    "sharding",
    "measure_from_secs",
    "workloads",
    "fault_plans",
    "arms",
];
const WORKLOAD_KEYS: &[&str] = &["name", "tracks"];
const FAULT_PLAN_KEYS: &[&str] = &["name", "faults"];
const ARM_KEYS: &[&str] = &["name", "controller"];

/// Parse a matrix spec from JSON text, rejecting unknown keys at every
/// level with a "did you mean" hint.
pub fn parse_matrix(json: &str) -> Result<MatrixSpec, String> {
    let value: serde_json::JsonValue =
        serde_json::from_str(json).map_err(|e| format!("invalid matrix: {e}"))?;
    let serde::Value::Object(_) = value else {
        return Err("invalid matrix: top level must be a JSON object".into());
    };
    keys::check_keys("matrix", "", &value, MATRIX_KEYS)?;
    if let Some(serde::Value::Array(ws)) = value.get("workloads") {
        for (i, w) in ws.iter().enumerate() {
            keys::check_keys("matrix", &format!("workloads[{i}]"), w, WORKLOAD_KEYS)?;
            if let Some(tracks) = w.get("tracks") {
                workflow::check_tracks_keys("matrix", &format!("workloads[{i}].tracks"), tracks)?;
            }
        }
    }
    if let Some(serde::Value::Array(fps)) = value.get("fault_plans") {
        for (i, fp) in fps.iter().enumerate() {
            keys::check_keys("matrix", &format!("fault_plans[{i}]"), fp, FAULT_PLAN_KEYS)?;
            if let Some(f) = fp.get("faults") {
                keys::check_tagged_items(
                    "matrix",
                    &format!("fault_plans[{i}].faults"),
                    f,
                    "kind",
                    topfull_cli::FAULT_VARIANTS,
                )?;
            }
        }
    }
    if let Some(serde::Value::Array(arms)) = value.get("arms") {
        for (i, a) in arms.iter().enumerate() {
            keys::check_keys("matrix", &format!("arms[{i}]"), a, ARM_KEYS)?;
        }
    }
    serde_json::from_str(json).map_err(|e| format!("invalid matrix: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::PhaseSpec;

    fn spec_2x2() -> MatrixSpec {
        MatrixSpec {
            name: "m".into(),
            seed: 7,
            slo_ms: 1000,
            app: Scenario::example().app,
            resilience: None,
            sharding: None,
            measure_from_secs: 10,
            workloads: vec![
                WorkloadDef {
                    name: "steady".into(),
                    tracks: vec![TrackSpec {
                        api: "get".into(),
                        phases: vec![PhaseSpec::Plateau {
                            duration_secs: 30,
                            rate: 60.0,
                        }],
                    }],
                },
                WorkloadDef {
                    name: "surge".into(),
                    tracks: vec![TrackSpec {
                        api: "get".into(),
                        phases: vec![PhaseSpec::FlashCrowd {
                            duration_secs: 30,
                            base: 60.0,
                            peak: 300.0,
                            burst_from_secs: 10,
                            burst_until_secs: 20,
                        }],
                    }],
                },
            ],
            fault_plans: vec![],
            arms: vec![
                ArmDef {
                    name: "none".into(),
                    controller: ControllerSpec::None,
                },
                ArmDef {
                    name: "topfull".into(),
                    controller: ControllerSpec::Topfull {
                        rate_controller: "mimd".into(),
                        clustering: true,
                        hardened: false,
                    },
                },
            ],
        }
    }

    #[test]
    fn expand_takes_the_cross_product_in_order() {
        let cells = spec_2x2().expand().expect("expands");
        let ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "steady/clean/none",
                "steady/clean/topfull",
                "surge/clean/none",
                "surge/clean/topfull",
            ]
        );
    }

    #[test]
    fn duplicate_axis_names_are_rejected() {
        let mut m = spec_2x2();
        m.arms[1].name = "none".into();
        assert!(m.expand().unwrap_err().contains("duplicate name 'none'"));
    }

    #[test]
    fn matrix_runs_and_fingerprints_are_worker_count_invariant() {
        let m = spec_2x2();
        let r1 = run_matrix(&m, Some(1)).expect("runs single-worker");
        let r4 = run_matrix(&m, Some(4)).expect("runs four-worker");
        assert_eq!(r1.cells, 4);
        let fp1: Vec<&str> = r1
            .rows
            .iter()
            .map(|r| r.journal_fingerprint.as_str())
            .collect();
        let fp4: Vec<&str> = r4
            .rows
            .iter()
            .map(|r| r.journal_fingerprint.as_str())
            .collect();
        assert_eq!(fp1, fp4, "worker count must not change any cell");
        let text = render_matrix(&r1);
        assert!(text.contains("surge/clean/topfull"), "{text}");
        assert!(text.contains("best[surge/clean]:"), "{text}");
    }

    #[test]
    fn parse_rejects_axis_typos() {
        let json = r#"{
            "app": {"type": "builtin", "name": "online-boutique"},
            "workloads": [{"name": "w", "tracks": []}],
            "arms": [{"nmae": "none"}]
        }"#;
        let err = parse_matrix(json).expect_err("arm typo rejected");
        assert!(err.contains("'arms[0]'"), "{err}");
        assert!(err.contains("did you mean 'name'?"), "{err}");
    }

    #[test]
    fn check_validates_every_cell_without_running() {
        assert_eq!(spec_2x2().check().expect("checks"), 4);
    }
}
