//! SLO-violation objectives: what the fuzzer counts as a controller
//! weakness.
//!
//! Every objective compares the controller arm against an oracle run of
//! the *same* workflow with the controller off (`ControllerSpec::None`).
//! That comparison is what separates "the controller broke this" from
//! "nothing could have served this": a workload that saturates the
//! uncontrolled cluster too is not a finding.

use crate::workflow::WorkflowSpec;
use obs::JournalEntry;
use topfull_cli::ScenarioOutcome;

/// How much worse than the oracle the arm must be before we call it a
/// collapse (steady-state and post-quiesce tails both use this).
const COLLAPSE_RATIO: f64 = 0.6;
/// Oracle goodput below this is noise, not a baseline worth comparing to.
const MIN_BASELINE_RPS: f64 = 20.0;
/// Grace after the last disturbance before the re-convergence tail
/// starts: generous for queue drain, strict for control-loop recovery.
const SETTLE_SECS: f64 = 20.0;
/// Minimum tail length for the re-convergence comparison to mean much.
const MIN_TAIL_SECS: f64 = 15.0;
/// p99 must exceed `BREACH_FACTOR × SLO` for `BREACH_SECS` contiguous
/// seconds (outside latency-fault windows) to count as a breach.
const BREACH_FACTOR: f64 = 1.5;
const BREACH_SECS: f64 = 20.0;
/// Queues keep a fault's latency visible briefly after it clears.
const BREACH_GRACE_SECS: f64 = 5.0;
/// Ringing: at least this many rate-action sign flips...
const RING_FLIPS: usize = 8;
/// ...inside a sliding window this long, ignoring near-zero actions.
const RING_WINDOW_SECS: f64 = 30.0;
const RING_MIN_ACTION: f64 = 0.01;

/// The four weakness classes the fuzzer hunts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Objective {
    /// Steady-state goodput collapsed vs the no-controller oracle.
    GoodputCollapse,
    /// Goodput never recovered after the last disturbance cleared.
    ReconvergenceFailure,
    /// p99 stayed above the SLO band with no exonerating fault active.
    SustainedBreach,
    /// The rate controller oscillated (many sign flips in a short span).
    Ringing,
    /// The controller arm burned error budget to page severity while
    /// the uncontrolled oracle never paged — the control loop *caused*
    /// an SLO incident instead of preventing one.
    BudgetBurn,
}

impl Objective {
    /// Stable slug, used in reproducer filenames and reports.
    pub fn slug(self) -> &'static str {
        match self {
            Objective::GoodputCollapse => "collapse",
            Objective::ReconvergenceFailure => "reconvergence",
            Objective::SustainedBreach => "breach",
            Objective::Ringing => "ringing",
            Objective::BudgetBurn => "burn",
        }
    }

    pub fn from_slug(s: &str) -> Option<Self> {
        match s {
            "collapse" => Some(Objective::GoodputCollapse),
            "reconvergence" => Some(Objective::ReconvergenceFailure),
            "breach" => Some(Objective::SustainedBreach),
            "ringing" => Some(Objective::Ringing),
            "burn" => Some(Objective::BudgetBurn),
            _ => None,
        }
    }
}

/// One tripped objective, with the numbers that tripped it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub objective: Objective,
    pub detail: String,
}

/// Mean of the `(t, v)` series over `t ∈ [from, to)`; `None` when the
/// span holds no samples.
fn window_mean(series: &[(f64, f64)], from: f64, to: f64) -> Option<f64> {
    let xs: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from && *t < to)
        .map(|(_, v)| *v)
        .collect();
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

fn in_fault_window(t: f64, windows: &[(f64, f64)]) -> bool {
    windows
        .iter()
        .any(|(from, until)| t >= *from && t < *until + BREACH_GRACE_SECS)
}

/// Evaluate every objective for `arm` against the no-controller
/// `oracle` run of the same compiled workflow. Returns all violations,
/// strongest class first.
pub fn evaluate(
    wf: &WorkflowSpec,
    arm: &ScenarioOutcome,
    oracle: &ScenarioOutcome,
) -> Vec<Violation> {
    let mut out = Vec::new();

    // 1. Steady-state goodput collapse. Both outcomes already hold the
    // steady-state mean over the workflow's measurement window.
    if oracle.total_goodput >= MIN_BASELINE_RPS
        && arm.total_goodput < COLLAPSE_RATIO * oracle.total_goodput
    {
        out.push(Violation {
            objective: Objective::GoodputCollapse,
            detail: format!(
                "steady-state goodput {:.1} rps vs {:.1} rps uncontrolled ({:.0}%)",
                arm.total_goodput,
                oracle.total_goodput,
                100.0 * arm.total_goodput / oracle.total_goodput
            ),
        });
    }

    // 2. Failure to re-converge after the input quiesces. Skipped when
    // the workflow never quiesces (permanent faults) or leaves no tail.
    if let Some(q) = wf.quiesce_secs() {
        let tail_from = q + SETTLE_SECS;
        let end = wf.duration_secs() as f64;
        if end - tail_from >= MIN_TAIL_SECS {
            if let (Some(a), Some(b)) = (
                window_mean(&arm.timeline, tail_from, end),
                window_mean(&oracle.timeline, tail_from, end),
            ) {
                if b >= MIN_BASELINE_RPS && a < COLLAPSE_RATIO * b {
                    out.push(Violation {
                        objective: Objective::ReconvergenceFailure,
                        detail: format!(
                            "tail goodput (t≥{tail_from:.0}s, {SETTLE_SECS:.0}s after the last \
                             disturbance) {a:.1} rps vs {b:.1} rps uncontrolled"
                        ),
                    });
                }
            }
        }
    }

    // 3. Sustained p99 breach, excluding spans where an exogenous
    // latency fault is active (the controller cannot shed those).
    let slo_secs = wf.slo_ms as f64 / 1000.0;
    let threshold = BREACH_FACTOR * slo_secs;
    let windows = wf.latency_fault_windows();
    let mut span_start: Option<f64> = None;
    let mut worst_span = 0.0f64;
    let mut worst_at = 0.0f64;
    for &(t, p99) in &arm.p99_timeline {
        let breaching = p99 > threshold && !in_fault_window(t, &windows);
        match (breaching, span_start) {
            (true, None) => span_start = Some(t),
            (true, Some(s)) => {
                if t - s > worst_span {
                    worst_span = t - s;
                    worst_at = s;
                }
            }
            (false, Some(_)) => span_start = None,
            (false, None) => {}
        }
    }
    if worst_span >= BREACH_SECS {
        out.push(Violation {
            objective: Objective::SustainedBreach,
            detail: format!(
                "p99 above {BREACH_FACTOR}×SLO for {worst_span:.0}s starting t={worst_at:.0}s \
                 with no latency fault active"
            ),
        });
    }

    // 4. Ringing: the controller flips a target's action sign over and
    // over inside a short window — limit oscillation, not convergence.
    let mut per_target: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for e in &arm.journal {
        if let JournalEntry::RateAction {
            t,
            target_name,
            action,
            ..
        } = e
        {
            if action.abs() < RING_MIN_ACTION {
                continue;
            }
            match per_target.iter_mut().find(|(n, _)| n == target_name) {
                Some((_, v)) => v.push((*t, *action)),
                None => per_target.push((target_name.clone(), vec![(*t, *action)])),
            }
        }
    }
    for (name, actions) in &per_target {
        let flips: Vec<f64> = actions
            .windows(2)
            .filter(|w| w[0].1.signum() != w[1].1.signum())
            .map(|w| w[1].0)
            .collect();
        let ringing = flips
            .windows(RING_FLIPS)
            .any(|w| w[RING_FLIPS - 1] - w[0] <= RING_WINDOW_SECS);
        if ringing {
            out.push(Violation {
                objective: Objective::Ringing,
                detail: format!(
                    "'{name}' rate actions flipped sign ≥{RING_FLIPS} times within \
                     {RING_WINDOW_SECS:.0}s"
                ),
            });
            break; // one ringing report per run is enough signal
        }
    }

    // 5. Budget burn the oracle avoided. Shedding spends no error
    // budget, so a well-behaved controller should page *less* than the
    // uncontrolled run — an arm that pages while the oracle never does
    // turned overload control into an SLO incident.
    let pages = |o: &ScenarioOutcome| {
        o.journal
            .iter()
            .filter(|e| matches!(e, JournalEntry::SloBurn { to, .. } if to == "page"))
            .count()
    };
    let arm_pages = pages(arm);
    if arm_pages > 0 && pages(oracle) == 0 {
        out.push(Violation {
            objective: Objective::BudgetBurn,
            detail: format!(
                "{arm_pages} page-severity burn escalation(s) under control; the \
                 uncontrolled oracle never paged"
            ),
        });
    }

    out.sort_by_key(|v| v.objective);
    out
}

/// Does `violations` trip the given objective?
pub fn trips(violations: &[Violation], objective: Objective) -> bool {
    violations.iter().any(|v| v.objective == objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{PhaseSpec, TrackSpec};
    use topfull_cli::schema::{ControllerSpec, Scenario};

    fn outcome(goodput: f64, timeline: Vec<(f64, f64)>, p99: Vec<(f64, f64)>) -> ScenarioOutcome {
        ScenarioOutcome {
            name: "t".into(),
            duration_secs: 120,
            goodput_per_api: vec![],
            total_goodput: goodput,
            offered_per_api: vec![],
            crash_events: 0,
            resilience: Default::default(),
            timeline,
            p99_timeline: p99,
            journal: vec![],
            shard_plane: None,
            shard_guards: None,
            live_rejects: None,
            traces: vec![],
        }
    }

    fn wf() -> WorkflowSpec {
        WorkflowSpec {
            name: "t".into(),
            seed: 1,
            slo_ms: 1000,
            app: Scenario::example().app,
            tracks: vec![TrackSpec {
                api: "get".into(),
                phases: vec![PhaseSpec::Plateau {
                    duration_secs: 120,
                    rate: 80.0,
                }],
            }],
            controller: ControllerSpec::default(),
            faults: vec![],
            resilience: None,
            sharding: None,
            measure_from_secs: 30,
        }
    }

    #[test]
    fn collapse_requires_a_real_baseline() {
        let arm = outcome(10.0, vec![], vec![]);
        let weak_oracle = outcome(15.0, vec![], vec![]);
        assert!(evaluate(&wf(), &arm, &weak_oracle).is_empty());
        let strong_oracle = outcome(90.0, vec![], vec![]);
        let v = evaluate(&wf(), &arm, &strong_oracle);
        assert!(trips(&v, Objective::GoodputCollapse), "{v:?}");
    }

    #[test]
    fn breach_ignores_spans_covered_by_latency_faults() {
        let p99: Vec<(f64, f64)> = (0..120).map(|t| (t as f64, 2.0)).collect();
        let arm = outcome(80.0, vec![], p99);
        let oracle = outcome(80.0, vec![], vec![]);
        let v = evaluate(&wf(), &arm, &oracle);
        assert!(trips(&v, Objective::SustainedBreach));

        let mut faulted = wf();
        faulted
            .faults
            .push(topfull_cli::schema::FaultSpecJson::NetworkDegrade {
                from_secs: 0,
                until_secs: 120,
                service: None,
                extra_latency_ms: 1500,
                loss: 0.0,
            });
        let v = evaluate(&faulted, &arm, &oracle);
        assert!(
            !trips(&v, Objective::SustainedBreach),
            "fault-covered breach must not count: {v:?}"
        );
    }

    #[test]
    fn ringing_needs_dense_sign_flips() {
        let mut arm = outcome(80.0, vec![], vec![]);
        for i in 0..20 {
            arm.journal.push(JournalEntry::RateAction {
                t: i as f64, // alternating sign every second: rings
                target: 0,
                target_name: "get".into(),
                apis: "0".into(),
                action: if i % 2 == 0 { 0.3 } else { -0.3 },
                goodput_ratio: 1.0,
                latency_ratio: 1.0,
                total_limit: 100.0,
                reason: "test".into(),
            });
        }
        let oracle = outcome(80.0, vec![], vec![]);
        let v = evaluate(&wf(), &arm, &oracle);
        assert!(trips(&v, Objective::Ringing), "{v:?}");

        // Same flips spread over 400s: converging, not ringing.
        for e in arm.journal.iter_mut() {
            if let JournalEntry::RateAction { t, .. } = e {
                *t *= 20.0;
            }
        }
        let v = evaluate(&wf(), &arm, &oracle);
        assert!(!trips(&v, Objective::Ringing), "{v:?}");
    }

    #[test]
    fn budget_burn_compares_page_counts_against_the_oracle() {
        let burn = |to: &str| JournalEntry::SloBurn {
            t: 25.0,
            api: 0,
            api_name: "get".into(),
            from: "ok".into(),
            to: to.into(),
            fast_burn: 30.0,
            slow_burn: 4.0,
            budget_remaining: 0.5,
        };
        let mut arm = outcome(80.0, vec![], vec![]);
        arm.journal.push(burn("page"));
        let oracle = outcome(80.0, vec![], vec![]);
        let v = evaluate(&wf(), &arm, &oracle);
        assert!(trips(&v, Objective::BudgetBurn), "{v:?}");

        // If the oracle paged too, nothing could have served this —
        // not a controller weakness.
        let mut paged_oracle = outcome(80.0, vec![], vec![]);
        paged_oracle.journal.push(burn("page"));
        let v = evaluate(&wf(), &arm, &paged_oracle);
        assert!(!trips(&v, Objective::BudgetBurn), "{v:?}");

        // Ticket-severity smoulders don't trip the objective.
        let mut ticketed = outcome(80.0, vec![], vec![]);
        ticketed.journal.push(burn("ticket"));
        let v = evaluate(&wf(), &ticketed, &oracle);
        assert!(!trips(&v, Objective::BudgetBurn), "{v:?}");
        assert_eq!(Objective::from_slug("burn"), Some(Objective::BudgetBurn));
        assert_eq!(Objective::BudgetBurn.slug(), "burn");
    }

    #[test]
    fn reconvergence_watches_the_post_quiesce_tail() {
        let mut w = wf();
        w.tracks[0].phases = vec![PhaseSpec::FlashCrowd {
            duration_secs: 120,
            base: 60.0,
            peak: 400.0,
            burst_from_secs: 20,
            burst_until_secs: 40,
        }];
        // Quiesce at 40s, tail from 60s. Arm stuck at 5 rps; oracle 60.
        let arm_tl: Vec<(f64, f64)> = (0..120).map(|t| (t as f64, 5.0)).collect();
        let orc_tl: Vec<(f64, f64)> = (0..120).map(|t| (t as f64, 60.0)).collect();
        let arm = outcome(5.0, arm_tl, vec![]);
        let oracle = outcome(60.0, orc_tl, vec![]);
        let v = evaluate(&w, &arm, &oracle);
        assert!(trips(&v, Objective::ReconvergenceFailure), "{v:?}");

        // A permanent pod kill removes the objective entirely.
        w.faults.push(topfull_cli::schema::FaultSpecJson::PodKill {
            at_secs: 30,
            service: "backend".into(),
            pods: 1,
        });
        let v = evaluate(&w, &arm, &oracle);
        assert!(!trips(&v, Objective::ReconvergenceFailure), "{v:?}");
    }
}
