//! Seeded property-based scenario fuzzer.
//!
//! Mutates workflow genomes (phase shapes, rates, durations, fault
//! schedules) and evaluates each against the SLO-violation objectives
//! in [`crate::objectives`], always comparing the controller arm to a
//! no-controller oracle run of the same genome. Findings are shrunk to
//! minimal reproducers and written out as both the workflow genome and
//! the compiled plain scenario, so `topfull-sim` can replay them with
//! no knowledge of the fuzzer.
//!
//! Everything is deterministic per seed: the mutation stream comes
//! from one seeded [`SmallRng`], the simulator runs are deterministic,
//! and no wall-clock state leaks into the report.

use crate::objectives::{self, Objective, Violation};
use crate::shrink;
use crate::workflow::{PhaseSpec, TrackSpec, WorkflowSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::path::PathBuf;
use topfull_bench::runner::RunPlan;
use topfull_cli::schema::{AppSpec, ControllerSpec, FaultSpecJson, Scenario};
use topfull_cli::{run_scenario, ScenarioOutcome};

/// Fuzzer knobs. `Default` matches the CLI's defaults.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Seed for the mutation stream (and every generated scenario).
    pub seed: u64,
    /// Genomes to evaluate (each costs an arm + oracle simulator run).
    pub iters: u32,
    /// Where reproducers land; `None` = don't write files.
    pub out_dir: Option<PathBuf>,
    /// Starting genome; `None` = the built-in two-tier base.
    pub base: Option<WorkflowSpec>,
    /// Simulator-pair evaluations the shrinker may spend per finding.
    pub max_shrink_evals: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            iters: 40,
            out_dir: None,
            base: None,
            max_shrink_evals: 60,
        }
    }
}

/// Cap on the live corpus; mutated genomes replace random slots beyond
/// this, keeping the pool diverse without unbounded growth.
const CORPUS_CAP: usize = 16;

/// One confirmed, shrunk weakness.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    pub iter: u32,
    /// Objective slug (`collapse`, `reconvergence`, `breach`, `ringing`).
    pub objective: String,
    /// The numbers that tripped it, from the shrunk reproducer's run.
    pub detail: String,
    /// Shrink steps accepted / pair-evals spent getting minimal.
    pub shrink_steps: u32,
    pub shrink_evals: u32,
    /// Arm-journal fingerprint of the shrunk reproducer (determinism
    /// receipt: re-running the reproducer must print this).
    pub journal_fingerprint: String,
    /// Files written (compiled scenario, then workflow genome); empty
    /// when no `out_dir` was configured.
    pub files: Vec<String>,
    /// The shrunk genome itself.
    pub genome: WorkflowSpec,
}

/// The full fuzz campaign result.
#[derive(Clone, Debug, Serialize)]
pub struct FuzzReport {
    pub seed: u64,
    pub iters: u32,
    /// Simulator pair-evaluations spent (campaign + shrinking).
    pub pair_evals: u32,
    pub findings: Vec<Finding>,
}

/// Render the campaign result for humans.
pub fn render_fuzz(r: &FuzzReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fuzz: seed {} — {} genomes, {} simulator pairs, {} finding(s)",
        r.seed,
        r.iters,
        r.pair_evals,
        r.findings.len()
    );
    for f in &r.findings {
        let _ = writeln!(
            s,
            "  [{}] iter {}: {} (shrunk in {} steps / {} evals, fp {})",
            f.objective, f.iter, f.detail, f.shrink_steps, f.shrink_evals, f.journal_fingerprint
        );
        for file in &f.files {
            let _ = writeln!(s, "      wrote {file}");
        }
    }
    if r.findings.is_empty() {
        let _ = writeln!(s, "  no objective tripped");
    }
    s
}

/// The built-in base genome: the repo's canonical two-tier app (backend
/// caps near 100 rps) under a flash crowd — enough headroom below and
/// pressure above that mutations can reach every objective.
pub fn base_workflow() -> WorkflowSpec {
    WorkflowSpec {
        name: "fuzz-base".into(),
        seed: 1,
        slo_ms: 1000,
        app: Scenario::example().app,
        tracks: vec![TrackSpec {
            api: "get".into(),
            phases: vec![
                PhaseSpec::Plateau {
                    duration_secs: 30,
                    rate: 60.0,
                },
                PhaseSpec::FlashCrowd {
                    duration_secs: 60,
                    base: 60.0,
                    peak: 240.0,
                    burst_from_secs: 10,
                    burst_until_secs: 25,
                },
                PhaseSpec::Plateau {
                    duration_secs: 30,
                    rate: 60.0,
                },
            ],
        }],
        controller: ControllerSpec::Topfull {
            rate_controller: "mimd".into(),
            clustering: true,
            hardened: false,
        },
        faults: vec![],
        resilience: None,
        sharding: None,
        measure_from_secs: 20,
    }
}

fn service_names(app: &AppSpec) -> Vec<String> {
    match app {
        AppSpec::Inline { services, .. } => services.iter().map(|s| s.name.clone()).collect(),
        // Builtin topologies resolve service names at build time; the
        // all-services form (service: None) is always valid, so fault
        // mutations just use that.
        AppSpec::Builtin { .. } => vec![],
    }
}

/// A random fault whose window fits inside `duration`. Pod kills are
/// excluded on purpose: a permanent capacity loss disables the
/// re-convergence objective and drowns the gray-failure signal.
fn random_fault(rng: &mut SmallRng, duration: u64, services: &[String]) -> FaultSpecJson {
    let dur = duration.max(30);
    let from_secs = rng.gen_range(0..dur * 3 / 4);
    let until_secs = (from_secs + rng.gen_range(10..40u64)).min(dur);
    let service = if services.is_empty() || rng.gen_bool(0.3) {
        None
    } else {
        Some(services[rng.gen_range(0..services.len())].clone())
    };
    match rng.gen_range(0..5u32) {
        0 => FaultSpecJson::SlowPods {
            from_secs,
            until_secs,
            service: service
                .or_else(|| services.first().cloned())
                .unwrap_or_else(|| "frontend".into()),
            factor: rng.gen_range(2.0..8.0),
        },
        1 => FaultSpecJson::NetworkDegrade {
            from_secs,
            until_secs,
            service,
            extra_latency_ms: rng.gen_range(100..1500),
            loss: if rng.gen_bool(0.5) {
                0.0
            } else {
                rng.gen_range(0.01..0.2)
            },
        },
        2 => FaultSpecJson::TelemetryDropout {
            from_secs,
            until_secs,
            service,
        },
        3 => FaultSpecJson::TelemetryNoise {
            from_secs,
            until_secs,
            sigma: rng.gen_range(0.3..1.5),
        },
        _ => FaultSpecJson::ControllerStall {
            from_secs,
            until_secs,
        },
    }
}

/// A random phase with rates around the cluster's interesting band.
fn random_phase(rng: &mut SmallRng) -> PhaseSpec {
    let duration_secs = rng.gen_range(20..60u64);
    match rng.gen_range(0..5u32) {
        0 => PhaseSpec::Plateau {
            duration_secs,
            rate: rng.gen_range(20.0..300.0),
        },
        1 => PhaseSpec::Ramp {
            duration_secs,
            from: rng.gen_range(10.0..100.0),
            to: rng.gen_range(100.0..400.0),
        },
        2 => {
            let burst_from_secs = rng.gen_range(0..duration_secs / 2);
            let burst_until_secs =
                (burst_from_secs + rng.gen_range(5..duration_secs / 2)).min(duration_secs);
            PhaseSpec::FlashCrowd {
                duration_secs,
                base: rng.gen_range(20.0..100.0),
                peak: rng.gen_range(150.0..500.0),
                burst_from_secs,
                burst_until_secs: burst_until_secs.max(burst_from_secs + 1),
            }
        }
        3 => PhaseSpec::Diurnal {
            duration_secs,
            base: rng.gen_range(50.0..150.0),
            amplitude: rng.gen_range(20.0..120.0),
            period_secs: rng.gen_range(10..40),
        },
        _ => PhaseSpec::Oscillate {
            duration_secs,
            low: rng.gen_range(10.0..80.0),
            high: rng.gen_range(120.0..400.0),
            period_secs: rng.gen_range(4..30),
        },
    }
}

/// Scale every rate parameter of a phase by `k`.
fn scale_rates(p: &mut PhaseSpec, k: f64) {
    match p {
        PhaseSpec::Plateau { rate, .. } => *rate *= k,
        PhaseSpec::Ramp { from, to, .. } => {
            *from *= k;
            *to *= k;
        }
        PhaseSpec::FlashCrowd { base, peak, .. } => {
            *base *= k;
            *peak *= k;
        }
        PhaseSpec::Diurnal {
            base, amplitude, ..
        } => {
            *base *= k;
            *amplitude *= k;
        }
        PhaseSpec::Oscillate { low, high, .. } => {
            *low *= k;
            *high *= k;
        }
    }
}

/// One mutated child of `parent`. Applies 1–2 random edits and repairs
/// invariants so the child always compiles.
pub fn mutate(rng: &mut SmallRng, parent: &WorkflowSpec) -> WorkflowSpec {
    let mut wf = parent.clone();
    let services = service_names(&wf.app);
    let edits = 1 + rng.gen_range(0..2u32);
    for _ in 0..edits {
        let ti = rng.gen_range(0..wf.tracks.len());
        let n_phases = wf.tracks[ti].phases.len();
        let pi = rng.gen_range(0..n_phases);
        match rng.gen_range(0..7u32) {
            // Push a phase's rates up or down.
            0 => scale_rates(&mut wf.tracks[ti].phases[pi], rng.gen_range(0.5..2.0)),
            // Stretch or compress a phase in time.
            1 => {
                let k = rng.gen_range(0.5..2.0);
                let p = &mut wf.tracks[ti].phases[pi];
                let d = ((p.duration_secs() as f64 * k) as u64).clamp(8, 120);
                *p = resize_phase(p, d);
            }
            // Grow the workload with a fresh phase.
            2 => {
                let p = random_phase(rng);
                let at = rng.gen_range(0..=n_phases);
                wf.tracks[ti].phases.insert(at, p);
            }
            // Drop a phase (keep at least one).
            3 if n_phases > 1 => {
                wf.tracks[ti].phases.remove(pi);
            }
            // Schedule a new gray fault.
            4 => {
                let f = random_fault(rng, wf.duration_secs(), &services);
                wf.faults.push(f);
            }
            // Remove a fault.
            5 if !wf.faults.is_empty() => {
                let fi = rng.gen_range(0..wf.faults.len());
                wf.faults.remove(fi);
            }
            // Fall back to a rate tweak when the structural edit
            // doesn't apply (single phase / no faults).
            _ => scale_rates(&mut wf.tracks[ti].phases[pi], rng.gen_range(0.75..1.5)),
        }
    }
    debug_assert!(wf.validate().is_ok(), "mutations must preserve validity");
    wf
}

/// Set a phase's duration, rescaling its internal landmarks to fit.
fn resize_phase(p: &PhaseSpec, new_d: u64) -> PhaseSpec {
    let old_d = p.duration_secs().max(1);
    let mut q = p.clone();
    match &mut q {
        PhaseSpec::Plateau { duration_secs, .. } | PhaseSpec::Ramp { duration_secs, .. } => {
            *duration_secs = new_d;
        }
        PhaseSpec::FlashCrowd {
            duration_secs,
            burst_from_secs,
            burst_until_secs,
            ..
        } => {
            *burst_from_secs = (*burst_from_secs * new_d / old_d).min(new_d.saturating_sub(2));
            *burst_until_secs =
                (*burst_until_secs * new_d / old_d).clamp(*burst_from_secs + 1, new_d);
            *duration_secs = new_d;
        }
        PhaseSpec::Diurnal { duration_secs, .. } | PhaseSpec::Oscillate { duration_secs, .. } => {
            *duration_secs = new_d;
        }
    }
    q
}

/// Run the controller arm and the no-controller oracle for one genome.
/// The pair fans out over the experiment worker pool; results come
/// back in submission order, so the pairing is deterministic at any
/// worker count.
pub fn run_pair(wf: &WorkflowSpec) -> Result<(ScenarioOutcome, ScenarioOutcome), String> {
    let arm_sc = wf.compile()?;
    let mut oracle_wf = wf.clone();
    oracle_wf.controller = ControllerSpec::None;
    oracle_wf.name = format!("{}-oracle", wf.name);
    let oracle_sc = oracle_wf.compile()?;
    let mut plan = RunPlan::new();
    plan.submit(move || run_scenario(&arm_sc));
    plan.submit(move || run_scenario(&oracle_sc));
    let mut results = plan.run().into_iter();
    let arm = results.next().expect("arm result")?;
    let oracle = results.next().expect("oracle result")?;
    Ok((arm, oracle))
}

/// Evaluate one genome against every objective.
fn violations_for(wf: &WorkflowSpec) -> Result<(Vec<Violation>, ScenarioOutcome), String> {
    let (arm, oracle) = run_pair(wf)?;
    let v = objectives::evaluate(wf, &arm, &oracle);
    Ok((v, arm))
}

/// Run a fuzz campaign. Deterministic per `cfg.seed`: the same config
/// finds the same genomes, shrinks them the same way, and reports the
/// same fingerprints.
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let base = cfg.base.clone().unwrap_or_else(base_workflow);
    base.compile()
        .map_err(|e| format!("base workflow does not compile: {e}"))?;
    let mut corpus: Vec<WorkflowSpec> = vec![base];
    let mut findings: Vec<Finding> = Vec::new();
    let mut found: Vec<Objective> = Vec::new();
    let mut pair_evals = 0u32;

    for iter in 0..cfg.iters {
        let parent = corpus[rng.gen_range(0..corpus.len())].clone();
        let mut genome = mutate(&mut rng, &parent);
        genome.name = format!("fuzz-{}-{}", cfg.seed, iter);
        genome.seed = cfg.seed;
        let (violations, _) = violations_for(&genome)?;
        pair_evals += 1;
        // Corpus update: every viable genome can become a parent, so
        // the walk drifts; replacement keeps the pool bounded.
        if corpus.len() < CORPUS_CAP {
            corpus.push(genome.clone());
        } else {
            let slot = rng.gen_range(1..corpus.len()); // slot 0 = base, kept
            corpus[slot] = genome.clone();
        }
        for v in violations {
            if found.contains(&v.objective) {
                continue; // one reproducer per weakness class
            }
            found.push(v.objective);
            let objective = v.objective;
            let mut shrink_evals = 0u32;
            let shrunk = shrink::shrink(&genome, cfg.max_shrink_evals, &mut |cand| {
                shrink_evals += 1;
                match violations_for(cand) {
                    Ok((vs, _)) => objectives::trips(&vs, objective),
                    Err(_) => false,
                }
            });
            pair_evals += shrink_evals;
            // Re-run the minimal genome for its detail + fingerprint.
            let (final_vs, final_arm) = violations_for(&shrunk.genome)?;
            pair_evals += 1;
            let detail = final_vs
                .iter()
                .find(|x| x.objective == objective)
                .map(|x| x.detail.clone())
                .unwrap_or_else(|| v.detail.clone());
            let jsonl = obs::to_jsonl(&final_arm.journal);
            let fingerprint = format!("{:#018x}", obs::journal_fingerprint(&jsonl));
            let files = match &cfg.out_dir {
                Some(dir) => write_finding(dir, cfg.seed, iter, objective, &shrunk.genome)?,
                None => vec![],
            };
            findings.push(Finding {
                iter,
                objective: objective.slug().into(),
                detail,
                shrink_steps: shrunk.steps,
                shrink_evals,
                journal_fingerprint: fingerprint,
                files,
                genome: shrunk.genome.clone(),
            });
        }
    }
    Ok(FuzzReport {
        seed: cfg.seed,
        iters: cfg.iters,
        pair_evals,
        findings,
    })
}

/// Write a reproducer pair: the compiled plain scenario (replayable by
/// `topfull-sim run`/`check` with no fuzzer involved) and the workflow
/// genome (replayable by `topfull workflow` and the regression tests).
fn write_finding(
    dir: &std::path::Path,
    seed: u64,
    iter: u32,
    objective: Objective,
    genome: &WorkflowSpec,
) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let stem = format!("fuzz_{seed}_{iter}_{}", objective.slug());
    let mut written = Vec::new();
    let sc = genome.compile()?;
    for (suffix, text) in [
        (
            ".json",
            serde_json::to_string_pretty(&sc).expect("scenario serializes"),
        ),
        (
            ".workflow.json",
            serde_json::to_string_pretty(genome).expect("workflow serializes"),
        ),
    ] {
        let path = dir.join(format!("{stem}{suffix}"));
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_workflow_compiles_and_validates() {
        let sc = base_workflow().compile().expect("compiles");
        topfull_cli::validate_scenario(&sc).expect("validates");
        assert_eq!(sc.duration_secs, 120);
    }

    #[test]
    fn mutation_stream_is_deterministic_per_seed() {
        let base = base_workflow();
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let ga = mutate(&mut a, &base);
            let gb = mutate(&mut b, &base);
            assert_eq!(
                serde_json::to_string(&ga).unwrap(),
                serde_json::to_string(&gb).unwrap()
            );
        }
    }

    #[test]
    fn mutants_always_compile() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut wf = base_workflow();
        for _ in 0..200 {
            wf = mutate(&mut rng, &wf);
            wf.compile().expect("every mutant compiles");
        }
    }

    #[test]
    fn run_pair_produces_arm_and_oracle() {
        let mut wf = base_workflow();
        // Shorten for test speed; keep the overload character.
        wf.tracks[0].phases = vec![PhaseSpec::Plateau {
            duration_secs: 30,
            rate: 150.0,
        }];
        wf.measure_from_secs = 10;
        let (arm, oracle) = run_pair(&wf).expect("pair runs");
        // 150 rps offered against a ~100 rps backend: uncontrolled, the
        // queues blow past the SLO and goodput collapses; the TopFull
        // arm sheds load and keeps serving. The pair existing to show
        // exactly this gap is what the objectives are built on.
        assert!(arm.total_goodput > 0.0);
        assert!(
            arm.total_goodput > oracle.total_goodput,
            "controller must beat the uncontrolled oracle under overload \
             (arm {:.1} vs oracle {:.1})",
            arm.total_goodput,
            oracle.total_goodput
        );
        assert!(!arm.journal.is_empty(), "controlled arm journals decisions");
    }
}
