//! Greedy workflow shrinking: reduce a tripping genome to a minimal
//! reproducer that still trips the same objective.
//!
//! Candidates are generated in a fixed order (drop a fault, drop a
//! track, drop a phase, halve a long phase) and the first candidate
//! that still trips is accepted. Every acceptable candidate strictly
//! decreases [`size`], so the loop terminates no matter what the
//! tripping predicate does; an eval budget bounds the worst case on
//! top of that.

use crate::workflow::{PhaseSpec, WorkflowSpec};

/// Below this, phase durations stop halving — the simulator needs a
/// few control ticks for any behaviour to be observable at all.
const MIN_PHASE_SECS: u64 = 16;

/// Structural size of a genome: what shrinking minimises. Strictly
/// decreases on every accepted candidate (the termination argument).
pub fn size(wf: &WorkflowSpec) -> u64 {
    let components =
        wf.faults.len() + wf.tracks.len() + wf.tracks.iter().map(|t| t.phases.len()).sum::<usize>();
    wf.duration_secs() + 50 * components as u64
}

/// Halve a phase's duration, scaling its internal landmarks so the
/// shape survives (a flash crowd keeps its burst, a wave keeps cycles).
fn halve_phase(p: &PhaseSpec) -> PhaseSpec {
    let mut q = p.clone();
    match &mut q {
        PhaseSpec::Plateau { duration_secs, .. } | PhaseSpec::Ramp { duration_secs, .. } => {
            *duration_secs /= 2;
        }
        PhaseSpec::FlashCrowd {
            duration_secs,
            burst_from_secs,
            burst_until_secs,
            ..
        } => {
            *duration_secs /= 2;
            *burst_from_secs /= 2;
            *burst_until_secs = (*burst_until_secs / 2).max(*burst_from_secs + 1);
        }
        PhaseSpec::Diurnal {
            duration_secs,
            period_secs,
            ..
        }
        | PhaseSpec::Oscillate {
            duration_secs,
            period_secs,
            ..
        } => {
            *duration_secs /= 2;
            *period_secs = (*period_secs / 2).max(2);
        }
    }
    q
}

/// All one-step-smaller candidates, in shrink-preference order:
/// structure first (faults, tracks, phases), then time.
fn candidates(wf: &WorkflowSpec) -> Vec<WorkflowSpec> {
    let mut out = Vec::new();
    for i in 0..wf.faults.len() {
        let mut c = wf.clone();
        c.faults.remove(i);
        out.push(c);
    }
    if wf.tracks.len() > 1 {
        for i in 0..wf.tracks.len() {
            let mut c = wf.clone();
            c.tracks.remove(i);
            out.push(c);
        }
    }
    for ti in 0..wf.tracks.len() {
        if wf.tracks[ti].phases.len() > 1 {
            for pi in 0..wf.tracks[ti].phases.len() {
                let mut c = wf.clone();
                c.tracks[ti].phases.remove(pi);
                out.push(c);
            }
        }
    }
    for ti in 0..wf.tracks.len() {
        for pi in 0..wf.tracks[ti].phases.len() {
            if wf.tracks[ti].phases[pi].duration_secs() >= 2 * MIN_PHASE_SECS {
                let mut c = wf.clone();
                c.tracks[ti].phases[pi] = halve_phase(&wf.tracks[ti].phases[pi]);
                out.push(c);
            }
        }
    }
    // Only structurally valid, strictly smaller candidates survive —
    // the strict decrease is what guarantees termination.
    out.retain(|c| c.validate().is_ok() && size(c) < size(wf));
    out
}

/// Outcome of a shrink run.
pub struct Shrunk {
    /// The minimal genome that still trips (the input itself when no
    /// candidate survived).
    pub genome: WorkflowSpec,
    /// Predicate evaluations spent.
    pub evals: u32,
    /// Accepted shrink steps.
    pub steps: u32,
}

/// Greedily shrink `wf` under `still_trips` (true ⇒ the candidate still
/// reproduces the finding). The caller's predicate typically re-runs
/// the simulator pair, so `max_evals` caps total cost.
pub fn shrink(
    wf: &WorkflowSpec,
    max_evals: u32,
    still_trips: &mut dyn FnMut(&WorkflowSpec) -> bool,
) -> Shrunk {
    let mut current = wf.clone();
    let mut evals = 0u32;
    let mut steps = 0u32;
    'outer: loop {
        for cand in candidates(&current) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if still_trips(&cand) {
                current = cand;
                steps += 1;
                continue 'outer; // restart from the smaller genome
            }
        }
        break; // no candidate trips: local minimum
    }
    Shrunk {
        genome: current,
        evals,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::TrackSpec;
    use topfull_cli::schema::{ControllerSpec, FaultSpecJson, Scenario};

    fn big_genome() -> WorkflowSpec {
        WorkflowSpec {
            name: "big".into(),
            seed: 3,
            slo_ms: 1000,
            app: Scenario::example().app,
            tracks: vec![TrackSpec {
                api: "get".into(),
                phases: vec![
                    PhaseSpec::Plateau {
                        duration_secs: 64,
                        rate: 60.0,
                    },
                    PhaseSpec::FlashCrowd {
                        duration_secs: 64,
                        base: 60.0,
                        peak: 300.0,
                        burst_from_secs: 16,
                        burst_until_secs: 40,
                    },
                    PhaseSpec::Oscillate {
                        duration_secs: 64,
                        low: 20.0,
                        high: 200.0,
                        period_secs: 16,
                    },
                ],
            }],
            controller: ControllerSpec::default(),
            faults: vec![
                FaultSpecJson::ControllerStall {
                    from_secs: 10,
                    until_secs: 20,
                },
                FaultSpecJson::TelemetryNoise {
                    from_secs: 30,
                    until_secs: 50,
                    sigma: 0.8,
                },
            ],
            resilience: None,
            sharding: None,
            measure_from_secs: 10,
        }
    }

    #[test]
    fn shrinks_to_local_minimum_when_everything_trips() {
        // A predicate that always trips shrinks as far as the candidate
        // generator can go; the result must still be a valid workflow.
        let wf = big_genome();
        let out = shrink(&wf, 10_000, &mut |_| true);
        assert!(out.steps > 0, "some shrinking must happen");
        assert!(size(&out.genome) < size(&wf));
        out.genome.validate().expect("shrunk genome stays valid");
        assert!(out.genome.faults.is_empty(), "droppable faults dropped");
        assert_eq!(out.genome.tracks[0].phases.len(), 1);
        // Fixed point: no further candidate shrinks it.
        assert!(candidates(&out.genome)
            .iter()
            .all(|c| size(c) < size(&out.genome)));
    }

    #[test]
    fn returns_input_when_nothing_trips() {
        let wf = big_genome();
        let out = shrink(&wf, 10_000, &mut |_| false);
        assert_eq!(out.steps, 0);
        assert_eq!(size(&out.genome), size(&wf));
    }

    #[test]
    fn every_candidate_is_strictly_smaller() {
        // The termination invariant itself.
        let wf = big_genome();
        for c in candidates(&wf) {
            assert!(size(&c) < size(&wf), "candidate must shrink");
        }
    }

    #[test]
    fn respects_the_eval_budget() {
        let wf = big_genome();
        let mut calls = 0u32;
        let out = shrink(&wf, 5, &mut |_| {
            calls += 1;
            false
        });
        assert_eq!(out.evals, 5);
        assert_eq!(calls, 5);
    }
}
