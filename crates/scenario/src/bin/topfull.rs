//! `topfull` — live serving plane, workflow matrices, and the fuzzer.
//!
//! ```text
//! topfull live <scenario.json> --duration <secs> [--json]
//! topfull explain <run.json|journal.jsonl>
//! topfull trace <run.json|traces.jsonl|http://host:port> [--id <trace>]
//! topfull workflow <workflow.json> [--check | --emit]
//! topfull matrix <matrix.json> [--json | --check] [--workers <n>]
//! topfull fuzz [--seed <n>] [--iters <k>] [--base <workflow.json>]
//!              [--out <dir>] [--json]
//! ```
//!
//! `live` serves the scenario's topology as a real multi-threaded TCP
//! gateway plus CPU-burning worker pool on 127.0.0.1 and drives the
//! same TopFull controller the simulator uses on a real timer tick.
//! `workflow` compiles a declarative phase workflow to the plain
//! scenario schema; `matrix` expands workloads × fault plans ×
//! controller arms and runs every cell through the experiment worker
//! pool; `fuzz` mutates workflow genomes against SLO-violation
//! objectives and shrinks findings to minimal reproducers.

use topfull_cli::schema::{ShardFaultJson, ShardingSpec};
use topfull_cli::{explain_file, parse_scenario, render_report, run_live, Scenario};
use topfull_scenario::{fuzz, matrix, parse_matrix, parse_workflow, run_matrix, FuzzConfig};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  topfull live <scenario.json> --duration <secs> [--json] \
         [--shards <n>] [--kill-shard <i>@<secs>]"
    );
    eprintln!("  topfull explain <run.json|journal.jsonl> [--fingerprint]");
    eprintln!("  topfull trace <run.json|traces.jsonl|http://host:port> [--id <trace>]");
    eprintln!("  topfull workflow <workflow.json> [--check | --emit]");
    eprintln!("  topfull matrix <matrix.json> [--json | --check] [--workers <n>]");
    eprintln!(
        "  topfull fuzz [--seed <n>] [--iters <k>] [--base <workflow.json>] \
         [--out <dir>] [--json]"
    );
    eprintln!();
    eprintln!("  --shards n          run n gateway shards under one logical controller");
    eprintln!("                      (overrides the scenario's sharding.shards)");
    eprintln!("  --kill-shard i@secs SIGKILL-style shard death at scenario-time secs");
    eprintln!("  --fingerprint       print the journal's order-sensitive fingerprint");
    eprintln!("  --id t              render only trace id t's waterfall");
    eprintln!("  --check             validate without running");
    eprintln!("  --emit              print the compiled plain scenario JSON");
    eprintln!("  --workers n         worker pool size (default: TOPFULL_WORKERS or cores)");
    eprintln!("  --seed n            fuzz mutation seed (default 1)");
    eprintln!("  --iters k           genomes to evaluate (default 40)");
    eprintln!("  --out dir           where shrunk reproducers land (default scenarios/found)");
    std::process::exit(2)
}

/// `--flag <value>` lookup with parse.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter().position(|a| a == flag).map(|i| {
        match args.get(i + 1).and_then(|v| v.parse::<T>().ok()) {
            Some(v) => v,
            None => usage(),
        }
    })
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn fail(e: String) -> ! {
    eprintln!("{e}");
    std::process::exit(1)
}

fn cmd_workflow(args: &[String]) {
    let path = args.get(1).unwrap_or_else(|| usage());
    let wf = parse_workflow(&read_file(path)).unwrap_or_else(|e| {
        eprintln!("invalid: {path}: {e}");
        std::process::exit(1);
    });
    let sc = wf.compile().unwrap_or_else(|e| {
        eprintln!("invalid: {path}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = topfull_cli::validate_scenario(&sc) {
        eprintln!("invalid: {path}: compiled scenario fails validation: {e}");
        std::process::exit(1);
    }
    if args.iter().any(|a| a == "--emit") {
        println!(
            "{}",
            serde_json::to_string_pretty(&sc).expect("scenario serializes")
        );
        return;
    }
    // --check and the bare form both land here: compile + validate,
    // then summarize what the workflow unrolls to.
    println!(
        "ok: {} ({path}) — {} track(s), {}s, {} fault(s), quiesces at {}",
        wf.name,
        wf.tracks.len(),
        wf.duration_secs(),
        wf.faults.len(),
        match wf.quiesce_secs() {
            Some(q) => format!("{q:.0}s"),
            None => "never (permanent fault)".into(),
        }
    );
}

fn cmd_matrix(args: &[String]) {
    let path = args.get(1).unwrap_or_else(|| usage());
    let spec = parse_matrix(&read_file(path)).unwrap_or_else(|e| {
        eprintln!("invalid: {path}: {e}");
        std::process::exit(1);
    });
    if args.iter().any(|a| a == "--check") {
        match spec.check() {
            Ok(cells) => println!("ok: {} ({path}) — {cells} cells validate", spec.name),
            Err(e) => fail(format!("invalid: {path}: {e}")),
        }
        return;
    }
    let workers = flag_value::<usize>(args, "--workers");
    let report = run_matrix(&spec, workers).unwrap_or_else(|e| fail(e));
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        print!("{}", matrix::render_matrix(&report));
    }
}

fn cmd_fuzz(args: &[String]) {
    let mut cfg = FuzzConfig {
        seed: flag_value::<u64>(args, "--seed").unwrap_or(1),
        iters: flag_value::<u32>(args, "--iters").unwrap_or(40),
        out_dir: Some(
            args.iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::PathBuf::from("scenarios/found")),
        ),
        ..FuzzConfig::default()
    };
    if let Some(i) = args.iter().position(|a| a == "--base") {
        let path = args.get(i + 1).unwrap_or_else(|| usage());
        let wf = parse_workflow(&read_file(path)).unwrap_or_else(|e| {
            eprintln!("invalid: {path}: {e}");
            std::process::exit(1);
        });
        cfg.base = Some(wf);
    }
    let report = fuzz::run_fuzz(&cfg).unwrap_or_else(|e| fail(e));
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        print!("{}", fuzz::render_fuzz(&report));
    }
    if !report.findings.is_empty() {
        std::process::exit(3); // findings are a distinct exit code
    }
}

/// Parse `i@secs` for `--kill-shard`.
fn parse_kill(arg: &str) -> Option<(usize, u64)> {
    let (shard, at) = arg.split_once('@')?;
    Some((shard.parse().ok()?, at.parse().ok()?))
}

/// Fold `--shards` / `--kill-shard` into the scenario's sharding spec,
/// creating one (with defaults) if the file had none.
fn apply_shard_flags(sc: &mut Scenario, shards: Option<usize>, kill: Option<(usize, u64)>) {
    if shards.is_none() && kill.is_none() {
        return;
    }
    let spec = sc.sharding.get_or_insert_with(|| ShardingSpec {
        shards: shards.unwrap_or(1),
        ..ShardingSpec::default()
    });
    if let Some(n) = shards {
        spec.shards = n;
    }
    if let Some((shard, at_secs)) = kill {
        spec.faults.push(ShardFaultJson::Kill { shard, at_secs });
    }
}

fn load(path: &str) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_scenario(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("live") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let duration = args
                .iter()
                .position(|a| a == "--duration")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            let as_json = args.iter().any(|a| a == "--json");
            let shards = args.iter().position(|a| a == "--shards").map(|i| {
                match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => usage(),
                }
            });
            let kill = args.iter().position(|a| a == "--kill-shard").map(|i| {
                match args.get(i + 1).map(String::as_str).map(parse_kill) {
                    Some(Some(k)) => k,
                    _ => usage(),
                }
            });
            let mut sc = load(path);
            apply_shard_flags(&mut sc, shards, kill);
            match run_live(&sc, duration) {
                Ok(out) => {
                    if as_json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&out).expect("serializable outcome")
                        );
                    } else {
                        print!("{}", render_report(&sc, &out));
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("explain") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let run = if args.iter().any(|a| a == "--fingerprint") {
                topfull_cli::explain::fingerprint_file(path).map(|fp| format!("{fp}\n"))
            } else {
                explain_file(path)
            };
            match run {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("trace") => {
            let src = args.get(1).unwrap_or_else(|| usage());
            let id = flag_value::<u64>(&args, "--id");
            match topfull_cli::trace_source(src, id) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("workflow") => cmd_workflow(&args),
        Some("matrix") => cmd_matrix(&args),
        Some("fuzz") => cmd_fuzz(&args),
        _ => usage(),
    }
}
