//! # topfull-scenario — adversarial scenario engine
//!
//! The layer above the JSON scenario runner: instead of hand-writing
//! one scenario at a time, operators compose **workflows** from
//! reusable phases (plateau, ramp, flash crowd, diurnal, oscillating),
//! cross them with fault schedules and controller arms into
//! **matrices**, and turn a seeded **fuzzer** loose on the controller.
//!
//! - [`workflow`] — the phase/track model and the pure compiler down to
//!   the plain [`topfull_cli::Scenario`] schema, so every plane
//!   (simulator, live TCP gateway, sharded control plane) runs
//!   workflow-generated scenarios unchanged.
//! - [`matrix`] — workloads × fault plans × arms, expanded and executed
//!   through the experiment worker pool, with a journal fingerprint per
//!   cell so determinism is diffable.
//! - [`objectives`] — what counts as a controller weakness: goodput
//!   collapse vs a no-controller oracle, failure to re-converge after a
//!   disturbance clears, sustained p99 breach with no exonerating
//!   fault, and rate-limit ringing.
//! - [`fuzz`] — the seeded mutation loop over workflow genomes.
//! - [`shrink`] — greedy reduction of a tripping genome to a minimal
//!   reproducer (strictly-decreasing size ⇒ guaranteed termination).
//!
//! The `topfull` binary (in this crate) fronts all of it, next to the
//! live-plane and journal-explain subcommands.

pub mod fuzz;
pub mod matrix;
pub mod objectives;
pub mod shrink;
pub mod workflow;

pub use fuzz::{run_fuzz, FuzzConfig, FuzzReport};
pub use matrix::{parse_matrix, run_matrix, MatrixReport, MatrixSpec};
pub use objectives::{evaluate, trips, Objective, Violation};
pub use workflow::{parse_workflow, PhaseSpec, TrackSpec, WorkflowSpec};
