//! Overload detection from per-service resource utilization.
//!
//! "We detect overloaded microservices when the resource utilization of a
//! microservice exceeds a predetermined threshold" (§4.2). The paper's
//! trace analysis classifies services as overloaded above 0.8 CPU
//! utilization, which we adopt as the default. A small hysteresis gap
//! keeps services from flapping in and out of the overloaded set at the
//! 1-second cadence.

use cluster::observe::ClusterObservation;
use cluster::types::ServiceId;

/// Utilization-threshold overload detector with hysteresis.
#[derive(Clone, Debug)]
pub struct OverloadDetector {
    /// Enter the overloaded set above this utilization.
    pub enter: f64,
    /// Leave the overloaded set below this utilization.
    pub exit: f64,
    currently_overloaded: Vec<bool>,
}

impl OverloadDetector {
    /// Detector with the paper's 0.8 threshold (exit at 0.75).
    pub fn new(num_services: usize) -> Self {
        Self::with_thresholds(num_services, 0.8, 0.75)
    }

    /// Detector with explicit enter/exit thresholds (`exit ≤ enter`).
    pub fn with_thresholds(num_services: usize, enter: f64, exit: f64) -> Self {
        assert!(exit <= enter, "hysteresis requires exit ≤ enter");
        OverloadDetector {
            enter,
            exit,
            currently_overloaded: vec![false; num_services],
        }
    }

    /// Update from an observation; returns the overloaded set, ascending.
    pub fn detect(&mut self, obs: &ClusterObservation) -> Vec<ServiceId> {
        let mut out = Vec::new();
        for w in &obs.services {
            let flag = &mut self.currently_overloaded[w.service.idx()];
            if *flag {
                if w.utilization < self.exit {
                    *flag = false;
                }
            } else if w.utilization > self.enter {
                *flag = true;
            }
            if *flag {
                out.push(w.service);
            }
        }
        out
    }

    /// Whether a service is currently flagged.
    pub fn is_overloaded(&self, svc: ServiceId) -> bool {
        self.currently_overloaded[svc.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::observe::{ApiWindow, ServiceWindow};
    use simnet::{SimDuration, SimTime};

    fn obs(utils: &[f64]) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            services: utils
                .iter()
                .enumerate()
                .map(|(i, u)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: *u,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::ZERO,
                    started_calls: 0,
                    dropped_calls: 0,
                })
                .collect(),
            apis: Vec::<ApiWindow>::new(),
            api_paths: vec![],
            slo: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn detects_above_enter_threshold() {
        let mut d = OverloadDetector::new(3);
        let got = d.detect(&obs(&[0.5, 0.85, 0.79]));
        assert_eq!(got, vec![ServiceId(1)]);
    }

    #[test]
    fn hysteresis_holds_between_thresholds() {
        let mut d = OverloadDetector::new(1);
        assert_eq!(d.detect(&obs(&[0.9])).len(), 1);
        // 0.77 is between exit (0.75) and enter (0.8): stays overloaded.
        assert_eq!(d.detect(&obs(&[0.77])).len(), 1);
        assert!(d.is_overloaded(ServiceId(0)));
        // Below exit: clears.
        assert!(d.detect(&obs(&[0.7])).is_empty());
        // Back between thresholds: stays clear.
        assert!(d.detect(&obs(&[0.77])).is_empty());
    }

    #[test]
    #[should_panic(expected = "exit ≤ enter")]
    fn invalid_thresholds_panic() {
        OverloadDetector::with_thresholds(1, 0.5, 0.9);
    }
}
