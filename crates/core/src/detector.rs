//! Overload detection from per-service resource utilization.
//!
//! "We detect overloaded microservices when the resource utilization of a
//! microservice exceeds a predetermined threshold" (§4.2). The paper's
//! trace analysis classifies services as overloaded above 0.8 CPU
//! utilization, which we adopt as the default. A small hysteresis gap
//! keeps services from flapping in and out of the overloaded set at the
//! 1-second cadence.
//!
//! The detector also tolerates degraded telemetry: a non-finite
//! utilization sample (NaN from a metrics dropout, say) is replaced by the
//! service's last good value as long as that value is younger than
//! [`OverloadDetector::max_sample_age`]. Past that age the service's
//! state is *unknown*, which is treated as not-newly-overloaded: the flag
//! is held where it was, so a blinded detector neither flags healthy
//! services nor releases pressure on services that were overloaded when
//! the lights went out.

use cluster::observe::ClusterObservation;
use cluster::types::ServiceId;
use simnet::{SimDuration, SimTime};
use std::fmt;

/// Rejected detector configuration (see
/// [`OverloadDetector::with_thresholds`]).
#[derive(Clone, Debug, PartialEq)]
pub struct InvalidThresholds {
    /// The offending enter threshold.
    pub enter: f64,
    /// The offending exit threshold.
    pub exit: f64,
}

impl fmt::Display for InvalidThresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hysteresis requires finite exit ≤ enter, got enter={} exit={}",
            self.enter, self.exit
        )
    }
}

impl std::error::Error for InvalidThresholds {}

/// Utilization-threshold overload detector with hysteresis.
#[derive(Clone, Debug)]
pub struct OverloadDetector {
    /// Enter the overloaded set above this utilization.
    pub enter: f64,
    /// Leave the overloaded set below this utilization.
    pub exit: f64,
    /// How stale a last-good utilization sample may be and still stand in
    /// for a missing one.
    pub max_sample_age: SimDuration,
    currently_overloaded: Vec<bool>,
    last_good: Vec<f64>,
    last_good_at: Vec<Option<SimTime>>,
}

impl OverloadDetector {
    /// Detector with the paper's 0.8 threshold (exit at 0.75).
    pub fn new(num_services: usize) -> Self {
        Self::with_thresholds(num_services, 0.8, 0.75).expect("default thresholds are valid")
    }

    /// Detector with explicit enter/exit thresholds. Both must be finite
    /// with `exit ≤ enter`, otherwise the configuration is rejected.
    pub fn with_thresholds(
        num_services: usize,
        enter: f64,
        exit: f64,
    ) -> Result<Self, InvalidThresholds> {
        if !enter.is_finite() || !exit.is_finite() || exit > enter {
            return Err(InvalidThresholds { enter, exit });
        }
        Ok(OverloadDetector {
            enter,
            exit,
            max_sample_age: SimDuration::from_secs(5),
            currently_overloaded: vec![false; num_services],
            last_good: vec![0.0; num_services],
            last_good_at: vec![None; num_services],
        })
    }

    /// Override the staleness bound on last-good utilization samples.
    pub fn with_max_sample_age(mut self, age: SimDuration) -> Self {
        self.max_sample_age = age;
        self
    }

    /// Update from an observation; returns the overloaded set, ascending.
    pub fn detect(&mut self, obs: &ClusterObservation) -> Vec<ServiceId> {
        let mut out = Vec::new();
        for w in &obs.services {
            let i = w.service.idx();
            let util = if w.utilization.is_finite() {
                self.last_good[i] = w.utilization;
                self.last_good_at[i] = Some(obs.now);
                Some(w.utilization)
            } else {
                // Degraded sample: fall back to the last good value if it
                // is fresh enough, else the state is unknown.
                self.last_good_at[i]
                    .filter(|t| obs.now.duration_since(*t) <= self.max_sample_age)
                    .map(|_| self.last_good[i])
            };
            let flag = &mut self.currently_overloaded[i];
            // Unknown (`None`) is not healthy: hold the flag as-is.
            if let Some(u) = util {
                if *flag {
                    if u < self.exit {
                        *flag = false;
                    }
                } else if u > self.enter {
                    *flag = true;
                }
            }
            if *flag {
                out.push(w.service);
            }
        }
        out
    }

    /// Whether a service is currently flagged.
    pub fn is_overloaded(&self, svc: ServiceId) -> bool {
        self.currently_overloaded[svc.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::observe::{ApiWindow, ServiceWindow};

    fn obs_at(now: SimTime, utils: &[f64]) -> ClusterObservation {
        ClusterObservation {
            now,
            window: SimDuration::from_secs(1),
            services: utils
                .iter()
                .enumerate()
                .map(|(i, u)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: *u,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::ZERO,
                    started_calls: 0,
                    dropped_calls: 0,
                })
                .collect(),
            apis: Vec::<ApiWindow>::new(),
            api_paths: vec![],
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        }
    }

    fn obs(utils: &[f64]) -> ClusterObservation {
        obs_at(SimTime::from_secs(1), utils)
    }

    #[test]
    fn detects_above_enter_threshold() {
        let mut d = OverloadDetector::new(3);
        let got = d.detect(&obs(&[0.5, 0.85, 0.79]));
        assert_eq!(got, vec![ServiceId(1)]);
    }

    #[test]
    fn hysteresis_holds_between_thresholds() {
        let mut d = OverloadDetector::new(1);
        assert_eq!(d.detect(&obs(&[0.9])).len(), 1);
        // 0.77 is between exit (0.75) and enter (0.8): stays overloaded.
        assert_eq!(d.detect(&obs(&[0.77])).len(), 1);
        assert!(d.is_overloaded(ServiceId(0)));
        // Below exit: clears.
        assert!(d.detect(&obs(&[0.7])).is_empty());
        // Back between thresholds: stays clear.
        assert!(d.detect(&obs(&[0.77])).is_empty());
    }

    #[test]
    fn invalid_thresholds_are_rejected() {
        assert!(OverloadDetector::with_thresholds(1, 0.5, 0.9).is_err());
        assert!(OverloadDetector::with_thresholds(1, f64::NAN, 0.5).is_err());
        assert!(OverloadDetector::with_thresholds(1, 0.8, f64::NEG_INFINITY).is_err());
        let err = OverloadDetector::with_thresholds(1, 0.5, 0.9).unwrap_err();
        assert!(err.to_string().contains("exit ≤ enter"));
    }

    #[test]
    fn nan_falls_back_to_fresh_last_good_value() {
        let mut d = OverloadDetector::new(1);
        assert_eq!(d.detect(&obs_at(SimTime::from_secs(1), &[0.9])).len(), 1);
        // Dropout 2 s later: last good value (0.9) is fresh → stays flagged.
        assert_eq!(
            d.detect(&obs_at(SimTime::from_secs(3), &[f64::NAN])).len(),
            1
        );
        // Healthy sample below exit clears it again.
        assert!(d.detect(&obs_at(SimTime::from_secs(4), &[0.5])).is_empty());
        // NaN with a fresh *healthy* last-good value does not flag.
        assert!(d
            .detect(&obs_at(SimTime::from_secs(5), &[f64::NAN]))
            .is_empty());
    }

    #[test]
    fn stale_unknown_holds_flag_state() {
        let mut d = OverloadDetector::new(2);
        // Service 0 overloaded, service 1 healthy at t=1.
        assert_eq!(
            d.detect(&obs_at(SimTime::from_secs(1), &[0.9, 0.2])),
            vec![ServiceId(0)]
        );
        // Total dropout at t=60: both last-good samples are stale, so the
        // state is unknown — flags hold (0 stays flagged, 1 stays clear).
        let got = d.detect(&obs_at(SimTime::from_secs(60), &[f64::NAN, f64::NAN]));
        assert_eq!(got, vec![ServiceId(0)]);
    }

    #[test]
    fn nan_never_newly_flags_a_service() {
        let mut d = OverloadDetector::new(1);
        // No history at all: NaN must not flag.
        assert!(d
            .detect(&obs_at(SimTime::from_secs(1), &[f64::NAN]))
            .is_empty());
    }
}
