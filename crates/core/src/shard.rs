//! Sharded multi-gateway control plane with partition-tolerant failover.
//!
//! Production front doors are replicated: N gateway shards admit traffic
//! for the same backend fleet, while one logical TopFull controller owns
//! the per-API limits. This module keeps the detector / clustering /
//! rate-control stack untouched and adds the distribution layer around
//! it:
//!
//! * **Aggregation** ([`merge_observations`]) — per-shard
//!   [`ClusterObservation`]s are merged into one controller view:
//!   arrival/goodput rates sum, utilization is pod-weighted, latency
//!   percentiles are completion-weighted (p99 takes the max — a tail is
//!   a max, not a mean).
//! * **Splitting** ([`split_limit`]) — each global per-API limit is
//!   divided across live shards proportionally to their observed
//!   arrival share, with a min-quantum floor so a cold shard can still
//!   probe, and per-shard caps used by re-entry ramps.
//! * **Membership** ([`ShardPlane`]) — a shard that misses
//!   `strike_out` consecutive reports is struck out and its quota is
//!   redistributed; when it reports again it re-enters with a ramped
//!   quota cap instead of an instant full share.
//! * **Local degradation** ([`ShardLocalGuard`]) — when the controller
//!   itself is unreachable, a shard holds its last-good limits for a
//!   TTL, then degrades to the PR 1 [`SafeRateController`] MIMD local
//!   fallback. The guard never fails open (an unlimited API gets a
//!   finite blind cap) and never fails closed (quotas are floored).
//!
//! Every aggregation-set change, redistribution, ramp and fallback
//! transition is journaled, so a chaos run is explainable with
//! `topfull explain`.

use crate::rate_controller::{MimdController, RateController, RateState, SafeRateController};
use cluster::controller::Controller;
use cluster::harness::TickSample;
use cluster::observe::ClusterObservation;
use cluster::sharded::{ShardFault, ShardSlicer};
use cluster::types::ApiId;
use cluster::{Engine, RunResult};
use simnet::{SimDuration, SimTime};
use std::sync::Arc;

/// Tuning for the shard plane (splitter, membership, local fallback).
#[derive(Clone, Copy, Debug)]
pub struct ShardPlaneConfig {
    /// Every live shard's quota floor (requests/s): cold shards keep
    /// probing instead of starving.
    pub min_quantum: f64,
    /// Consecutive missed reports before a shard is struck out and its
    /// quota redistributed.
    pub strike_out: u32,
    /// Per-tick growth factor of a re-entering shard's quota cap.
    pub reentry_growth: f64,
    /// Ticks the re-entry ramp lasts.
    pub reentry_ticks: u32,
    /// Ticks a shard holds last-good limits without a controller push
    /// before degrading to the local MIMD fallback.
    pub limit_ttl: u32,
    /// EWMA smoothing of per-shard arrival share.
    pub arrival_alpha: f64,
    /// Cumulative growth cap of any quota while a shard is blind
    /// (controller unreachable): never fail-open.
    pub blind_cap: f64,
    /// Headroom factor used to synthesize a finite blind cap for an
    /// API that was unlimited when the controller vanished.
    pub blind_headroom: f64,
}

impl Default for ShardPlaneConfig {
    fn default() -> Self {
        ShardPlaneConfig {
            min_quantum: 1.0,
            strike_out: 3,
            reentry_growth: 1.25,
            reentry_ticks: 5,
            limit_ttl: 5,
            arrival_alpha: 0.3,
            blind_cap: 1.5,
            blind_headroom: 1.2,
        }
    }
}

/// What the shard plane did over a run (for tests and reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ShardPlaneStats {
    /// Shards struck out after missing `strike_out` reports.
    pub strike_outs: u64,
    /// Ramped re-entries after a struck-out shard reported again.
    pub reentries: u64,
    /// Split rounds run with a changed live set (redistributions).
    pub redistributions: u64,
    /// Observation merges handed to the controller.
    pub merges: u64,
}

/// Sanitize a float for the JSON journal: non-finite encodes as `-1`.
fn jf(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        -1.0
    }
}

/// Split `global` (requests/s; `INFINITY` = unlimited) across shards
/// proportionally to `arrivals`, subject to:
///
/// * dead shards (`!live[i]`) get exactly 0;
/// * every live shard gets at least `min_quantum`;
/// * optional per-shard `caps` bound individual quotas (re-entry ramps);
/// * the quotas sum to `max(global, n_live * min_quantum)` whenever the
///   caps leave enough room (exact conservation; the floor wins over
///   conservation when the global limit is smaller than the floors).
///
/// Pure function; the shard plane and the proptest invariants both call
/// it directly.
pub fn split_limit(
    global: f64,
    arrivals: &[f64],
    live: &[bool],
    min_quantum: f64,
    caps: Option<&[f64]>,
) -> Vec<f64> {
    let n = arrivals.len();
    assert_eq!(live.len(), n, "arrivals/live length mismatch");
    if let Some(c) = caps {
        assert_eq!(c.len(), n, "caps length mismatch");
    }
    let mut out = vec![0.0; n];
    let n_live = live.iter().filter(|l| **l).count();
    if n_live == 0 {
        return out;
    }
    let floor = min_quantum.max(0.0);
    let cap_of = |i: usize| -> f64 {
        let c = caps.map_or(f64::INFINITY, |c| c[i]);
        // A cap below the floor would starve the shard; the floor wins.
        c.max(floor)
    };
    if global.is_infinite() && global > 0.0 {
        for i in 0..n {
            if live[i] {
                out[i] = cap_of(i);
            }
        }
        return out;
    }
    let effective = global.max(0.0).max(n_live as f64 * floor);

    // Floors are granted up front; the remainder above the floors is
    // water-filled proportionally to arrival share, with per-shard caps
    // as upper bounds. Each round either finishes or pins at least one
    // shard at its cap, so the loop is bounded by the shard count.
    let mut excess = vec![0.0; n];
    let mut rem = effective - n_live as f64 * floor;
    let mut rounds = 0;
    while rem > 1e-9 && rounds <= n {
        rounds += 1;
        let free: Vec<usize> = (0..n)
            .filter(|&i| live[i] && excess[i] + 1e-12 < cap_of(i) - floor)
            .collect();
        if free.is_empty() {
            break; // every live shard is pinned at its cap
        }
        let wsum: f64 = free.iter().map(|&i| arrivals[i].max(0.0)).sum();
        let share = |i: usize| -> f64 {
            if wsum > 1e-12 {
                arrivals[i].max(0.0) / wsum
            } else {
                1.0 / free.len() as f64
            }
        };
        let mut next_rem = 0.0;
        let mut pinned_any = false;
        for &i in &free {
            let want = excess[i] + rem * share(i);
            let bound = cap_of(i) - floor;
            if want >= bound {
                next_rem += want - bound;
                excess[i] = bound;
                pinned_any = true;
            } else {
                excess[i] = want;
            }
        }
        rem = next_rem;
        if !pinned_any {
            rem = 0.0;
        }
    }
    for i in 0..n {
        if live[i] {
            out[i] = floor + excess[i];
        }
    }
    out
}

/// Merge per-shard observations into one controller view. Rates and
/// integer counters sum; utilization is pod-weighted; queuing delay is
/// weighted by started calls; p50/p95 are completion-weighted means and
/// p99 is the max over shards; a single unlimited shard makes the
/// merged rate limit unlimited.
pub fn merge_observations(views: &[&ClusterObservation]) -> ClusterObservation {
    assert!(!views.is_empty(), "cannot merge zero observations");
    let mut merged = views[0].clone();
    merged.now = views.iter().map(|v| v.now).max().expect("non-empty");
    merged.window = views.iter().map(|v| v.window).max().expect("non-empty");

    for (si, svc) in merged.services.iter_mut().enumerate() {
        let shard_svcs: Vec<_> = views.iter().map(|v| &v.services[si]).collect();
        svc.alive_pods = shard_svcs.iter().map(|s| s.alive_pods).sum();
        svc.desired_pods = shard_svcs.iter().map(|s| s.desired_pods).sum();
        svc.queue_len = shard_svcs.iter().map(|s| s.queue_len).sum();
        svc.started_calls = shard_svcs.iter().map(|s| s.started_calls).sum();
        svc.dropped_calls = shard_svcs.iter().map(|s| s.dropped_calls).sum();
        svc.utilization = weighted_mean(
            shard_svcs
                .iter()
                .map(|s| (s.utilization, f64::from(s.alive_pods))),
        );
        svc.mean_queuing_delay = SimDuration::from_secs_f64(
            weighted_mean(
                shard_svcs
                    .iter()
                    .map(|s| (s.mean_queuing_delay.as_secs_f64(), s.started_calls as f64)),
            )
            .max(0.0),
        );
    }

    for (ai, api) in merged.apis.iter_mut().enumerate() {
        let shard_apis: Vec<_> = views.iter().map(|v| &v.apis[ai]).collect();
        api.offered = shard_apis.iter().map(|a| a.offered).sum();
        api.admitted = shard_apis.iter().map(|a| a.admitted).sum();
        api.goodput = shard_apis.iter().map(|a| a.goodput).sum();
        api.slo_violated = shard_apis.iter().map(|a| a.slo_violated).sum();
        api.failed = shard_apis.iter().map(|a| a.failed).sum();
        api.rate_limit = shard_apis.iter().map(|a| a.rate_limit).sum();
        let completions = |a: &&&cluster::observe::ApiWindow| a.goodput + a.slo_violated;
        api.p50 = merge_percentile(shard_apis.iter().map(|a| (a.p50, completions(&a))));
        api.p95 = merge_percentile(shard_apis.iter().map(|a| (a.p95, completions(&a))));
        api.p99 = shard_apis.iter().filter_map(|a| a.p99).max();
    }

    let mut res = cluster::ResilienceStats::default();
    for v in views {
        res.add(&v.resilience);
    }
    merged.resilience = res;
    merged
}

/// Weighted mean falling back to the plain mean when all weights are 0.
fn weighted_mean(items: impl Iterator<Item = (f64, f64)> + Clone) -> f64 {
    let wsum: f64 = items.clone().map(|(_, w)| w.max(0.0)).sum();
    if wsum > 0.0 {
        items.map(|(x, w)| x * w.max(0.0) / wsum).sum()
    } else {
        let xs: Vec<f64> = items.map(|(x, _)| x).collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

/// Completion-weighted mean of per-shard percentile estimates.
fn merge_percentile(
    items: impl Iterator<Item = (Option<SimDuration>, f64)> + Clone,
) -> Option<SimDuration> {
    let present: Vec<(f64, f64)> = items
        .filter_map(|(d, w)| d.map(|d| (d.as_secs_f64(), w)))
        .collect();
    if present.is_empty() {
        return None;
    }
    Some(SimDuration::from_secs_f64(
        weighted_mean(present.into_iter()).max(0.0),
    ))
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Membership {
    Live,
    Dead,
    /// Ramping back in; the payload is the ticks left on the ramp.
    Reentering(u32),
}

struct ShardSlot {
    state: Membership,
    misses: u32,
    /// EWMA of per-API arrival rate observed at this shard.
    arrivals: Vec<f64>,
    /// Active quota cap while re-entering (`INFINITY` otherwise).
    quota_cap: f64,
}

/// Membership, arrival-share tracking, observation aggregation and
/// limit splitting for N gateway shards around one logical controller.
pub struct ShardPlane {
    cfg: ShardPlaneConfig,
    slots: Vec<ShardSlot>,
    journal: Option<Arc<obs::Journal>>,
    stats: ShardPlaneStats,
    last_reporting: Option<u32>,
    membership_changed: bool,
}

impl ShardPlane {
    pub fn new(shards: usize, cfg: ShardPlaneConfig) -> Self {
        ShardPlane {
            cfg,
            slots: (0..shards)
                .map(|_| ShardSlot {
                    state: Membership::Live,
                    misses: 0,
                    arrivals: Vec::new(),
                    quota_cap: f64::INFINITY,
                })
                .collect(),
            journal: None,
            stats: ShardPlaneStats::default(),
            last_reporting: None,
            membership_changed: false,
        }
    }

    pub fn attach_journal(&mut self, journal: Arc<obs::Journal>) {
        self.journal = Some(journal);
    }

    pub fn stats(&self) -> ShardPlaneStats {
        self.stats
    }

    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Shards currently eligible for quota (live or re-entering).
    pub fn live(&self) -> Vec<bool> {
        self.slots
            .iter()
            .map(|s| s.state != Membership::Dead)
            .collect()
    }

    /// Did the live set change since the last [`ShardPlane::end_tick`]?
    pub fn membership_changed(&self) -> bool {
        self.membership_changed
    }

    /// Is any shard on a re-entry ramp?
    pub fn any_ramping(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s.state, Membership::Reentering(_)))
    }

    fn live_count(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.state != Membership::Dead)
            .count() as u32
    }

    fn record(&mut self, e: obs::JournalEntry) {
        if let Some(j) = &self.journal {
            j.record(e);
        }
    }

    /// Feed this tick's per-shard reports (`None` = nothing arrived),
    /// advance membership, and return the merged controller view.
    pub fn observe(
        &mut self,
        t: f64,
        reports: &[Option<ClusterObservation>],
    ) -> Option<ClusterObservation> {
        assert_eq!(reports.len(), self.slots.len(), "one report slot per shard");
        for (i, r) in reports.iter().enumerate() {
            match r {
                Some(o) => self.note_report(t, i, o),
                None => self.note_miss(t, i),
            }
        }
        let present: Vec<&ClusterObservation> = reports.iter().flatten().collect();
        if present.is_empty() {
            return None;
        }
        let merged = merge_observations(&present);
        let reporting = present.len() as u32;
        if self.last_reporting != Some(reporting) {
            self.record(obs::JournalEntry::ShardAggregate {
                t,
                reporting,
                total: self.slots.len() as u32,
                goodput: jf(merged.total_goodput()),
            });
            self.last_reporting = Some(reporting);
        }
        self.stats.merges += 1;
        Some(merged)
    }

    fn note_report(&mut self, t: f64, i: usize, o: &ClusterObservation) {
        let was_dead = self.slots[i].state == Membership::Dead;
        let slot = &mut self.slots[i];
        slot.misses = 0;
        if slot.arrivals.len() != o.apis.len() {
            slot.arrivals = o.apis.iter().map(|a| a.offered.max(0.0)).collect();
        } else {
            let a = self.cfg.arrival_alpha.clamp(0.0, 1.0);
            for (e, w) in slot.arrivals.iter_mut().zip(&o.apis) {
                let x = if w.offered.is_finite() {
                    w.offered.max(0.0)
                } else {
                    *e
                };
                *e = a * x + (1.0 - a) * *e;
            }
        }
        if was_dead {
            slot.state = Membership::Reentering(self.cfg.reentry_ticks.max(1));
            slot.quota_cap = self.cfg.min_quantum;
            self.stats.reentries += 1;
            self.membership_changed = true;
            let (live, total) = (self.live_count(), self.slots.len() as u32);
            self.record(obs::JournalEntry::ShardMembership {
                t,
                shard: i as u32,
                event: format!(
                    "reports resumed; re-entering with ramped quota over {} ticks",
                    self.cfg.reentry_ticks.max(1)
                ),
                live,
                total,
            });
        }
    }

    fn note_miss(&mut self, t: f64, i: usize) {
        if self.slots[i].state == Membership::Dead {
            return;
        }
        self.slots[i].misses = self.slots[i].misses.saturating_add(1);
        if self.slots[i].misses >= self.cfg.strike_out.max(1) {
            self.slots[i].state = Membership::Dead;
            self.slots[i].quota_cap = f64::INFINITY;
            self.stats.strike_outs += 1;
            self.membership_changed = true;
            let (live, total) = (self.live_count(), self.slots.len() as u32);
            self.record(obs::JournalEntry::ShardMembership {
                t,
                shard: i as u32,
                event: format!(
                    "struck out after {} missed reports; quota redistributed",
                    self.slots[i].misses
                ),
                live,
                total,
            });
        }
    }

    /// Split the global limit for `api` across live shards by arrival
    /// share, honoring re-entry quota caps. Journaled on
    /// redistributions and while any ramp is active.
    pub fn split(&mut self, t: f64, api: ApiId, global: f64) -> Vec<f64> {
        let live = self.live();
        let arrivals: Vec<f64> = self
            .slots
            .iter()
            .map(|s| s.arrivals.get(api.idx()).copied().unwrap_or(0.0))
            .collect();
        let caps: Vec<f64> = self.slots.iter().map(|s| s.quota_cap).collect();
        let quotas = split_limit(global, &arrivals, &live, self.cfg.min_quantum, Some(&caps));
        if self.membership_changed || self.any_ramping() {
            if self.membership_changed {
                self.stats.redistributions += 1;
            }
            let reason = if self.membership_changed {
                "redistribution: live set changed"
            } else {
                "re-entry ramp in progress"
            };
            let rendered = quotas
                .iter()
                .zip(&live)
                .map(|(q, l)| {
                    if !l {
                        "-".to_string()
                    } else if q.is_infinite() {
                        "inf".to_string()
                    } else {
                        format!("{q:.1}")
                    }
                })
                .collect::<Vec<_>>()
                .join("|");
            self.record(obs::JournalEntry::ShardSplit {
                t,
                api: api.0,
                global: jf(global),
                quotas: rendered,
                reason: reason.into(),
            });
        }
        quotas
    }

    /// End-of-tick bookkeeping: advance re-entry ramps and clear the
    /// membership-change flag.
    pub fn end_tick(&mut self, t: f64) {
        for i in 0..self.slots.len() {
            if let Membership::Reentering(left) = self.slots[i].state {
                if left <= 1 {
                    self.slots[i].state = Membership::Live;
                    self.slots[i].quota_cap = f64::INFINITY;
                    let (live, total) = (self.live_count(), self.slots.len() as u32);
                    self.record(obs::JournalEntry::ShardMembership {
                        t,
                        shard: i as u32,
                        event: "re-entry ramp complete; full quota share restored".into(),
                        live,
                        total,
                    });
                } else {
                    self.slots[i].state = Membership::Reentering(left - 1);
                    self.slots[i].quota_cap *= self.cfg.reentry_growth.max(1.0);
                }
            }
        }
        self.membership_changed = false;
    }
}

/// What one shard's local guard did over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct GuardStats {
    /// Ticks spent holding last-good limits inside the TTL.
    pub held_ticks: u64,
    /// Ticks spent in the local MIMD fallback past the TTL.
    pub fallback_ticks: u64,
    /// Times the shard resynced with a returned controller.
    pub resyncs: u64,
}

/// Shard-local degradation ladder for controller loss: hold last-good
/// limits for `limit_ttl` ticks, then run the [`SafeRateController`]
/// MIMD fallback on the shard's own observation slice — bounded between
/// the min-quantum floor and a finite blind cap, so the shard never
/// fails open (unbounded admit) or closed (zero admit).
pub struct ShardLocalGuard {
    cfg: ShardPlaneConfig,
    shard: u32,
    fallback: SafeRateController,
    ticks_since_push: u32,
    in_fallback: bool,
    hold_logged: bool,
    /// Per-API cumulative ceiling while blind, snapshot at fallback
    /// entry.
    ceilings: Vec<f64>,
    stats: GuardStats,
    journal: Option<Arc<obs::Journal>>,
}

impl ShardLocalGuard {
    pub fn new(shard: u32, cfg: ShardPlaneConfig) -> Self {
        ShardLocalGuard {
            cfg,
            shard,
            fallback: SafeRateController::with_defaults(Arc::new(MimdController::paper_default())),
            ticks_since_push: 0,
            in_fallback: false,
            hold_logged: false,
            ceilings: Vec::new(),
            stats: GuardStats::default(),
            journal: None,
        }
    }

    pub fn attach_journal(&mut self, journal: Arc<obs::Journal>) {
        self.journal = Some(journal);
    }

    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    fn record(&self, e: obs::JournalEntry) {
        if let Some(j) = &self.journal {
            j.record(e);
        }
    }

    /// The controller pushed fresh limits (or a heartbeat) this tick.
    pub fn on_push(&mut self, t: f64) {
        if self.in_fallback {
            self.in_fallback = false;
            self.stats.resyncs += 1;
            self.record(obs::JournalEntry::ShardFallback {
                t,
                shard: self.shard,
                phase: "resync".into(),
                detail: "controller contact restored; pushed limits resume".into(),
            });
        }
        self.ticks_since_push = 0;
        self.hold_logged = false;
        self.ceilings.clear();
    }

    /// One tick without a push. Mutates `quotas` (this shard's per-API
    /// limits) once the TTL expires. Returns `true` if it changed them.
    pub fn tick(&mut self, t: f64, local: &ClusterObservation, quotas: &mut [f64]) -> bool {
        self.ticks_since_push = self.ticks_since_push.saturating_add(1);
        if self.ticks_since_push <= self.cfg.limit_ttl {
            self.stats.held_ticks += 1;
            if !self.hold_logged {
                self.hold_logged = true;
                self.record(obs::JournalEntry::ShardFallback {
                    t,
                    shard: self.shard,
                    phase: "hold".into(),
                    detail: format!(
                        "no controller contact; holding last-good limits (ttl {} ticks)",
                        self.cfg.limit_ttl
                    ),
                });
            }
            return false;
        }
        if !self.in_fallback {
            self.in_fallback = true;
            // Snapshot the blind ceilings: a finite quota may grow at
            // most `blind_cap`× while the controller is away, and an
            // unlimited API gets a finite cap from observed admits.
            self.ceilings = quotas
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let base = if q.is_finite() {
                        q.max(self.cfg.min_quantum)
                    } else {
                        let admitted = local.apis.get(i).map(|a| a.admitted).unwrap_or(0.0);
                        let admitted = if admitted.is_finite() { admitted } else { 0.0 };
                        (admitted * self.cfg.blind_headroom).max(self.cfg.min_quantum)
                    };
                    base * self.cfg.blind_cap.max(1.0)
                })
                .collect();
            self.record(obs::JournalEntry::ShardFallback {
                t,
                shard: self.shard,
                phase: "fallback".into(),
                detail: format!(
                    "ttl expired after {} silent ticks; local mimd fallback engaged",
                    self.ticks_since_push
                ),
            });
        }
        self.stats.fallback_ticks += 1;
        let slo = local.slo.as_secs_f64().max(1e-9);
        for (i, q) in quotas.iter_mut().enumerate() {
            let ceiling = self.ceilings.get(i).copied().unwrap_or(f64::INFINITY);
            let Some(api) = local.apis.get(i) else {
                continue;
            };
            // An unlimited API is blind-capped immediately: admitting
            // unbounded traffic with no controller is fail-open.
            let cur = if q.is_finite() {
                *q
            } else {
                ceiling / self.cfg.blind_cap.max(1.0)
            };
            let state = RateState {
                goodput_ratio: (api.goodput / cur.max(1e-9)).clamp(0.0, 2.0),
                latency_ratio: api.tail_latency().as_secs_f64() / slo,
                total_limit: cur,
            };
            let action = self.fallback.decide(state).clamp(-0.5, 0.5);
            let next = (cur * (1.0 + action))
                .clamp(self.cfg.min_quantum, ceiling.max(self.cfg.min_quantum));
            *q = next;
        }
        true
    }
}

/// Static configuration of a sharded simulation run.
pub struct ShardedConfig {
    pub shards: usize,
    /// Client-affinity weights (`None` = uniform).
    pub weights: Option<Vec<f64>>,
    pub plane: ShardPlaneConfig,
    pub faults: Vec<ShardFault>,
}

impl ShardedConfig {
    pub fn uniform(shards: usize) -> Self {
        ShardedConfig {
            shards,
            weights: None,
            plane: ShardPlaneConfig::default(),
            faults: Vec::new(),
        }
    }
}

/// Couples one [`Engine`] (ground truth) with N virtual gateway shards
/// and one logical controller: slice → report → aggregate → control →
/// split → push, with membership failover and shard-local degradation.
/// The mirror of [`cluster::Harness`] for the sharded plane.
pub struct ShardedHarness {
    pub engine: Engine,
    controller: Box<dyn Controller>,
    slicer: ShardSlicer,
    plane: ShardPlane,
    guards: Vec<ShardLocalGuard>,
    /// Per-shard per-API quotas (`INFINITY` = unlimited).
    quotas: Vec<Vec<f64>>,
    /// The controller's logical global limit per API.
    globals: Vec<f64>,
    /// Last enforced engine-level limit per API (avoid redundant sets).
    enforced: Vec<f64>,
    result: RunResult,
    next_tick: SimTime,
    journal: Arc<obs::Journal>,
    /// SLO burn-rate monitor fed from the *merged* (partition-aware)
    /// view — alerting sees what the controller sees.
    slo: obs::SloMonitor,
    /// Controller ticks lost to controller-loss windows or stalls.
    pub lost_ticks: u64,
}

impl ShardedHarness {
    pub fn new(
        mut engine: Engine,
        mut controller: Box<dyn Controller>,
        cfg: ShardedConfig,
    ) -> Result<Self, String> {
        let slicer = ShardSlicer::new(cfg.shards, cfg.weights.clone())?.with_faults(cfg.faults);
        let num_apis = engine.topology().num_apis();
        let interval = engine.config().control_interval;
        let journal = obs::Journal::shared();
        engine.set_journal(Arc::clone(&journal));
        controller.attach_journal(Arc::clone(&journal));
        let mut plane = ShardPlane::new(cfg.shards, cfg.plane);
        plane.attach_journal(Arc::clone(&journal));
        let guards = (0..cfg.shards)
            .map(|s| {
                let mut g = ShardLocalGuard::new(s as u32, cfg.plane);
                g.attach_journal(Arc::clone(&journal));
                g
            })
            .collect();
        Ok(ShardedHarness {
            engine,
            controller,
            slicer,
            plane,
            guards,
            quotas: vec![vec![f64::INFINITY; num_apis]; cfg.shards],
            globals: vec![f64::INFINITY; num_apis],
            enforced: vec![f64::INFINITY; num_apis],
            result: RunResult {
                samples: Vec::new(),
                num_apis,
                journal: Vec::new(),
            },
            next_tick: SimTime::ZERO + interval,
            journal,
            slo: obs::SloMonitor::new(obs::SloConfig::default()),
            lost_ticks: 0,
        })
    }

    /// Replace the SLO burn-rate monitor's objective/windows. Resets any
    /// accumulated burn history, so call before the run starts.
    pub fn set_slo_config(&mut self, cfg: obs::SloConfig) {
        self.slo = obs::SloMonitor::new(cfg);
    }

    pub fn journal(&self) -> &Arc<obs::Journal> {
        &self.journal
    }

    pub fn plane_stats(&self) -> ShardPlaneStats {
        self.plane.stats()
    }

    /// Guard stats summed over shards.
    pub fn guard_stats(&self) -> GuardStats {
        let mut total = GuardStats::default();
        for g in &self.guards {
            total.held_ticks += g.stats().held_ticks;
            total.fallback_ticks += g.stats().fallback_ticks;
            total.resyncs += g.stats().resyncs;
        }
        total
    }

    /// This shard's current per-API quotas.
    pub fn quotas(&self, shard: usize) -> &[f64] {
        &self.quotas[shard]
    }

    pub fn run_for_secs(&mut self, secs: u64) {
        self.run_until(SimTime::from_secs(secs));
    }

    pub fn run_until(&mut self, t: SimTime) {
        let interval = self.engine.config().control_interval;
        while self.next_tick <= t {
            self.engine.run_until(self.next_tick);
            if let Some(truth) = self.engine.latest_true_observation().cloned() {
                self.record(&truth);
            }
            if let Some(o) = self.engine.latest_observation().cloned() {
                self.control_tick(&o);
            }
            self.next_tick += interval;
        }
        self.engine.run_until(t);
    }

    fn control_tick(&mut self, o: &ClusterObservation) {
        let now = self.next_tick;
        let t = o.now.as_secs_f64();
        let serving = self.slicer.serving(now);
        let reporting_mask = self.slicer.reporting(now);
        let mut locals = self.slicer.slice(o, now);
        // Each shard's local view carries its own quota as the applied
        // rate limit — that is what its gateway enforces.
        for (s, lo) in locals.iter_mut().enumerate() {
            if let Some(lo) = lo {
                for (a, w) in lo.apis.iter_mut().enumerate() {
                    w.rate_limit = self.quotas[s][a];
                }
            }
        }

        let lost = self.slicer.controller_lost(now) || self.engine.control_stalled();
        let mut pushed = vec![false; self.slicer.shards()];
        if lost {
            self.lost_ticks += 1;
        } else {
            let reports: Vec<Option<ClusterObservation>> = locals
                .iter()
                .zip(&reporting_mask)
                .map(|(lo, rep)| if *rep { lo.clone() } else { None })
                .collect();
            if let Some(mut merged) = self.plane.observe(t, &reports) {
                // Burn-rate alerting runs on the merged view, on the
                // control thread, so journal order is deterministic
                // across worker counts.
                let w = merged.window.as_secs_f64();
                let samples: Vec<obs::ApiSloSample> = merged
                    .apis
                    .iter()
                    .map(|a| obs::ApiSloSample {
                        good: a.goodput * w,
                        bad: (a.slo_violated + a.failed) * w,
                    })
                    .collect();
                let slo_tick = self.slo.observe(t, &samples);
                for tr in &slo_tick.transitions {
                    let name = merged
                        .apis
                        .get(tr.api as usize)
                        .map(|a| a.name.clone())
                        .unwrap_or_else(|| format!("api{}", tr.api));
                    self.journal.record(obs::JournalEntry::SloBurn {
                        t,
                        api: tr.api,
                        api_name: name,
                        from: tr.from.as_str().into(),
                        to: tr.to.as_str().into(),
                        fast_burn: tr.fast_burn,
                        slow_burn: tr.slow_burn,
                        budget_remaining: tr.budget_remaining,
                    });
                }
                merged.slo_burn = slo_tick.signals;
                let updates = self.controller.control(&merged);
                let mut touched = vec![false; self.globals.len()];
                for u in updates {
                    if u.api.idx() < self.globals.len() {
                        self.globals[u.api.idx()] = u.rate;
                        touched[u.api.idx()] = true;
                    }
                }
                // A membership change or an active ramp re-splits every
                // API, not just the ones the controller moved this tick:
                // a dead shard's quota must leave the enforced total
                // even in steady state.
                let resplit_all = self.plane.membership_changed() || self.plane.any_ramping();
                let globals = self.globals.clone();
                for (a, global) in globals.iter().enumerate() {
                    if !(touched[a] || resplit_all) {
                        continue;
                    }
                    let q = self.plane.split(t, ApiId(a as u32), *global);
                    let live = self.plane.live();
                    for s in 0..q.len() {
                        if live[s] {
                            self.quotas[s][a] = q[s];
                        }
                    }
                }
                // Every reporting shard heard from the controller this
                // tick (fresh limits or a heartbeat).
                for (s, rep) in reporting_mask.iter().enumerate() {
                    if *rep {
                        pushed[s] = true;
                        self.guards[s].on_push(t);
                    }
                }
                self.plane.end_tick(t);
            }
        }
        // Shards serving without controller contact run their local
        // degradation ladder (hold → MIMD fallback).
        for s in 0..self.slicer.shards() {
            if serving[s] && !pushed[s] {
                if let Some(lo) = &locals[s] {
                    self.guards[s].tick(t, lo, &mut self.quotas[s]);
                }
            }
        }
        // Actuate: the engine's single gateway enforces the sum of the
        // serving shards' quotas (the virtual-shard model's invariant).
        for a in 0..self.globals.len() {
            let mut sum = 0.0;
            for (s, up) in serving.iter().enumerate() {
                if *up {
                    sum += self.quotas[s][a];
                }
            }
            if sum != self.enforced[a] {
                self.engine.set_rate_limit(ApiId(a as u32), sum);
                self.enforced[a] = sum;
            }
        }
    }

    fn record(&mut self, o: &ClusterObservation) {
        let goodput: Vec<f64> = o.apis.iter().map(|a| a.goodput).collect();
        let offered: Vec<f64> = o.apis.iter().map(|a| a.offered).collect();
        let rate_limit: Vec<f64> = o.apis.iter().map(|a| a.rate_limit).collect();
        let p99: Vec<f64> = o
            .apis
            .iter()
            .map(|a| a.p99.map(SimDuration::as_secs_f64).unwrap_or(0.0))
            .collect();
        let pods: u32 = o.services.iter().map(|s| s.alive_pods).sum();
        self.result.samples.push(TickSample {
            at: o.now,
            goodput,
            offered,
            rate_limit,
            p99,
            pods,
            vcpus: self.engine.vcpus_used(),
            resilience: o.resilience,
        });
    }

    pub fn result(&self) -> &RunResult {
        &self.result
    }

    pub fn into_result(mut self) -> RunResult {
        self.result.journal = self.journal.snapshot();
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::types::{BusinessPriority, ServiceId};

    fn view(goodput: f64, offered: f64, pods: u32, util: f64) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(10),
            window: SimDuration::from_secs(1),
            services: vec![cluster::observe::ServiceWindow {
                service: ServiceId(0),
                name: "backend".into(),
                utilization: util,
                alive_pods: pods,
                desired_pods: pods,
                queue_len: 4,
                mean_queuing_delay: SimDuration::from_millis(5),
                started_calls: 50,
                dropped_calls: 0,
            }],
            apis: vec![cluster::observe::ApiWindow {
                api: ApiId(0),
                name: "get".into(),
                business: BusinessPriority(1),
                offered,
                admitted: offered * 0.8,
                goodput,
                slo_violated: 2.0,
                failed: 1.0,
                p50: Some(SimDuration::from_millis(20)),
                p95: Some(SimDuration::from_millis(50)),
                p99: Some(SimDuration::from_millis(80)),
                rate_limit: 100.0,
            }],
            api_paths: vec![vec![ServiceId(0)]],
            slo: SimDuration::from_millis(100),
            resilience: cluster::ResilienceStats::default(),
            slo_burn: Vec::new(),
        }
    }

    #[test]
    fn split_is_proportional_with_floor() {
        let q = split_limit(100.0, &[80.0, 20.0, 0.0], &[true; 3], 1.0, None);
        assert!((q.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!(q[0] > q[1], "arrival share orders quotas: {q:?}");
        assert!(q[2] >= 1.0, "cold shard keeps the min-quantum: {q:?}");
    }

    #[test]
    fn split_skips_dead_shards_and_conserves() {
        let q = split_limit(90.0, &[1.0, 1.0, 1.0], &[true, false, true], 1.0, None);
        assert_eq!(q[1], 0.0);
        assert!((q.iter().sum::<f64>() - 90.0).abs() < 1e-9);
        assert!((q[0] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn split_floor_wins_over_tiny_globals() {
        let q = split_limit(0.5, &[1.0, 1.0], &[true, true], 1.0, None);
        assert!(q.iter().all(|x| *x >= 1.0), "{q:?}");
        assert!((q.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn split_honors_reentry_caps() {
        let caps = [f64::INFINITY, 2.0, f64::INFINITY];
        let q = split_limit(120.0, &[1.0, 1.0, 1.0], &[true; 3], 1.0, Some(&caps));
        assert!(q[1] <= 2.0 + 1e-9, "capped shard: {q:?}");
        assert!((q.iter().sum::<f64>() - 120.0).abs() < 1e-9, "{q:?}");
    }

    #[test]
    fn split_unlimited_passes_caps_through() {
        let caps = [f64::INFINITY, 3.0];
        let q = split_limit(f64::INFINITY, &[1.0, 1.0], &[true, true], 1.0, Some(&caps));
        assert!(q[0].is_infinite());
        assert_eq!(q[1], 3.0);
    }

    #[test]
    fn merge_sums_rates_and_weights_utilization() {
        let a = view(100.0, 200.0, 3, 0.9);
        let b = view(50.0, 100.0, 1, 0.5);
        let m = merge_observations(&[&a, &b]);
        assert!((m.apis[0].goodput - 150.0).abs() < 1e-9);
        assert!((m.apis[0].offered - 300.0).abs() < 1e-9);
        assert_eq!(m.services[0].alive_pods, 4);
        // Pod-weighted utilization: (0.9*3 + 0.5*1) / 4 = 0.8.
        assert!((m.services[0].utilization - 0.8).abs() < 1e-9);
        // p99 is the max over shards.
        assert_eq!(m.apis[0].p99, Some(SimDuration::from_millis(80)));
        assert_eq!(m.apis[0].rate_limit, 200.0);
    }

    #[test]
    fn merge_of_identical_views_roundtrips() {
        let v = view(70.0, 140.0, 2, 0.7);
        let m = merge_observations(&[&v, &v, &v]);
        assert!((m.apis[0].goodput - 210.0).abs() < 1e-9);
        assert!((m.services[0].utilization - 0.7).abs() < 1e-9);
        assert_eq!(m.apis[0].p50, Some(SimDuration::from_millis(20)));
    }

    #[test]
    fn plane_strikes_out_and_reenters_with_ramp() {
        let cfg = ShardPlaneConfig {
            strike_out: 2,
            reentry_ticks: 3,
            ..ShardPlaneConfig::default()
        };
        let mut plane = ShardPlane::new(2, cfg);
        let j = obs::Journal::shared();
        plane.attach_journal(Arc::clone(&j));
        let v = view(50.0, 100.0, 2, 0.6);
        // Tick 1: both report.
        plane.observe(1.0, &[Some(v.clone()), Some(v.clone())]);
        plane.end_tick(1.0);
        // Shard 1 goes dark for two ticks → struck out.
        plane.observe(2.0, &[Some(v.clone()), None]);
        plane.end_tick(2.0);
        assert_eq!(plane.live(), vec![true, true]);
        plane.observe(3.0, &[Some(v.clone()), None]);
        assert_eq!(plane.live(), vec![true, false]);
        assert!(plane.membership_changed());
        let q = plane.split(3.0, ApiId(0), 100.0);
        assert_eq!(q[1], 0.0, "dead shard gets nothing");
        assert!((q[0] - 100.0).abs() < 1e-9, "survivor absorbs the quota");
        plane.end_tick(3.0);
        // Shard 1 returns → ramped re-entry at the min-quantum.
        plane.observe(4.0, &[Some(v.clone()), Some(v.clone())]);
        let q = plane.split(4.0, ApiId(0), 100.0);
        assert!(
            q[1] <= cfg.min_quantum + 1e-9,
            "ramp starts at min-quantum: {q:?}"
        );
        assert!((q.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        plane.end_tick(4.0);
        // Ramp cap grows each tick.
        plane.observe(5.0, &[Some(v.clone()), Some(v)]);
        let q2 = plane.split(5.0, ApiId(0), 100.0);
        assert!(q2[1] > q[1], "cap ramps up: {q:?} -> {q2:?}");
        let st = plane.stats();
        assert_eq!(st.strike_outs, 1);
        assert_eq!(st.reentries, 1);
        assert!(st.redistributions >= 2);
        // The transitions are journaled.
        let kinds: Vec<String> = j.snapshot().iter().map(|e| format!("{e:?}")).collect();
        assert!(kinds.iter().any(|k| k.contains("struck out")), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.contains("re-entering")), "{kinds:?}");
    }

    #[test]
    fn guard_holds_then_falls_back_bounded() {
        let cfg = ShardPlaneConfig {
            limit_ttl: 2,
            ..ShardPlaneConfig::default()
        };
        let mut g = ShardLocalGuard::new(0, cfg);
        let v = view(50.0, 100.0, 2, 0.6);
        let mut quotas = vec![60.0];
        // Inside the TTL: held, unchanged.
        assert!(!g.tick(1.0, &v, &mut quotas));
        assert!(!g.tick(2.0, &v, &mut quotas));
        assert_eq!(quotas[0], 60.0);
        // Past the TTL: MIMD fallback moves the quota, bounded.
        for t in 3..40 {
            g.tick(t as f64, &v, &mut quotas);
            assert!(quotas[0].is_finite(), "never fail-open");
            assert!(quotas[0] >= cfg.min_quantum, "never zero-admit");
            assert!(
                quotas[0] <= 60.0 * cfg.blind_cap + 1e-9,
                "blind growth capped: {}",
                quotas[0]
            );
        }
        let st = g.stats();
        assert_eq!(st.held_ticks, 2);
        assert!(st.fallback_ticks > 0);
        // Resync on push.
        g.on_push(40.0);
        assert_eq!(g.stats().resyncs, 1);
    }

    #[test]
    fn guard_blind_caps_unlimited_apis() {
        let cfg = ShardPlaneConfig {
            limit_ttl: 0,
            ..ShardPlaneConfig::default()
        };
        let mut g = ShardLocalGuard::new(0, cfg);
        let v = view(50.0, 100.0, 2, 0.6);
        let mut quotas = vec![f64::INFINITY];
        g.tick(1.0, &v, &mut quotas);
        assert!(
            quotas[0].is_finite() && quotas[0] >= cfg.min_quantum,
            "an unlimited API gets a finite blind cap, got {}",
            quotas[0]
        );
    }
}
