//! # topfull — adaptive top-down overload control (SIGCOMM 2024)
//!
//! The paper's contribution: an entry-point overload controller for
//! microservices that maximizes SLO-goodput by (1) adaptive API-wise load
//! control aware of each API's full execution path, (2) clustering APIs
//! that share overloaded microservices into independent sub-problems
//! controlled in parallel, and (3) an RL-based rate controller that sizes
//! multiplicative rate steps from end-to-end metrics.
//!
//! * [`detector`] — overload detection from per-service utilization.
//! * [`clustering`] — Equation 2 clustering via union–find, with dynamic
//!   re-clustering every control interval.
//! * [`rate_controller`] — the pluggable step-size policy: the RL policy
//!   (default), the MIMD ablation of §6.2, and the Breakwater-style AIMD
//!   of §6.3's TopFull(BW).
//! * [`controller`] — the end-to-end control loop (Algorithm 1, target
//!   selection, recovery controllers, business priorities), implementing
//!   [`cluster::Controller`] so it plugs into the simulator harness.
//!
//! ## Quick start
//!
//! ```
//! use cluster::{Engine, EngineConfig, Harness, OpenLoopWorkload};
//! use cluster::{ApiSpec, CallNode, ServiceSpec, Topology};
//! use simnet::SimDuration;
//! use topfull::{TopFull, TopFullConfig};
//!
//! // A one-service app with a 100 rps capacity bottleneck.
//! let mut topo = Topology::new("demo");
//! let svc = topo.add_service(ServiceSpec::new("backend", 1).queue_capacity(256));
//! let api = topo.add_api(ApiSpec::single(
//!     "get",
//!     CallNode::leaf(svc, SimDuration::from_millis(10)),
//! ));
//!
//! // Offer 300 rps — a 3× overload.
//! let workload = OpenLoopWorkload::constant(vec![(api, 300.0)]);
//! let engine = Engine::new(topo, EngineConfig::default(), Box::new(workload));
//!
//! // TopFull with the built-in MIMD controller (no trained model
//! // needed; the MIMD steps converge slowly — see Fig. 13 — hence the
//! // long run).
//! let controller = TopFull::new(TopFullConfig::default().with_mimd());
//! let mut harness = Harness::new(engine, Box::new(controller));
//! harness.run_for_secs(90);
//! let goodput = harness.result().mean_total_goodput(60.0, 90.0);
//! assert!(goodput > 60.0, "controller keeps goodput near capacity: {goodput}");
//! ```

pub mod clustering;
pub mod controller;
pub mod detector;
pub mod rate_controller;
pub mod shard;

pub use clustering::{cluster_apis, Cluster};
pub use controller::{TopFull, TopFullConfig};
pub use detector::{InvalidThresholds, OverloadDetector};
pub use rate_controller::{
    BwRateController, MimdController, RateController, RateState, RlRateController,
    SafeRateController,
};
pub use shard::{
    merge_observations, split_limit, GuardStats, ShardLocalGuard, ShardPlane, ShardPlaneConfig,
    ShardPlaneStats, ShardedConfig, ShardedHarness,
};
