//! Pluggable rate-step policies for per-cluster control.
//!
//! A [`RateController`] turns the end-to-end state of a candidate API set
//! — "1) the ratio of goodput to the current rate limit, and 2) the
//! end-to-end percentile latency" (§4.3) — into a multiplicative step in
//! `[-0.5, 0.5]`. Three implementations from the paper:
//!
//! * [`RlRateController`] — the trained PPO policy (TopFull proper).
//! * [`MimdController`] — the §6.2 ablation: a fixed 0.05 multiplicative
//!   decrease past the SLO, a fixed 0.01 increase otherwise. Also
//!   parameterizes the DAGOR-style static stepping of Fig. 13 / Table 2.
//! * [`BwRateController`] — §6.3's TopFull(BW): Breakwater's control law
//!   at the entry (additive increase under the delay target,
//!   multiplicative decrease proportional to overload severity).

use rl::policy::PolicyValue;

/// End-to-end state of the candidate API set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateState {
    /// Σ goodput / Σ current rate limits over the candidates, in `[0, 2]`.
    pub goodput_ratio: f64,
    /// Max end-to-end tail latency over candidates, divided by the SLO.
    pub latency_ratio: f64,
    /// Σ current rate limits (requests/s) — lets additive controllers
    /// convert their step to a multiplicative action.
    pub total_limit: f64,
}

/// A step-size policy. Must be `Send + Sync`: clusters are controlled in
/// parallel.
pub trait RateController: Send + Sync {
    /// Multiplicative step in `[-0.5, 0.5]` applied per Algorithm 1.
    fn decide(&self, s: RateState) -> f64;

    /// Name for experiment reports.
    fn name(&self) -> &str;
}

/// The RL policy (deterministic at inference).
pub struct RlRateController {
    pub policy: PolicyValue,
}

impl RlRateController {
    pub fn new(policy: PolicyValue) -> Self {
        RlRateController { policy }
    }
}

impl RateController for RlRateController {
    fn decide(&self, s: RateState) -> f64 {
        self.policy
            .act_deterministic(&[s.goodput_ratio.clamp(0.0, 2.0), s.latency_ratio.clamp(0.0, 5.0)])
    }

    fn name(&self) -> &str {
        "rl"
    }
}

/// Threshold-based multiplicative increase/decrease (the ablation):
/// "it makes a 0.05 multiplicative decrease to the current target rate
/// limit when the latency exceeds the SLO. It makes 0.01 multiplicative
/// increase step to the target APIs, otherwise" (§6.2).
#[derive(Clone, Copy, Debug)]
pub struct MimdController {
    pub decrease: f64,
    pub increase: f64,
}

impl MimdController {
    /// The paper's default steps (−0.05 / +0.01).
    pub fn paper_default() -> Self {
        MimdController {
            decrease: 0.05,
            increase: 0.01,
        }
    }

    /// Custom steps, for the Fig. 13 step-size sweep.
    pub fn with_steps(decrease: f64, increase: f64) -> Self {
        MimdController { decrease, increase }
    }
}

impl RateController for MimdController {
    fn decide(&self, s: RateState) -> f64 {
        if s.latency_ratio > 1.0 {
            -self.decrease.clamp(0.0, 0.5)
        } else {
            self.increase.clamp(0.0, 0.5)
        }
    }

    fn name(&self) -> &str {
        "mimd"
    }
}

/// Breakwater's control law as an entry rate controller (TopFull(BW)):
/// additive increase while the latency signal is under target,
/// multiplicative decrease proportional to overload severity (§6.3).
#[derive(Clone, Copy, Debug)]
pub struct BwRateController {
    /// Additive step (requests/s) while healthy.
    pub additive: f64,
    /// Severity sensitivity of the decrease.
    pub beta: f64,
    /// Latency target as a fraction of the SLO.
    pub target_ratio: f64,
}

impl Default for BwRateController {
    fn default() -> Self {
        BwRateController {
            additive: 50.0,
            beta: 0.4,
            target_ratio: 0.8,
        }
    }
}

impl RateController for BwRateController {
    fn decide(&self, s: RateState) -> f64 {
        if s.latency_ratio <= self.target_ratio {
            if s.total_limit <= 0.0 {
                return 0.5;
            }
            (self.additive / s.total_limit).min(0.5)
        } else {
            let severity =
                ((s.latency_ratio - self.target_ratio) / s.latency_ratio).clamp(0.0, 1.0);
            -(self.beta * severity).min(0.5)
        }
    }

    fn name(&self) -> &str {
        "breakwater-style"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn st(goodput_ratio: f64, latency_ratio: f64, total_limit: f64) -> RateState {
        RateState {
            goodput_ratio,
            latency_ratio,
            total_limit,
        }
    }

    #[test]
    fn mimd_steps_match_paper() {
        let c = MimdController::paper_default();
        assert_eq!(c.decide(st(0.5, 2.0, 100.0)), -0.05);
        assert_eq!(c.decide(st(1.0, 0.5, 100.0)), 0.01);
        // Boundary: exactly at the SLO counts as healthy.
        assert_eq!(c.decide(st(1.0, 1.0, 100.0)), 0.01);
    }

    #[test]
    fn mimd_custom_steps_clamped() {
        let c = MimdController::with_steps(0.9, 0.9);
        assert_eq!(c.decide(st(0.5, 2.0, 100.0)), -0.5);
        assert_eq!(c.decide(st(0.5, 0.5, 100.0)), 0.5);
    }

    #[test]
    fn bw_additive_is_rate_relative() {
        let c = BwRateController::default();
        // +50 rps on a 500 rps limit = +0.1 multiplicative.
        let a = c.decide(st(1.0, 0.5, 500.0));
        assert!((a - 0.1).abs() < 1e-12);
        // Same additive step is a bigger fraction of a small limit.
        let b = c.decide(st(1.0, 0.5, 100.0));
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bw_decrease_scales_with_severity() {
        let c = BwRateController::default();
        let mild = c.decide(st(0.5, 1.0, 500.0));
        let severe = c.decide(st(0.5, 4.0, 500.0));
        assert!(mild < 0.0 && severe < mild, "mild {mild}, severe {severe}");
        assert!(severe >= -0.5);
    }

    #[test]
    fn rl_controller_outputs_bounded_actions() {
        let policy = PolicyValue::new(2, &mut SmallRng::seed_from_u64(1));
        let c = RlRateController::new(policy);
        for s in [st(0.0, 5.0, 10.0), st(1.0, 0.0, 1e6), st(2.0, 1.0, 0.0)] {
            let a = c.decide(s);
            assert!((-0.5..=0.5).contains(&a), "action {a} out of range");
        }
    }

    #[test]
    fn controllers_have_names() {
        assert_eq!(MimdController::paper_default().name(), "mimd");
        assert_eq!(BwRateController::default().name(), "breakwater-style");
    }
}
