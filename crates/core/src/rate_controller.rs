//! Pluggable rate-step policies for per-cluster control.
//!
//! A [`RateController`] turns the end-to-end state of a candidate API set
//! — "1) the ratio of goodput to the current rate limit, and 2) the
//! end-to-end percentile latency" (§4.3) — into a multiplicative step in
//! `[-0.5, 0.5]`. Three implementations from the paper:
//!
//! * [`RlRateController`] — the trained PPO policy (TopFull proper).
//! * [`MimdController`] — the §6.2 ablation: a fixed 0.05 multiplicative
//!   decrease past the SLO, a fixed 0.01 increase otherwise. Also
//!   parameterizes the DAGOR-style static stepping of Fig. 13 / Table 2.
//! * [`BwRateController`] — §6.3's TopFull(BW): Breakwater's control law
//!   at the entry (additive increase under the delay target,
//!   multiplicative decrease proportional to overload severity).

use rl::policy::PolicyValue;

/// End-to-end state of the candidate API set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateState {
    /// Σ goodput / Σ current rate limits over the candidates, in `[0, 2]`.
    pub goodput_ratio: f64,
    /// Max end-to-end tail latency over candidates, divided by the SLO.
    pub latency_ratio: f64,
    /// Σ current rate limits (requests/s) — lets additive controllers
    /// convert their step to a multiplicative action.
    pub total_limit: f64,
}

/// A step-size policy. Must be `Send + Sync`: clusters are controlled in
/// parallel.
pub trait RateController: Send + Sync {
    /// Multiplicative step in `[-0.5, 0.5]` applied per Algorithm 1.
    fn decide(&self, s: RateState) -> f64;

    /// Name for experiment reports.
    fn name(&self) -> &str;

    /// For fault-tolerant wrappers: `(strikes, max_strikes, tripped)` of
    /// the wrapped primary, read on the control thread so the decision
    /// journal can record strike transitions deterministically. Plain
    /// controllers report `None`.
    fn fallback_state(&self) -> Option<(u32, u32, bool)> {
        None
    }
}

/// The RL policy (deterministic at inference).
pub struct RlRateController {
    pub policy: PolicyValue,
}

impl RlRateController {
    pub fn new(policy: PolicyValue) -> Self {
        RlRateController { policy }
    }
}

impl RateController for RlRateController {
    fn decide(&self, s: RateState) -> f64 {
        self.policy.act_deterministic(&[
            s.goodput_ratio.clamp(0.0, 2.0),
            s.latency_ratio.clamp(0.0, 5.0),
        ])
    }

    fn name(&self) -> &str {
        "rl"
    }
}

/// Threshold-based multiplicative increase/decrease (the ablation):
/// "it makes a 0.05 multiplicative decrease to the current target rate
/// limit when the latency exceeds the SLO. It makes 0.01 multiplicative
/// increase step to the target APIs, otherwise" (§6.2).
#[derive(Clone, Copy, Debug)]
pub struct MimdController {
    pub decrease: f64,
    pub increase: f64,
}

impl MimdController {
    /// The paper's default steps (−0.05 / +0.01).
    pub fn paper_default() -> Self {
        MimdController {
            decrease: 0.05,
            increase: 0.01,
        }
    }

    /// Custom steps, for the Fig. 13 step-size sweep.
    pub fn with_steps(decrease: f64, increase: f64) -> Self {
        MimdController { decrease, increase }
    }
}

impl RateController for MimdController {
    fn decide(&self, s: RateState) -> f64 {
        if s.latency_ratio > 1.0 {
            -self.decrease.clamp(0.0, 0.5)
        } else {
            self.increase.clamp(0.0, 0.5)
        }
    }

    fn name(&self) -> &str {
        "mimd"
    }
}

/// Breakwater's control law as an entry rate controller (TopFull(BW)):
/// additive increase while the latency signal is under target,
/// multiplicative decrease proportional to overload severity (§6.3).
#[derive(Clone, Copy, Debug)]
pub struct BwRateController {
    /// Additive step (requests/s) while healthy.
    pub additive: f64,
    /// Severity sensitivity of the decrease.
    pub beta: f64,
    /// Latency target as a fraction of the SLO.
    pub target_ratio: f64,
}

impl Default for BwRateController {
    fn default() -> Self {
        BwRateController {
            additive: 50.0,
            beta: 0.4,
            target_ratio: 0.8,
        }
    }
}

impl RateController for BwRateController {
    fn decide(&self, s: RateState) -> f64 {
        if s.latency_ratio <= self.target_ratio {
            if s.total_limit <= 0.0 {
                return 0.5;
            }
            (self.additive / s.total_limit).min(0.5)
        } else {
            let severity =
                ((s.latency_ratio - self.target_ratio) / s.latency_ratio).clamp(0.0, 1.0);
            -(self.beta * severity).min(0.5)
        }
    }

    fn name(&self) -> &str {
        "breakwater-style"
    }
}

/// Fault-tolerant wrapper around any [`RateController`].
///
/// Three hazards it absorbs (none of which the inner controllers were
/// written to survive):
///
/// * **Degraded state** — any non-finite field of [`RateState`] (NaN
///   goodput from a telemetry dropout, say) routes the decision to the
///   MIMD fallback on a sanitized, conservatively pessimistic state.
/// * **Misbehaving primary** — a non-finite or out-of-range action from
///   the primary is a *strike*; the output is clamped (or replaced by the
///   fallback's). After `max_strikes` strikes the primary is tripped and
///   the fallback takes over permanently.
/// * **Range violations** — the final answer is always finite and within
///   `[-0.5, 0.5]`, whatever the wrapped controller returned.
pub struct SafeRateController {
    primary: std::sync::Arc<dyn RateController>,
    fallback: MimdController,
    strikes: std::sync::atomic::AtomicU32,
    max_strikes: u32,
    label: String,
}

impl SafeRateController {
    /// Wrap `primary`, falling back to the paper's MIMD steps after
    /// `max_strikes` bad actions.
    pub fn new(primary: std::sync::Arc<dyn RateController>, max_strikes: u32) -> Self {
        let label = format!("safe({})", primary.name());
        SafeRateController {
            primary,
            fallback: MimdController::paper_default(),
            strikes: std::sync::atomic::AtomicU32::new(0),
            max_strikes,
            label,
        }
    }

    /// Wrap with the default strike budget (5).
    pub fn with_defaults(primary: std::sync::Arc<dyn RateController>) -> Self {
        Self::new(primary, 5)
    }

    /// Strikes accumulated so far (for reports and tests).
    pub fn strikes(&self) -> u32 {
        self.strikes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether the primary has been permanently benched.
    pub fn tripped(&self) -> bool {
        self.strikes() >= self.max_strikes
    }

    fn strike(&self) {
        self.strikes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Replace non-finite state fields with conservative stand-ins: an
    /// unreadable latency is presumed over the SLO (shed load), an
    /// unreadable goodput or limit is presumed zero.
    fn sanitize(s: RateState) -> RateState {
        RateState {
            goodput_ratio: if s.goodput_ratio.is_finite() {
                s.goodput_ratio
            } else {
                0.0
            },
            latency_ratio: if s.latency_ratio.is_finite() {
                s.latency_ratio
            } else {
                1.5
            },
            total_limit: if s.total_limit.is_finite() {
                s.total_limit
            } else {
                0.0
            },
        }
    }
}

impl RateController for SafeRateController {
    fn decide(&self, s: RateState) -> f64 {
        let degraded = !s.goodput_ratio.is_finite()
            || !s.latency_ratio.is_finite()
            || !s.total_limit.is_finite();
        let action = if degraded || self.tripped() {
            self.fallback.decide(Self::sanitize(s))
        } else {
            let a = self.primary.decide(s);
            if !a.is_finite() {
                self.strike();
                self.fallback.decide(s)
            } else {
                if a.abs() > 0.5 {
                    self.strike();
                }
                a
            }
        };
        action.clamp(-0.5, 0.5)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn fallback_state(&self) -> Option<(u32, u32, bool)> {
        Some((self.strikes(), self.max_strikes, self.tripped()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn st(goodput_ratio: f64, latency_ratio: f64, total_limit: f64) -> RateState {
        RateState {
            goodput_ratio,
            latency_ratio,
            total_limit,
        }
    }

    #[test]
    fn mimd_steps_match_paper() {
        let c = MimdController::paper_default();
        assert_eq!(c.decide(st(0.5, 2.0, 100.0)), -0.05);
        assert_eq!(c.decide(st(1.0, 0.5, 100.0)), 0.01);
        // Boundary: exactly at the SLO counts as healthy.
        assert_eq!(c.decide(st(1.0, 1.0, 100.0)), 0.01);
    }

    #[test]
    fn mimd_custom_steps_clamped() {
        let c = MimdController::with_steps(0.9, 0.9);
        assert_eq!(c.decide(st(0.5, 2.0, 100.0)), -0.5);
        assert_eq!(c.decide(st(0.5, 0.5, 100.0)), 0.5);
    }

    #[test]
    fn bw_additive_is_rate_relative() {
        let c = BwRateController::default();
        // +50 rps on a 500 rps limit = +0.1 multiplicative.
        let a = c.decide(st(1.0, 0.5, 500.0));
        assert!((a - 0.1).abs() < 1e-12);
        // Same additive step is a bigger fraction of a small limit.
        let b = c.decide(st(1.0, 0.5, 100.0));
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bw_decrease_scales_with_severity() {
        let c = BwRateController::default();
        let mild = c.decide(st(0.5, 1.0, 500.0));
        let severe = c.decide(st(0.5, 4.0, 500.0));
        assert!(mild < 0.0 && severe < mild, "mild {mild}, severe {severe}");
        assert!(severe >= -0.5);
    }

    #[test]
    fn rl_controller_outputs_bounded_actions() {
        let policy = PolicyValue::new(2, &mut SmallRng::seed_from_u64(1));
        let c = RlRateController::new(policy);
        for s in [st(0.0, 5.0, 10.0), st(1.0, 0.0, 1e6), st(2.0, 1.0, 0.0)] {
            let a = c.decide(s);
            assert!((-0.5..=0.5).contains(&a), "action {a} out of range");
        }
    }

    #[test]
    fn controllers_have_names() {
        assert_eq!(MimdController::paper_default().name(), "mimd");
        assert_eq!(BwRateController::default().name(), "breakwater-style");
    }

    /// A controller that replays a fixed script of (possibly hostile)
    /// actions.
    struct Rogue {
        script: Vec<f64>,
        at: std::sync::atomic::AtomicUsize,
    }

    impl Rogue {
        fn new(script: Vec<f64>) -> Self {
            Rogue {
                script,
                at: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl RateController for Rogue {
        fn decide(&self, _s: RateState) -> f64 {
            let i = self.at.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.script[i % self.script.len()]
        }

        fn name(&self) -> &str {
            "rogue"
        }
    }

    #[test]
    fn safe_wrapper_clamps_and_replaces_hostile_actions() {
        let rogue = Rogue::new(vec![f64::NAN, f64::INFINITY, -7.0, 10.0, f64::NEG_INFINITY]);
        let safe = SafeRateController::new(std::sync::Arc::new(rogue), 100);
        for _ in 0..50 {
            let a = safe.decide(st(1.0, 0.5, 100.0));
            assert!(a.is_finite(), "action must be finite");
            assert!((-0.5..=0.5).contains(&a), "action {a} out of range");
        }
        assert!(safe.strikes() > 0);
    }

    #[test]
    fn safe_wrapper_trips_to_mimd_after_max_strikes() {
        let rogue = Rogue::new(vec![f64::NAN]);
        let safe = SafeRateController::new(std::sync::Arc::new(rogue), 3);
        for _ in 0..3 {
            safe.decide(st(1.0, 0.5, 100.0));
        }
        assert!(safe.tripped());
        // Once tripped, the fallback answers: MIMD's +0.01 under the SLO,
        // −0.05 over it — and the rogue is never consulted again.
        assert_eq!(safe.decide(st(1.0, 0.5, 100.0)), 0.01);
        assert_eq!(safe.decide(st(0.2, 2.0, 100.0)), -0.05);
        assert_eq!(safe.strikes(), 3);
    }

    #[test]
    fn safe_wrapper_routes_degraded_state_to_fallback() {
        // A well-behaved primary that would *increase* on this state —
        // but the state is degraded, so the conservative fallback runs.
        let polite = MimdController::with_steps(0.4, 0.4);
        let safe = SafeRateController::with_defaults(std::sync::Arc::new(polite));
        // Unreadable latency is presumed over the SLO → decrease.
        let a = safe.decide(st(1.0, f64::NAN, 100.0));
        assert_eq!(a, -0.05);
        // Degraded state is not the primary's fault: no strike.
        assert_eq!(safe.strikes(), 0);
        // Non-finite goodput/limit also count as degraded but sanitize to
        // a healthy-latency state → MIMD's gentle increase.
        assert_eq!(safe.decide(st(f64::INFINITY, 0.5, 100.0)), 0.01);
    }

    #[test]
    fn safe_wrapper_passes_good_actions_through() {
        let safe =
            SafeRateController::with_defaults(std::sync::Arc::new(MimdController::paper_default()));
        assert_eq!(safe.decide(st(1.0, 0.5, 100.0)), 0.01);
        assert_eq!(safe.decide(st(0.3, 3.0, 100.0)), -0.05);
        assert_eq!(safe.strikes(), 0);
        assert_eq!(safe.name(), "safe(mimd)");
    }
}
