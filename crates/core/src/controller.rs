//! The TopFull control loop (§4.1, Algorithm 1).
//!
//! Once per control interval:
//!
//! 1. **Detect** overloaded services (utilization threshold, §4.2).
//! 2. **Cluster** the involved APIs into independent sub-problems
//!    (Equation 2); re-clustering is implicit because clustering runs
//!    from scratch on the current overloaded set.
//! 3. **Per cluster, in parallel**: pick the target microservice — "we
//!    iteratively choose the overloaded microservice utilized by the
//!    fewest APIs" — gather its candidate APIs, form the RL state
//!    (Σgoodput/Σlimit, max tail latency), and get a multiplicative step
//!    from the rate controller. Apply it per Algorithm 1: negative steps
//!    hit the lowest-business-priority candidates; positive steps raise
//!    the highest-priority candidates, and only those with no *other*
//!    overloaded service on their path (§4.1's rate-increase rule).
//! 4. **Recovery**: rate-limited APIs whose paths are currently free of
//!    overloaded services are "handled separately by a rate controller
//!    for possible recovery" — each gets its own controller decision, and
//!    a limit that has stayed comfortably above the offered load is
//!    removed entirely.

use crate::clustering::{cluster_apis, Cluster};
use crate::detector::OverloadDetector;
use crate::rate_controller::{
    BwRateController, MimdController, RateController, RateState, RlRateController,
    SafeRateController,
};
use cluster::observe::ClusterObservation;
use cluster::types::{ApiId, ServiceId};
use cluster::{Controller, RateLimitUpdate};
use rl::policy::PolicyValue;
use std::sync::Arc;

/// TopFull configuration.
#[derive(Clone)]
pub struct TopFullConfig {
    /// Utilization threshold entering the overloaded set (paper: 0.8).
    pub overload_enter: f64,
    /// Hysteresis exit threshold.
    pub overload_exit: f64,
    /// Disable for the §6.2 "w/o cluster" ablation: all involved APIs and
    /// overloaded services form a single sub-problem handled serially.
    pub clustering_enabled: bool,
    /// Floor for any rate limit (requests/s).
    pub min_rate: f64,
    /// Ceiling for any finite rate limit (requests/s). `INFINITY` means
    /// no ceiling; releasing a limit entirely is separate and always
    /// allowed.
    pub max_rate: f64,
    /// Remove a recovery API's limit after it has exceeded the offered
    /// load by this factor...
    pub release_headroom: f64,
    /// ...for this many consecutive intervals.
    pub release_after: u32,
    /// Refinement ablation: process only the single fewest-API target
    /// per cluster per interval (a literal reading of §4.1's "one at a
    /// time"); the default acts on every overloaded service each
    /// interval. See DESIGN.md §5, refinement 1.
    pub single_target_per_cluster: bool,
    /// Refinement ablation: when false, decreases follow Algorithm 1
    /// verbatim and may target idle or floor-pinned APIs. See DESIGN.md
    /// §5, refinement 2.
    pub restrict_cuts_to_contributing: bool,
    /// Refinement ablation: when false, group increases are
    /// multiplicative per API (like decreases), freezing whatever rate
    /// ratio the transient produced between same-priority APIs. See
    /// DESIGN.md §5, refinement 3.
    pub fair_group_steps: bool,
    /// The step-size policy shared by all cluster/recovery controllers.
    pub rate_controller: Arc<dyn RateController>,
    /// Minimum cut magnitude while admission is fully collapsed
    /// (goodput ratio ≈ 0 with latency pinned far past the SLO). A
    /// fixed multiplicative step converges geometrically from whatever
    /// limit the overload transient inflated — tens of intervals during
    /// which nothing is served; the scenario fuzzer's minimal
    /// reproducer is a plain flash crowd that keeps p99 above 1.5×SLO
    /// for 23 s with zero goodput. Collapse is unambiguous evidence the
    /// limit is far above capacity, so the cut is deepened to at least
    /// this much — but only until the target's limit has shrunk to
    /// [`COLLAPSE_FLOOR_FRAC`] of its value when the collapse was first
    /// seen (the episode budget); past that the normal step law
    /// resumes. `0.0` disables the escalation (ablation).
    pub collapse_backoff: f64,
}

/// Goodput ratio below this counts as collapsed admission...
pub(crate) const COLLAPSE_GOODPUT_EPS: f64 = 0.05;
/// ...when latency is simultaneously pinned at least this far past the
/// SLO. Both must hold: near-zero goodput alone can be an idle API.
pub(crate) const COLLAPSE_LATENCY_RATIO: f64 = 2.0;
/// Episode budget for the collapse backoff: escalated cuts may shrink a
/// target's total limit to at most this fraction of its value when the
/// collapse was first detected, then the normal step law resumes.
/// Collapse proves the limit is *far* above capacity, but "far" is
/// bounded — under sustained overload with a deep queue, latency stays
/// pinned long after the limit has reached capacity, and unbounded
/// escalation would ride every API to the floor (erasing the
/// priority-ordered split the cuts are supposed to produce).
pub(crate) const COLLAPSE_FLOOR_FRAC: f64 = 0.25;
/// A collapse episode may only *start* within this many control ticks
/// of one of the target's candidate APIs getting its limit
/// initialized (the first throttle snapshots the admitted rate, which
/// an overload transient — flash crowd or ramp past capacity —
/// inflates far above what the service can serve). That mistake is
/// visible immediately, so a collapse right after initialization is
/// the initialization's fault. A collapse that develops later, under
/// an established limit, is a capacity fade (e.g. a slow-pod
/// brownout); cutting 4× deep there tracks the faulted capacity
/// faster but strands recovery several times lower once the fault
/// clears, so the normal step law keeps it.
pub(crate) const COLLAPSE_INIT_WINDOW: u64 = 5;

impl Default for TopFullConfig {
    fn default() -> Self {
        TopFullConfig {
            overload_enter: 0.8,
            overload_exit: 0.75,
            clustering_enabled: true,
            min_rate: 1.0,
            max_rate: f64::INFINITY,
            release_headroom: 2.0,
            release_after: 5,
            single_target_per_cluster: false,
            restrict_cuts_to_contributing: true,
            fair_group_steps: true,
            rate_controller: Arc::new(MimdController::paper_default()),
            collapse_backoff: 0.25,
        }
    }
}

impl TopFullConfig {
    /// Use the trained RL policy (TopFull proper).
    pub fn with_rl(mut self, policy: PolicyValue) -> Self {
        self.rate_controller = Arc::new(RlRateController::new(policy));
        self
    }

    /// Use the MIMD ablation controller (§6.2).
    pub fn with_mimd(mut self) -> Self {
        self.rate_controller = Arc::new(MimdController::paper_default());
        self
    }

    /// Use custom MIMD steps (Fig. 13 sweep).
    pub fn with_mimd_steps(mut self, decrease: f64, increase: f64) -> Self {
        self.rate_controller = Arc::new(MimdController::with_steps(decrease, increase));
        self
    }

    /// Use the Breakwater-style AIMD controller (TopFull(BW), §6.3).
    pub fn with_bw(mut self) -> Self {
        self.rate_controller = Arc::new(BwRateController::default());
        self
    }

    /// Use an arbitrary step policy (tests, chaos injection, new
    /// controllers without a dedicated builder).
    pub fn with_rate_controller(mut self, rc: Arc<dyn RateController>) -> Self {
        self.rate_controller = rc;
        self
    }

    /// Disable clustering (§6.2 "w/o cluster" ablation).
    pub fn without_clustering(mut self) -> Self {
        self.clustering_enabled = false;
        self
    }

    /// Absolute floor and ceiling on every finite rate limit. Degenerate
    /// inputs are sanitized: a non-finite or negative floor falls back to
    /// the default (1 rps), a ceiling below the floor snaps to the floor.
    pub fn with_rate_bounds(mut self, min_rate: f64, max_rate: f64) -> Self {
        self.min_rate = if min_rate.is_finite() && min_rate > 0.0 {
            min_rate
        } else {
            1.0
        };
        self.max_rate = if max_rate.is_nan() {
            f64::INFINITY
        } else {
            max_rate.max(self.min_rate)
        };
        self
    }

    /// Wrap the configured step policy in a [`SafeRateController`]:
    /// degraded state routes to the MIMD fallback, and a primary that
    /// repeatedly returns non-finite or out-of-range actions is benched.
    pub fn hardened(mut self) -> Self {
        self.rate_controller = Arc::new(SafeRateController::with_defaults(Arc::clone(
            &self.rate_controller,
        )));
        self
    }
}

/// One per-cluster decision, kept for tests and experiment tracing.
#[derive(Clone, Debug)]
pub struct ClusterDecision {
    pub target: ServiceId,
    pub candidates: Vec<ApiId>,
    pub action: f64,
    pub applied_to: Vec<ApiId>,
}

/// The TopFull controller; plugs into [`cluster::Harness`].
pub struct TopFull {
    cfg: TopFullConfig,
    detector: Option<OverloadDetector>,
    /// Mirror of current per-API limits (`INFINITY` = unlimited).
    limits: Vec<f64>,
    /// Consecutive headroom intervals per API (release counter).
    headroom_ticks: Vec<u32>,
    /// Last interval's decisions, for inspection.
    pub last_decisions: Vec<ClusterDecision>,
    /// Decision journal (attached by the harness). All writes happen on
    /// the control thread, so journaling never perturbs the parallel
    /// decision batch or the determinism contract.
    journal: Option<Arc<obs::Journal>>,
    /// Previous detector set, to journal enter/clear transitions only.
    prev_overloaded: Vec<ServiceId>,
    /// Previous cluster partition rendered `api,api|api`, to journal
    /// re-clusterings only when the partition actually changes.
    prev_assignment: String,
    /// Collapse-backoff episode anchors: target service → total limit
    /// when the current collapse episode began. Escalated cuts stop at
    /// `anchor × COLLAPSE_FLOOR_FRAC`; entries clear when the target's
    /// collapse conditions clear.
    collapse_anchor: std::collections::HashMap<u32, f64>,
    /// Collapse-backoff anchors for the recovery-probe path, keyed by
    /// API: when the overload detector flaps (e.g. telemetry noise
    /// around the enter threshold), a freshly throttled API's cuts
    /// route through the per-API recovery decision — which must apply
    /// the same escalation, or the walk-down from a transient-inflated
    /// limit is the normal step law again while nothing is served (the
    /// fuzzer's noise-blinded-descent reproducer, fuzz 2-10).
    recovery_anchor: std::collections::HashMap<u32, f64>,
    /// Control ticks elapsed (one per `control` call).
    ticks: u64,
    /// Tick at which each API's limit was last initialized from the
    /// observed admitted rate (the first throttle after running
    /// unlimited); entries clear when the limit is released.
    limit_init: std::collections::HashMap<u32, u64>,
}

/// Journal-safe float: the JSONL schema keeps NaN/∞ out of the wire
/// format (the reason string carries the degradation note instead).
fn jf(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        -1.0
    }
}

/// Comma-joined API indices (`"0,2"`) for journal entries.
fn api_list(apis: &[ApiId]) -> String {
    let mut s = String::new();
    for (i, a) in apis.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&a.0.to_string());
    }
    s
}

impl TopFull {
    pub fn new(cfg: TopFullConfig) -> Self {
        TopFull {
            cfg,
            detector: None,
            limits: Vec::new(),
            headroom_ticks: Vec::new(),
            last_decisions: Vec::new(),
            journal: None,
            prev_overloaded: Vec::new(),
            prev_assignment: String::new(),
            collapse_anchor: std::collections::HashMap::new(),
            recovery_anchor: std::collections::HashMap::new(),
            ticks: 0,
            limit_init: std::collections::HashMap::new(),
        }
    }

    fn service_name(obs: &ClusterObservation, s: ServiceId) -> String {
        obs.services
            .get(s.idx())
            .map(|w| w.name.clone())
            .unwrap_or_else(|| format!("svc {}", s.0))
    }

    /// Journal detector transitions (diff against the previous set).
    fn journal_overloads(&mut self, obs: &ClusterObservation, overloaded: &[ServiceId]) {
        if let Some(j) = self.journal.as_ref() {
            let t = obs.now.as_secs_f64();
            for s in overloaded {
                if !self.prev_overloaded.contains(s) {
                    j.record(obs::JournalEntry::Overload {
                        t,
                        service: s.0,
                        name: Self::service_name(obs, *s),
                        utilization: jf(obs.services.get(s.idx()).map_or(-1.0, |w| w.utilization)),
                        entered: true,
                    });
                }
            }
            for s in &self.prev_overloaded {
                if !overloaded.contains(s) {
                    j.record(obs::JournalEntry::Overload {
                        t,
                        service: s.0,
                        name: Self::service_name(obs, *s),
                        utilization: jf(obs.services.get(s.idx()).map_or(-1.0, |w| w.utilization)),
                        entered: false,
                    });
                }
            }
        }
        self.prev_overloaded = overloaded.to_vec();
    }

    /// Journal the cluster partition when it differs from the last tick.
    fn journal_clusters(&mut self, obs: &ClusterObservation, clusters: &[Cluster]) {
        let mut assignment = String::new();
        for (i, c) in clusters.iter().enumerate() {
            if i > 0 {
                assignment.push('|');
            }
            assignment.push_str(&api_list(&c.apis));
        }
        if assignment != self.prev_assignment {
            if let Some(j) = self.journal.as_ref() {
                j.record(obs::JournalEntry::Recluster {
                    t: obs.now.as_secs_f64(),
                    clusters: clusters.len() as u32,
                    assignment: assignment.clone(),
                });
            }
            self.prev_assignment = assignment;
        }
    }

    fn ensure_sized(&mut self, obs: &ClusterObservation) {
        if self.detector.is_none() {
            // A malformed threshold pair must not take the control loop
            // down mid-run; fall back to the paper's defaults.
            self.detector = Some(
                OverloadDetector::with_thresholds(
                    obs.services.len(),
                    self.cfg.overload_enter,
                    self.cfg.overload_exit,
                )
                .unwrap_or_else(|_| OverloadDetector::new(obs.services.len())),
            );
        }
        if self.limits.len() < obs.apis.len() {
            self.limits.resize(obs.apis.len(), f64::INFINITY);
            self.headroom_ticks.resize(obs.apis.len(), 0);
        }
    }

    /// Effective limit used in the goodput-ratio feature: the actual
    /// limit if finite, else the currently admitted (≈ offered) rate.
    fn effective_limit(&self, obs: &ClusterObservation, api: ApiId) -> f64 {
        let l = self.limits[api.idx()];
        if l.is_finite() {
            l
        } else {
            obs.api(api).admitted.max(obs.api(api).offered).max(1.0)
        }
    }

    /// RL state for a candidate set (§4.3 "RL model design").
    fn state_for(&self, obs: &ClusterObservation, apis: &[ApiId]) -> RateState {
        let goodput: f64 = apis.iter().map(|a| obs.api(*a).goodput).sum();
        let limit: f64 = apis.iter().map(|a| self.effective_limit(obs, *a)).sum();
        let slo = obs.slo.as_secs_f64().max(1e-9);
        let lat = apis
            .iter()
            .map(|a| obs.api(*a).tail_latency().as_secs_f64())
            .fold(0.0, f64::max);
        RateState {
            goodput_ratio: if limit > 0.0 {
                (goodput / limit).clamp(0.0, 2.0)
            } else {
                0.0
            },
            latency_ratio: (lat / slo).clamp(0.0, 5.0),
            total_limit: limit,
        }
    }

    /// Collapse backoff for the recovery-probe path. The cluster path's
    /// escalation (below, in `control`) only covers APIs that are a
    /// cluster decision target this tick; when the overload detector
    /// flaps — telemetry noise straddling the enter threshold — a
    /// freshly throttled API's path reads as cold for a tick and its
    /// cut routes through the per-API recovery decision instead. Same
    /// law, same episode budget, anchored per API: a small cut under
    /// collapsed admission (goodput ≈ 0, latency pinned past the SLO)
    /// within the initialization window deepens to `collapse_backoff`,
    /// bounded by `anchor × COLLAPSE_FLOOR_FRAC`. Returns the possibly
    /// deepened action and whether it escalated.
    fn escalate_recovery_cut(&mut self, api: ApiId, a: f64, s: &RateState) -> (f64, bool) {
        let collapsed = self.cfg.collapse_backoff > 0.0
            && a.is_finite()
            && a < 0.0
            && a > -self.cfg.collapse_backoff
            && s.goodput_ratio < COLLAPSE_GOODPUT_EPS
            && s.latency_ratio >= COLLAPSE_LATENCY_RATIO
            && s.total_limit.is_finite()
            && s.total_limit > 0.0;
        if !collapsed {
            // Episode over: conditions cleared (or never held).
            self.recovery_anchor.remove(&api.0);
            return (a, false);
        }
        if !self.recovery_anchor.contains_key(&api.0) {
            let recent = self
                .limit_init
                .get(&api.0)
                .is_some_and(|e| self.ticks.saturating_sub(*e) <= COLLAPSE_INIT_WINDOW);
            if !recent {
                return (a, false);
            }
        }
        let anchor = *self.recovery_anchor.entry(api.0).or_insert(s.total_limit);
        let floor_action = (anchor * COLLAPSE_FLOOR_FRAC) / s.total_limit - 1.0;
        let deep = (-self.cfg.collapse_backoff).max(floor_action);
        if deep < a {
            (deep, true)
        } else {
            (a, false)
        }
    }

    /// Algorithm 1: pick the highest/lowest business-priority subset of
    /// the candidates (all ties included).
    fn priority_targets(
        obs: &ClusterObservation,
        candidates: &[ApiId],
        increase: bool,
    ) -> Vec<ApiId> {
        let key = |a: &ApiId| obs.api(*a).business;
        let best = if increase {
            candidates.iter().map(key).min()
        } else {
            candidates.iter().map(key).max()
        };
        match best {
            Some(b) => candidates.iter().copied().filter(|a| key(a) == b).collect(),
            None => Vec::new(),
        }
    }

    fn apply_action(
        &mut self,
        obs: &ClusterObservation,
        api: ApiId,
        action: f64,
        updates: &mut Vec<RateLimitUpdate>,
    ) {
        self.apply_group_action(obs, &[api], action, updates);
    }

    /// Apply one step to a target group.
    ///
    /// Decreases are multiplicative per API ("we reduce the rates of
    /// corresponding APIs equally" — the same factor for everyone);
    /// increases distribute the group's total step in **equal absolute
    /// shares**. The combination is the Chiu–Jain fairness argument:
    /// proportional cuts + equal gains converge same-priority APIs
    /// toward an even split of the bottleneck, instead of freezing
    /// whatever ratio the initial transient produced.
    fn apply_group_action(
        &mut self,
        obs: &ClusterObservation,
        apis: &[ApiId],
        action: f64,
        updates: &mut Vec<RateLimitUpdate>,
    ) {
        // A poisoned action (NaN from an unhardened policy) must not
        // poison the limit mirror — drop the step entirely.
        if !action.is_finite() {
            return;
        }
        let action = action.clamp(-0.5, 0.5);
        // Raising only applies to already-limited APIs.
        let group: Vec<ApiId> = if action >= 0.0 {
            apis.iter()
                .copied()
                .filter(|a| self.limits[a.idx()].is_finite())
                .collect()
        } else {
            apis.to_vec()
        };
        if group.is_empty() {
            return;
        }
        // First throttle initializes a limit from the observed admitted
        // rate; the group total drives the step size.
        let bases: Vec<f64> = group
            .iter()
            .map(|a| {
                let cur = self.limits[a.idx()];
                if cur.is_finite() {
                    cur
                } else {
                    self.limit_init.insert(a.0, self.ticks);
                    let adm = obs.api(*a).admitted;
                    // NaN admitted (degraded telemetry) → start from the
                    // floor; `max` with NaN already discards it, this just
                    // makes the intent explicit.
                    if adm.is_finite() {
                        adm.max(self.cfg.min_rate)
                    } else {
                        self.cfg.min_rate
                    }
                }
            })
            .collect();
        let total: f64 = bases.iter().sum();
        let share = action * total / group.len() as f64;
        for (api, base) in group.iter().zip(bases) {
            // Re-derive sane bounds even if the config fields were set
            // directly to degenerate values (`clamp` panics on NaN or an
            // inverted range).
            let floor = if self.cfg.min_rate.is_finite() && self.cfg.min_rate > 0.0 {
                self.cfg.min_rate
            } else {
                1.0
            };
            let ceil = if self.cfg.max_rate.is_nan() {
                f64::INFINITY
            } else {
                self.cfg.max_rate.max(floor)
            };
            let next = if action >= 0.0 && self.cfg.fair_group_steps {
                // Equal absolute gains across the group.
                base + share
            } else {
                // Proportional (multiplicative) steps.
                base * (1.0 + action)
            }
            .clamp(floor, ceil);
            self.limits[api.idx()] = next;
            self.headroom_ticks[api.idx()] = 0;
            updates.push(RateLimitUpdate::limit(*api, next));
        }
    }
}

impl Controller for TopFull {
    fn control(&mut self, obs: &ClusterObservation) -> Vec<RateLimitUpdate> {
        self.ensure_sized(obs);
        let Some(detector) = self.detector.as_mut() else {
            // Unreachable after ensure_sized, but a missing detector must
            // degrade to "no action", never to a panic mid-run.
            return Vec::new();
        };
        let overloaded = detector.detect(obs);
        self.ticks += 1;
        self.journal_overloads(obs, &overloaded);
        let clusters: Vec<Cluster> = if self.cfg.clustering_enabled {
            cluster_apis(&obs.api_paths, &overloaded)
        } else if overloaded.is_empty() {
            Vec::new()
        } else {
            // Ablation: one monolithic sub-problem.
            let over_set: std::collections::HashSet<ServiceId> =
                overloaded.iter().copied().collect();
            let apis: Vec<ApiId> = obs
                .api_paths
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|s| over_set.contains(s)))
                .map(|(i, _)| ApiId(i as u32))
                .collect();
            if apis.is_empty() {
                Vec::new()
            } else {
                vec![Cluster {
                    apis,
                    overloaded: overloaded.clone(),
                }]
            }
        };

        self.journal_clusters(obs, &clusters);

        // Per-cluster target selection + decision; decisions run in
        // parallel (the point of clustering, §4.2), results merged in
        // cluster order for determinism.
        //
        // Within a cluster, overloaded services are processed in
        // fewest-API-first order (§4.1's target priority). Each target
        // *claims* its candidate APIs so one API receives at most one
        // decision per interval; later targets control the remainder.
        // This keeps the paper's prioritization while guaranteeing every
        // bottleneck in the cluster is acted on each interval — a single
        // never-resolving target must not leave the rest uncontrolled.
        let mut prepared: Vec<(ServiceId, Vec<ApiId>)> = Vec::new();
        for c in &clusters {
            let mut targets = c.overloaded.clone();
            targets.sort_by_key(|s| {
                let users = obs.api_paths.iter().filter(|path| path.contains(s)).count();
                (users, s.0)
            });
            let mut claimed: std::collections::HashSet<ApiId> = std::collections::HashSet::new();
            let mut cluster_decisions = 0;
            for target in targets {
                if self.cfg.single_target_per_cluster && cluster_decisions >= 1 {
                    break;
                }
                let candidates: Vec<ApiId> = c
                    .apis
                    .iter()
                    .copied()
                    .filter(|a| !claimed.contains(a) && obs.api_paths[a.idx()].contains(&target))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                for a in &candidates {
                    claimed.insert(*a);
                }
                prepared.push((target, candidates));
                cluster_decisions += 1;
            }
        }
        if !self.cfg.clustering_enabled {
            // §6.2 "w/o cluster" ablation: naive sequential load control —
            // one decision per interval over the monolithic problem.
            prepared.truncate(1);
        }
        let states: Vec<RateState> = prepared
            .iter()
            .map(|(_, cands)| self.state_for(obs, cands))
            .collect();
        let controller = Arc::clone(&self.cfg.rate_controller);
        // Strike counter before the decision batch; re-read after all
        // decisions (cluster + recovery) so strike transitions are
        // journaled here, on the control thread, regardless of which
        // parallel worker actually triggered them.
        let strikes_before = controller.fallback_state().map_or(0, |(s, _, _)| s);
        let actions: Vec<f64> = if states.len() > 1 {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = states
                    .iter()
                    .map(|s| {
                        let c = &controller;
                        scope.spawn(move |_| c.decide(*s))
                    })
                    .collect();
                handles
                    .into_iter()
                    // A panicked decision worker yields a no-op step, not
                    // a poisoned control loop.
                    .map(|h| h.join().unwrap_or(0.0))
                    .collect()
            })
            .unwrap_or_else(|_| vec![0.0; states.len()])
        } else {
            states.iter().map(|s| controller.decide(*s)).collect()
        };

        // Collapse backoff: the rate controller owns the step's
        // *direction*, but when the candidate set's admission has fully
        // collapsed — goodput ratio ≈ 0 with latency pinned far past
        // the SLO — a small fixed cut walks down geometrically from a
        // transient-inflated limit while nothing is served at all.
        // Collapse is unambiguous evidence the limit is far above
        // capacity, so deepen any cut to `collapse_backoff` — bounded
        // by an episode budget: once the target's limit has shrunk to
        // `COLLAPSE_FLOOR_FRAC` of its value at episode start, the
        // evidence is spent and the normal step law resumes (a deep
        // queue keeps latency pinned long after the limit reaches
        // capacity; unbounded escalation floors every API equally).
        let mut escalated = vec![false; actions.len()];
        let mut collapsing: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let actions: Vec<f64> = actions
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let s = &states[i];
                if !(self.cfg.collapse_backoff > 0.0
                    && a.is_finite()
                    && a < 0.0
                    && a > -self.cfg.collapse_backoff
                    && s.goodput_ratio < COLLAPSE_GOODPUT_EPS
                    && s.latency_ratio >= COLLAPSE_LATENCY_RATIO
                    && s.total_limit.is_finite()
                    && s.total_limit > 0.0)
                {
                    return a;
                }
                let target = prepared[i].0 .0;
                // Episodes only *start* shortly after a candidate's
                // limit initialization — the window where the limit is
                // a fresh (possibly transient-inflated) snapshot of
                // the admitted rate. Ongoing episodes run until their
                // conditions clear.
                if !self.collapse_anchor.contains_key(&target) {
                    let recent = prepared[i].1.iter().any(|api| {
                        self.limit_init
                            .get(&api.0)
                            .is_some_and(|e| self.ticks.saturating_sub(*e) <= COLLAPSE_INIT_WINDOW)
                    });
                    if !recent {
                        return a;
                    }
                }
                collapsing.insert(target);
                let anchor = *self.collapse_anchor.entry(target).or_insert(s.total_limit);
                // The action that lands exactly on the episode floor;
                // never cut past it, never deepen beyond the backoff.
                let floor_action = (anchor * COLLAPSE_FLOOR_FRAC) / s.total_limit - 1.0;
                let deep = (-self.cfg.collapse_backoff).max(floor_action);
                if deep < a {
                    escalated[i] = true;
                    deep
                } else {
                    a
                }
            })
            .collect();
        // An episode ends when its target stops meeting the collapse
        // conditions (goodput recovered, latency cleared, or the
        // detector released it).
        self.collapse_anchor.retain(|t, _| collapsing.contains(t));

        // Eligibility for rate increases uses the *instantaneous* enter
        // threshold, not the hysteresis set: a service cooling through
        // the 0.75–0.8 band still anchors its cluster, but must not veto
        // recovery of every API crossing it — otherwise near-threshold
        // services freeze the whole application below capacity.
        let hot_now: std::collections::HashSet<ServiceId> = obs
            .services
            .iter()
            .filter(|s| s.utilization > self.cfg.overload_enter)
            .map(|s| s.service)
            .collect();
        let mut updates = Vec::new();
        self.last_decisions.clear();

        for ((((target, candidates), action), state), escalated) in
            prepared.into_iter().zip(actions).zip(states).zip(escalated)
        {
            let applied_to: Vec<ApiId> = if action >= 0.0 {
                // §4.1 rate-increase rule: only candidates whose path has
                // no overloaded service other than the target.
                let mut eligible: Vec<ApiId> = Vec::new();
                for a in candidates.iter().copied() {
                    match obs.api_paths[a.idx()]
                        .iter()
                        .find(|s| **s != target && hot_now.contains(s))
                    {
                        None => eligible.push(a),
                        Some(blocker) => {
                            if let Some(j) = self.journal.as_ref() {
                                j.record(obs::JournalEntry::RateBlocked {
                                    t: obs.now.as_secs_f64(),
                                    api: a.0,
                                    reason: format!(
                                        "rate-increase blocked: path contains overloaded {}",
                                        Self::service_name(obs, *blocker)
                                    ),
                                });
                            }
                        }
                    }
                }
                Self::priority_targets(obs, &eligible, true)
            } else {
                // Rate-limiting an API that carries no load — or one
                // already cut to the floor — cannot relieve the target;
                // cut among the candidates still contributing traffic
                // (lowest business priority first). The ablation flag
                // reverts to verbatim Algorithm 1.
                let pool: Vec<ApiId> = if self.cfg.restrict_cuts_to_contributing {
                    candidates
                        .iter()
                        .copied()
                        .filter(|a| {
                            let carries_load =
                                obs.api(*a).admitted > 0.5 || obs.api(*a).offered > 0.5;
                            let can_go_lower = self.limits[a.idx()] > self.cfg.min_rate;
                            carries_load && can_go_lower
                        })
                        .collect()
                } else {
                    candidates.clone()
                };
                Self::priority_targets(obs, &pool, false)
            };
            self.apply_group_action(obs, &applied_to, action, &mut updates);
            if let Some(j) = self.journal.as_ref() {
                let name = self.cfg.rate_controller.name();
                let degraded = !state.goodput_ratio.is_finite()
                    || !state.latency_ratio.is_finite()
                    || !state.total_limit.is_finite();
                let mut reason = if action.is_finite() {
                    format!("{name} action {action:+.3}")
                } else {
                    format!("{name} action non-finite; step dropped")
                };
                if escalated {
                    reason.push_str("; collapse backoff: admission collapsed, cut deepened");
                }
                if degraded {
                    if name.starts_with("safe(") {
                        reason.push_str("; degraded telemetry routed to mimd fallback");
                    } else {
                        reason.push_str("; degraded telemetry");
                    }
                }
                if applied_to.is_empty() && action.is_finite() {
                    reason.push_str(if action >= 0.0 {
                        "; no eligible API to raise"
                    } else {
                        "; no contributing API to cut"
                    });
                }
                j.record(obs::JournalEntry::RateAction {
                    t: obs.now.as_secs_f64(),
                    target: target.0,
                    target_name: Self::service_name(obs, target),
                    apis: api_list(&applied_to),
                    action: jf(action),
                    goodput_ratio: jf(state.goodput_ratio),
                    latency_ratio: jf(state.latency_ratio),
                    total_limit: jf(state.total_limit),
                    reason,
                });
            }
            self.last_decisions.push(ClusterDecision {
                target,
                candidates,
                action,
                applied_to,
            });
        }

        // Recovery: rate-limited APIs whose paths are currently free of
        // hot services get individual decisions ("handled separately by a
        // rate controller for possible recovery", §4.1), and
        // long-standing headroom releases the limit entirely. An API can
        // still be inside a cluster through a cooling (hysteresis-band)
        // service — that must not block its recovery — but an API that
        // was a decision target this tick is skipped.
        let acted_on: std::collections::HashSet<ApiId> = self
            .last_decisions
            .iter()
            .flat_map(|d| d.applied_to.iter().copied())
            .collect();
        for i in 0..obs.apis.len() {
            let api = ApiId(i as u32);
            if !self.limits[i].is_finite() || acted_on.contains(&api) {
                continue;
            }
            let path_hot = obs.api_paths[i].iter().any(|s| hot_now.contains(s));
            if path_hot {
                continue;
            }
            let offered = obs.api(api).offered;
            let slo_ok = obs.api(api).tail_latency() <= obs.slo;
            if self.limits[i] >= offered * self.cfg.release_headroom && slo_ok {
                self.headroom_ticks[i] += 1;
                if self.headroom_ticks[i] >= self.cfg.release_after {
                    self.limits[i] = f64::INFINITY;
                    self.headroom_ticks[i] = 0;
                    self.limit_init.remove(&(i as u32));
                    if let Some(j) = self.journal.as_ref() {
                        j.record(obs::JournalEntry::Release {
                            t: obs.now.as_secs_f64(),
                            api: api.0,
                            reason: format!(
                                "limit held {:.1}x above offered for {} intervals",
                                self.cfg.release_headroom, self.cfg.release_after
                            ),
                        });
                    }
                    updates.push(RateLimitUpdate::unlimited(api));
                    continue;
                }
            } else {
                self.headroom_ticks[i] = 0;
            }
            let state = self.state_for(obs, &[api]);
            let action = self.cfg.rate_controller.decide(state);
            let (action, escalated) = self.escalate_recovery_cut(api, action, &state);
            // Preserve the headroom counter across the action.
            let ticks = self.headroom_ticks[i];
            self.apply_action(obs, api, action, &mut updates);
            self.headroom_ticks[i] = ticks;
            if let Some(j) = self.journal.as_ref() {
                let name = self.cfg.rate_controller.name();
                let degraded = !state.goodput_ratio.is_finite()
                    || !state.latency_ratio.is_finite()
                    || !state.total_limit.is_finite();
                let mut reason = if action.is_finite() {
                    format!("recovery probe: {name} action {action:+.3}")
                } else {
                    format!("recovery probe: {name} action non-finite; step dropped")
                };
                if escalated {
                    reason.push_str("; collapse backoff: admission collapsed, cut deepened");
                }
                if degraded {
                    if name.starts_with("safe(") {
                        reason.push_str("; degraded telemetry routed to mimd fallback");
                    } else {
                        reason.push_str("; degraded telemetry");
                    }
                }
                j.record(obs::JournalEntry::RateAction {
                    t: obs.now.as_secs_f64(),
                    target: api.0,
                    target_name: obs.api(api).name.clone(),
                    apis: api_list(&[api]),
                    action: jf(action),
                    goodput_ratio: jf(state.goodput_ratio),
                    latency_ratio: jf(state.latency_ratio),
                    total_limit: jf(state.total_limit),
                    reason,
                });
            }
        }
        // Strike transitions accumulated anywhere in this tick's decisions
        // are journaled once, in order, from the control thread.
        if let Some(j) = self.journal.as_ref() {
            if let Some((cur, max_strikes, _)) = self.cfg.rate_controller.fallback_state() {
                for v in (strikes_before + 1)..=cur {
                    j.record(obs::JournalEntry::FallbackStrike {
                        t: obs.now.as_secs_f64(),
                        strikes: v,
                        max_strikes,
                        tripped: v >= max_strikes,
                    });
                }
            }
        }
        updates
    }

    fn attach_journal(&mut self, journal: Arc<obs::Journal>) {
        self.journal = Some(journal);
    }

    fn name(&self) -> &str {
        "topfull"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::observe::{ApiWindow, ServiceWindow};
    use cluster::types::BusinessPriority;
    use simnet::{SimDuration, SimTime};

    /// Hand-built observation: utilization per service, per-API
    /// (offered, admitted, goodput, p99 ms, business, rate_limit).
    fn obs(
        utils: &[f64],
        apis: &[(f64, f64, f64, u64, u8, f64)],
        paths: Vec<Vec<ServiceId>>,
    ) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            services: utils
                .iter()
                .enumerate()
                .map(|(i, u)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: *u,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::ZERO,
                    started_calls: 10,
                    dropped_calls: 0,
                })
                .collect(),
            apis: apis
                .iter()
                .enumerate()
                .map(|(i, (off, adm, good, p99, biz, lim))| ApiWindow {
                    api: ApiId(i as u32),
                    name: format!("a{i}"),
                    business: BusinessPriority(*biz),
                    offered: *off,
                    admitted: *adm,
                    goodput: *good,
                    slo_violated: 0.0,
                    failed: 0.0,
                    p50: Some(SimDuration::from_millis(*p99 / 2)),
                    p95: Some(SimDuration::from_millis(*p99)),
                    p99: Some(SimDuration::from_millis(*p99)),
                    rate_limit: *lim,
                })
                .collect(),
            api_paths: paths,
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        }
    }

    fn sid(xs: &[u32]) -> Vec<ServiceId> {
        xs.iter().map(|x| ServiceId(*x)).collect()
    }

    #[test]
    fn no_overload_no_action() {
        let mut tf = TopFull::new(TopFullConfig::default());
        let o = obs(
            &[0.5, 0.6],
            &[(100.0, 100.0, 100.0, 10, 0, f64::INFINITY)],
            vec![sid(&[0, 1])],
        );
        assert!(tf.control(&o).is_empty());
        assert!(tf.last_decisions.is_empty());
    }

    #[test]
    fn overload_throttles_and_initializes_from_admitted() {
        let mut tf = TopFull::new(TopFullConfig::default());
        // Service 0 overloaded; latency 2 s (past SLO) → MIMD decreases.
        let o = obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        );
        let ups = tf.control(&o);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].api, ApiId(0));
        // Initialized from admitted (300) then −5%: 285.
        assert!((ups[0].rate - 285.0).abs() < 1e-9, "got {}", ups[0].rate);
    }

    /// Collapsed admission (goodput ratio ≈ 0, latency pinned ≥2×SLO).
    const COLLAPSED: (f64, f64, f64, u64, u8, f64) = (285.0, 285.0, 0.0, 2500, 0, 285.0);
    /// Overloaded but serving: latency just past the SLO.
    const STRAINED: (f64, f64, f64, u64, u8, f64) = (285.0, 285.0, 100.0, 1100, 0, 285.0);

    #[test]
    fn collapse_backoff_deepens_cut_after_fresh_initialization() {
        let mut tf = TopFull::new(TopFullConfig::default());
        // Tick 1: first throttle initializes from admitted (300→285);
        // goodput ratio 0.27 is not collapsed, so the step is plain −5%.
        let ups = tf.control(&obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        ));
        assert!((ups[0].rate - 285.0).abs() < 1e-9);
        // Tick 2: admission collapses right after initialization — the
        // −5% step escalates to the collapse backoff (−25%).
        let ups = tf.control(&obs(&[0.95], &[COLLAPSED], vec![sid(&[0])]));
        assert!(
            (ups[0].rate - 285.0 * 0.75).abs() < 1e-9,
            "escalated cut expected, got {}",
            ups[0].rate
        );
    }

    #[test]
    fn collapse_backoff_stops_at_episode_floor() {
        let mut tf = TopFull::new(TopFullConfig::default());
        tf.control(&obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        ));
        // Sustained collapse: −25% steps walk 285 down, but stop at the
        // episode floor 285 × COLLAPSE_FLOOR_FRAC = 71.25 rather than
        // riding to the configured minimum rate.
        let mut last = 285.0;
        for _ in 0..5 {
            let ups = tf.control(&obs(&[0.95], &[COLLAPSED], vec![sid(&[0])]));
            last = ups[0].rate;
        }
        let floor = 285.0 * COLLAPSE_FLOOR_FRAC;
        assert!(
            (last - floor).abs() < 1e-6,
            "descent should land exactly on the floor: {last} vs {floor}"
        );
        // Past the floor the normal −5% law resumes.
        let ups = tf.control(&obs(&[0.95], &[COLLAPSED], vec![sid(&[0])]));
        assert!(
            (ups[0].rate - floor * 0.95).abs() < 1e-6,
            "normal step past the floor, got {}",
            ups[0].rate
        );
    }

    #[test]
    fn collapse_backoff_only_starts_near_limit_initialization() {
        let mut tf = TopFull::new(TopFullConfig::default());
        tf.control(&obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        ));
        let mut expect = 285.0;
        // Strained-but-serving ticks age the initialization past the
        // episode window; each is a plain −5%.
        for _ in 0..COLLAPSE_INIT_WINDOW + 1 {
            let ups = tf.control(&obs(&[0.95], &[STRAINED], vec![sid(&[0])]));
            expect *= 0.95;
            assert!((ups[0].rate - expect).abs() < 1e-6);
        }
        // A collapse developing this late is a capacity fade, not a bad
        // initialization — the step must stay −5%.
        let ups = tf.control(&obs(&[0.95], &[COLLAPSED], vec![sid(&[0])]));
        expect *= 0.95;
        assert!(
            (ups[0].rate - expect).abs() < 1e-6,
            "late collapse must not escalate: {} vs {expect}",
            ups[0].rate
        );
    }

    #[test]
    fn collapse_backoff_applies_on_recovery_probe_path() {
        let mut tf = TopFull::new(TopFullConfig::default());
        // Tick 1: first throttle initializes from admitted (300→285).
        tf.control(&obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        ));
        // Tick 2: telemetry noise drops the reported utilization below
        // the enter threshold — the detector flaps, the API's path
        // reads cold, and the collapsed cut routes through the per-API
        // recovery probe. It must escalate exactly like the cluster
        // path (fuzz 2-10: without this, the walk-down from the
        // inflated limit is −5%/tick while nothing is served).
        let ups = tf.control(&obs(&[0.5], &[COLLAPSED], vec![sid(&[0])]));
        assert_eq!(ups.len(), 1);
        assert!(
            (ups[0].rate - 285.0 * 0.75).abs() < 1e-9,
            "recovery-path cut must escalate under collapse, got {}",
            ups[0].rate
        );
        // Recovery ticks continue the episode down to the same floor …
        let mut last = ups[0].rate;
        for _ in 0..4 {
            let ups = tf.control(&obs(&[0.5], &[COLLAPSED], vec![sid(&[0])]));
            last = ups[0].rate;
        }
        let floor = 285.0 * COLLAPSE_FLOOR_FRAC;
        assert!(
            (last - floor).abs() < 1e-6,
            "recovery descent should stop at the episode floor: {last} vs {floor}"
        );
        // … past which the normal −5% law resumes.
        let ups = tf.control(&obs(&[0.5], &[COLLAPSED], vec![sid(&[0])]));
        assert!(
            (ups[0].rate - floor * 0.95).abs() < 1e-6,
            "normal step past the floor, got {}",
            ups[0].rate
        );
    }

    #[test]
    fn collapse_backoff_zero_disables_escalation() {
        let mut tf = TopFull::new(TopFullConfig {
            collapse_backoff: 0.0,
            ..TopFullConfig::default()
        });
        tf.control(&obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        ));
        let ups = tf.control(&obs(&[0.95], &[COLLAPSED], vec![sid(&[0])]));
        assert!(
            (ups[0].rate - 285.0 * 0.95).abs() < 1e-9,
            "ablated backoff must keep the paper's −5% step, got {}",
            ups[0].rate
        );
    }

    #[test]
    fn decrease_hits_lowest_priority_only() {
        let mut tf = TopFull::new(TopFullConfig::default());
        // Both APIs pass overloaded service 0; API1 has lower priority
        // (higher value).
        let o = obs(
            &[0.95],
            &[
                (200.0, 200.0, 50.0, 2000, 0, f64::INFINITY),
                (200.0, 200.0, 50.0, 2000, 3, f64::INFINITY),
            ],
            vec![sid(&[0]), sid(&[0])],
        );
        let ups = tf.control(&o);
        assert_eq!(ups.len(), 1, "only the lowest priority is cut");
        assert_eq!(ups[0].api, ApiId(1));
    }

    #[test]
    fn equal_priorities_are_cut_together() {
        let mut tf = TopFull::new(TopFullConfig::default());
        let o = obs(
            &[0.95],
            &[
                (200.0, 200.0, 50.0, 2000, 1, f64::INFINITY),
                (200.0, 200.0, 50.0, 2000, 1, f64::INFINITY),
            ],
            vec![sid(&[0]), sid(&[0])],
        );
        let ups = tf.control(&o);
        assert_eq!(ups.len(), 2, "§4.1: reduce corresponding APIs equally");
    }

    #[test]
    fn increase_requires_overload_free_path_beyond_target() {
        // Two overloaded services; API0 touches both, API1 only the
        // target. A positive action may only lift API1 (and only if it is
        // already limited).
        let mut tf = TopFull::new(TopFullConfig::default().with_mimd_steps(0.05, 0.2));
        // Pre-limit both APIs.
        tf.limits = vec![100.0, 100.0];
        tf.headroom_ticks = vec![0, 0];
        tf.detector = Some(OverloadDetector::with_thresholds(3, 0.8, 0.75).unwrap());
        // Latency below SLO → MIMD increases; service 1 is the target
        // (fewest APIs pass it? both pass 1... paths: API0: {1, 2};
        // API1: {1}; service 2 used by 1 API → target = 2, candidates =
        // {API0}. API0 touches target 2 and overloaded 1 → ineligible.
        let o = obs(
            &[0.5, 0.95, 0.95],
            &[
                (200.0, 100.0, 100.0, 100, 0, 100.0),
                (200.0, 100.0, 100.0, 100, 1, 100.0),
            ],
            vec![sid(&[1, 2]), sid(&[1])],
        );
        let ups = tf.control(&o);
        // Cluster contains both APIs (share service 1). First target =
        // svc 2 (1 user); candidate {API0} is blocked from increasing
        // because API0 also passes hot svc 1. Second target = svc 1;
        // remaining candidate {API1} only touches its own target, so the
        // probe increase applies to it alone.
        assert_eq!(ups.len(), 1, "only API1 may be raised: {ups:?}");
        assert_eq!(ups[0].api, ApiId(1));
        assert!(
            !tf.last_decisions
                .iter()
                .any(|d| d.applied_to.contains(&ApiId(0))),
            "increase must not leak past other overloads"
        );
    }

    #[test]
    fn recovery_raises_limited_api_when_path_clear() {
        let mut tf = TopFull::new(TopFullConfig::default());
        tf.limits = vec![100.0];
        tf.headroom_ticks = vec![0];
        tf.detector = Some(OverloadDetector::with_thresholds(1, 0.8, 0.75).unwrap());
        // No overload anywhere; API0 is limited to 100 while offering
        // 300 → recovery controller should raise it (MIMD +1%).
        let o = obs(
            &[0.5],
            &[(300.0, 100.0, 100.0, 50, 0, 100.0)],
            vec![sid(&[0])],
        );
        let ups = tf.control(&o);
        assert_eq!(ups.len(), 1);
        assert!((ups[0].rate - 101.0).abs() < 1e-9, "got {}", ups[0].rate);
    }

    #[test]
    fn longstanding_headroom_releases_the_limit() {
        let mut tf = TopFull::new(TopFullConfig {
            release_after: 3,
            ..TopFullConfig::default()
        });
        tf.limits = vec![1000.0];
        tf.headroom_ticks = vec![0];
        tf.detector = Some(OverloadDetector::with_thresholds(1, 0.8, 0.75).unwrap());
        // Offered 100 ≪ limit 1000 (headroom 10×) with low latency.
        let o = obs(
            &[0.3],
            &[(100.0, 100.0, 100.0, 50, 0, 1000.0)],
            vec![sid(&[0])],
        );
        let mut released = false;
        for _ in 0..5 {
            for u in tf.control(&o) {
                if u.rate.is_infinite() {
                    released = true;
                }
            }
        }
        assert!(released, "limit should be released after headroom ticks");
        assert!(tf.limits[0].is_infinite());
    }

    #[test]
    fn ablation_without_clustering_forms_one_problem() {
        let mut tf = TopFull::new(TopFullConfig::default().without_clustering());
        // Two disjoint overloads would normally be two clusters.
        let o = obs(
            &[0.95, 0.95],
            &[
                (200.0, 200.0, 50.0, 2000, 0, f64::INFINITY),
                (200.0, 200.0, 50.0, 2000, 0, f64::INFINITY),
            ],
            vec![sid(&[0]), sid(&[1])],
        );
        tf.control(&o);
        assert_eq!(
            tf.last_decisions.len(),
            1,
            "ablation must solve one monolithic problem"
        );
        let mut tf2 = TopFull::new(TopFullConfig::default());
        tf2.control(&o);
        assert_eq!(tf2.last_decisions.len(), 2, "clustering splits in two");
    }

    #[test]
    fn target_is_fewest_api_service() {
        let mut tf = TopFull::new(TopFullConfig::default());
        // Both services overloaded and in one cluster via API0;
        // service 1 carries fewer APIs → chosen as target.
        let o = obs(
            &[0.95, 0.95],
            &[
                (200.0, 200.0, 50.0, 2000, 0, f64::INFINITY),
                (200.0, 200.0, 50.0, 2000, 1, f64::INFINITY),
            ],
            vec![sid(&[0, 1]), sid(&[0])],
        );
        tf.control(&o);
        assert_eq!(
            tf.last_decisions.len(),
            2,
            "both overloaded services acted on"
        );
        assert_eq!(
            tf.last_decisions[0].target,
            ServiceId(1),
            "fewest-API service processed first"
        );
    }

    #[test]
    fn journal_records_overload_recluster_and_actions() {
        let mut tf = TopFull::new(TopFullConfig::default());
        let journal = obs::Journal::shared();
        tf.attach_journal(std::sync::Arc::clone(&journal));
        let hot = obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        );
        tf.control(&hot);
        let kinds: Vec<&'static str> = journal
            .snapshot()
            .iter()
            .map(|e| match e {
                obs::JournalEntry::Overload { .. } => "overload",
                obs::JournalEntry::Recluster { .. } => "recluster",
                obs::JournalEntry::RateAction { .. } => "rate_action",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["overload", "recluster", "rate_action"]);
        match &journal.snapshot()[0] {
            obs::JournalEntry::Overload {
                entered, service, ..
            } => {
                assert!(entered);
                assert_eq!(*service, 0);
            }
            e => panic!("unexpected first entry {e:?}"),
        }
        // Same observation again: the set and partition are unchanged, so
        // only the per-target action is journaled.
        let before = journal.len();
        tf.control(&hot);
        let tail = &journal.snapshot()[before..];
        assert_eq!(tail.len(), 1);
        assert!(matches!(tail[0], obs::JournalEntry::RateAction { .. }));
        // Load clears: the overload exit and empty partition are recorded.
        let cool = obs(&[0.1], &[(10.0, 10.0, 10.0, 10, 0, 285.0)], vec![sid(&[0])]);
        tf.limits = vec![f64::INFINITY];
        tf.control(&cool);
        let snap = journal.snapshot();
        assert!(snap
            .iter()
            .any(|e| matches!(e, obs::JournalEntry::Overload { entered: false, .. })));
        assert!(snap
            .iter()
            .any(|e| matches!(e, obs::JournalEntry::Recluster { clusters: 0, .. })));
    }

    #[test]
    fn journal_records_increase_blocks_and_releases() {
        // Same topology as increase_requires_overload_free_path_beyond_target.
        let mut tf = TopFull::new(TopFullConfig::default().with_mimd_steps(0.05, 0.2));
        let journal = obs::Journal::shared();
        tf.attach_journal(std::sync::Arc::clone(&journal));
        tf.limits = vec![100.0, 100.0];
        tf.headroom_ticks = vec![0, 0];
        tf.detector = Some(OverloadDetector::with_thresholds(3, 0.8, 0.75).unwrap());
        let o = obs(
            &[0.5, 0.95, 0.95],
            &[
                (200.0, 100.0, 100.0, 100, 0, 100.0),
                (200.0, 100.0, 100.0, 100, 1, 100.0),
            ],
            vec![sid(&[1, 2]), sid(&[1])],
        );
        tf.control(&o);
        let blocked: Vec<String> = journal
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                obs::JournalEntry::RateBlocked { api, reason, .. } => {
                    Some(format!("{api}: {reason}"))
                }
                _ => None,
            })
            .collect();
        assert_eq!(blocked.len(), 1, "API0 blocked by hot svc 1: {blocked:?}");
        assert!(blocked[0].starts_with("0:"));
        assert!(blocked[0].contains("s1"), "{blocked:?}");
        // Headroom release is journaled.
        let mut tf = TopFull::new(TopFullConfig {
            release_after: 2,
            ..TopFullConfig::default()
        });
        let journal = obs::Journal::shared();
        tf.attach_journal(std::sync::Arc::clone(&journal));
        tf.limits = vec![1000.0];
        tf.headroom_ticks = vec![0];
        tf.detector = Some(OverloadDetector::with_thresholds(1, 0.8, 0.75).unwrap());
        let idle = obs(
            &[0.3],
            &[(100.0, 100.0, 100.0, 50, 0, 1000.0)],
            vec![sid(&[0])],
        );
        for _ in 0..3 {
            tf.control(&idle);
        }
        assert!(journal
            .snapshot()
            .iter()
            .any(|e| matches!(e, obs::JournalEntry::Release { api: 0, .. })));
    }

    #[test]
    fn journal_records_fallback_strikes_until_tripped() {
        /// A broken primary: every action is non-finite, so the safe
        /// wrapper strikes once per decision until it trips.
        struct NanPrimary;
        impl RateController for NanPrimary {
            fn decide(&self, _s: RateState) -> f64 {
                f64::NAN
            }
            fn name(&self) -> &str {
                "nan-primary"
            }
        }
        let cfg = TopFullConfig {
            rate_controller: Arc::new(SafeRateController::new(Arc::new(NanPrimary), 2)),
            ..TopFullConfig::default()
        };
        let mut tf = TopFull::new(cfg);
        let journal = obs::Journal::shared();
        tf.attach_journal(std::sync::Arc::clone(&journal));
        let hot = obs(
            &[0.95],
            &[(300.0, 300.0, 80.0, 2000, 0, f64::INFINITY)],
            vec![sid(&[0])],
        );
        tf.control(&hot);
        tf.control(&hot);
        let strikes: Vec<(u32, u32, bool)> = journal
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                obs::JournalEntry::FallbackStrike {
                    strikes,
                    max_strikes,
                    tripped,
                    ..
                } => Some((*strikes, *max_strikes, *tripped)),
                _ => None,
            })
            .collect();
        assert_eq!(
            strikes,
            vec![(1, 2, false), (2, 2, true)],
            "one strike journaled per bad decision, tripping at max"
        );
        // The rate actions themselves stay finite: the MIMD fallback
        // supplied every step the broken primary failed to.
        assert!(journal.snapshot().iter().all(|e| match e {
            obs::JournalEntry::RateAction { action, .. } => action.is_finite(),
            _ => true,
        }));
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use cluster::{ApiSpec, CallNode, Engine, EngineConfig, Harness, OpenLoopWorkload};
    use cluster::{ServiceSpec, Topology};
    use simnet::{SimDuration, SimTime};

    /// Two same-priority APIs share one bottleneck; whatever skew the
    /// initial transient creates, the Chiu–Jain group actions must
    /// converge the pair toward an even split.
    #[test]
    fn equal_priority_apis_converge_to_fair_share() {
        let mut topo = Topology::new("fair");
        let s = topo.add_service(ServiceSpec::new("shared", 2));
        let mk = |t: &mut Topology, name: &str, s| {
            t.add_api(ApiSpec::single(
                name,
                CallNode::leaf(s, SimDuration::from_millis(10)),
            ))
        };
        let a = mk(&mut topo, "a", s);
        let b = mk(&mut topo, "b", s);
        // Capacity 200 rps; offered very asymmetrically: 900 vs 300.
        let w = OpenLoopWorkload::constant(vec![(a, 900.0), (b, 300.0)]);
        let engine = Engine::new(
            topo,
            EngineConfig {
                seed: 5,
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        let tf = TopFull::new(TopFullConfig::default().with_mimd());
        let mut h = Harness::new(engine, Box::new(tf));
        h.run_until(SimTime::from_secs(600));
        let ga = h.result().mean_goodput_api(a, 450.0, 600.0);
        let gb = h.result().mean_goodput_api(b, 450.0, 600.0);
        assert!(ga + gb > 120.0, "bottleneck well utilized: {ga} + {gb}");
        // The offered skew is 3:1; multiplicative cuts + equal-share
        // raises must pull the served split well inside that.
        let ratio = ga.max(gb) / ga.min(gb).max(1.0);
        assert!(
            ratio < 2.5,
            "equal-priority split should approach fairness: {ga} vs {gb}"
        );
    }

    /// Distinct priorities must NOT be fair: the high-priority API gets
    /// the bottleneck, the low one survives at the floor.
    #[test]
    fn distinct_priorities_prefer_the_important_api() {
        let mut topo = Topology::new("prio");
        let s = topo.add_service(ServiceSpec::new("shared", 2));
        let a = topo.add_api(
            ApiSpec::single("vip", CallNode::leaf(s, SimDuration::from_millis(10)))
                .business(cluster::types::BusinessPriority(0)),
        );
        let b = topo.add_api(
            ApiSpec::single("batch", CallNode::leaf(s, SimDuration::from_millis(10)))
                .business(cluster::types::BusinessPriority(5)),
        );
        let w = OpenLoopWorkload::constant(vec![(a, 400.0), (b, 400.0)]);
        let engine = Engine::new(
            topo,
            EngineConfig {
                seed: 6,
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        let tf = TopFull::new(TopFullConfig::default().with_mimd());
        let mut h = Harness::new(engine, Box::new(tf));
        h.run_until(SimTime::from_secs(240));
        let ga = h.result().mean_goodput_api(a, 150.0, 240.0);
        let gb = h.result().mean_goodput_api(b, 150.0, 240.0);
        assert!(
            ga > 2.0 * gb,
            "priority must dominate the split: vip={ga} batch={gb}"
        );
    }
}

#[cfg(test)]
mod refinement_flag_tests {
    use super::*;
    use cluster::{ApiSpec, CallNode, Engine, EngineConfig, Harness, OpenLoopWorkload};
    use cluster::{ServiceSpec, Topology};
    use simnet::SimDuration;

    /// Two independent bottlenecks inside one cluster (linked by a
    /// spanning API): single-target mode must act on only one per tick.
    fn two_bottleneck_engine(seed: u64) -> Engine {
        let mut topo = Topology::new("two-bn");
        let a = topo.add_service(ServiceSpec::new("a", 1));
        let b = topo.add_service(ServiceSpec::new("b", 1));
        let api_a = topo.add_api(ApiSpec::single(
            "on-a",
            CallNode::leaf(a, SimDuration::from_millis(10)),
        ));
        let api_b = topo.add_api(ApiSpec::single(
            "on-b",
            CallNode::leaf(b, SimDuration::from_millis(10)),
        ));
        // A spanning API links the two bottlenecks into one cluster.
        let spanning = topo.add_api(ApiSpec::single(
            "span",
            CallNode::with_children(
                a,
                SimDuration::from_millis(1),
                vec![CallNode::leaf(b, SimDuration::from_millis(1))],
            ),
        ));
        let w = OpenLoopWorkload::constant(vec![(api_a, 400.0), (api_b, 400.0), (spanning, 50.0)]);
        Engine::new(
            topo,
            EngineConfig {
                seed,
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        )
    }

    fn run_with(cfg: TopFullConfig, seed: u64) -> f64 {
        let mut h = Harness::new(two_bottleneck_engine(seed), Box::new(TopFull::new(cfg)));
        h.run_for_secs(120);
        h.result().mean_total_goodput(60.0, 120.0)
    }

    #[test]
    fn multi_target_beats_single_target_on_linked_bottlenecks() {
        let multi = run_with(TopFullConfig::default().with_mimd(), 41);
        let single = run_with(
            TopFullConfig {
                single_target_per_cluster: true,
                ..TopFullConfig::default()
            }
            .with_mimd(),
            41,
        );
        assert!(
            multi >= single,
            "acting on every bottleneck per interval must not lose: \
             multi={multi} single={single}"
        );
    }

    #[test]
    fn verbatim_algorithm1_can_cut_idle_apis() {
        // Overloaded service 0; an idle low-priority API shares its path.
        let mk_obs = || {
            use cluster::observe::{ApiWindow, ServiceWindow};
            use cluster::types::BusinessPriority;
            use simnet::SimTime;
            ClusterObservation {
                now: SimTime::from_secs(1),
                window: SimDuration::from_secs(1),
                services: vec![ServiceWindow {
                    service: ServiceId(0),
                    name: "s0".into(),
                    utilization: 0.95,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 50,
                    mean_queuing_delay: SimDuration::from_millis(100),
                    started_calls: 100,
                    dropped_calls: 0,
                }],
                apis: vec![
                    ApiWindow {
                        api: ApiId(0),
                        name: "busy".into(),
                        business: BusinessPriority(0),
                        offered: 300.0,
                        admitted: 300.0,
                        goodput: 80.0,
                        slo_violated: 100.0,
                        failed: 0.0,
                        p50: Some(SimDuration::from_millis(1500)),
                        p95: Some(SimDuration::from_millis(2000)),
                        p99: Some(SimDuration::from_millis(2000)),
                        rate_limit: f64::INFINITY,
                    },
                    ApiWindow {
                        api: ApiId(1),
                        name: "idle".into(),
                        business: BusinessPriority(5),
                        offered: 0.0,
                        admitted: 0.0,
                        goodput: 0.0,
                        slo_violated: 0.0,
                        failed: 0.0,
                        p50: None,
                        p95: None,
                        p99: None,
                        rate_limit: f64::INFINITY,
                    },
                ],
                api_paths: vec![vec![ServiceId(0)], vec![ServiceId(0)]],
                slo: SimDuration::from_secs(1),
                resilience: Default::default(),
                slo_burn: Vec::new(),
            }
        };
        // Refined behaviour: the busy API is cut.
        let mut refined = TopFull::new(TopFullConfig::default());
        let ups = refined.control(&mk_obs());
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].api, ApiId(0), "refined controller cuts the load");
        // Verbatim Algorithm 1: the idle lowest-priority API is cut
        // (uselessly) instead.
        let mut verbatim = TopFull::new(TopFullConfig {
            restrict_cuts_to_contributing: false,
            ..TopFullConfig::default()
        });
        let ups = verbatim.control(&mk_obs());
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].api, ApiId(1), "verbatim targets the idle API");
    }

    #[test]
    fn unfair_group_steps_preserve_the_skew() {
        // Directly exercise apply_group_action on a skewed pair.
        use cluster::observe::{ApiWindow, ServiceWindow};
        use cluster::types::BusinessPriority;
        use simnet::SimTime;
        let obs = ClusterObservation {
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            services: vec![ServiceWindow {
                service: ServiceId(0),
                name: "s0".into(),
                utilization: 0.5,
                alive_pods: 1,
                desired_pods: 1,
                queue_len: 0,
                mean_queuing_delay: SimDuration::ZERO,
                started_calls: 0,
                dropped_calls: 0,
            }],
            apis: (0..2)
                .map(|i| ApiWindow {
                    api: ApiId(i),
                    name: format!("a{i}"),
                    business: BusinessPriority(0),
                    offered: 100.0,
                    admitted: 100.0,
                    goodput: 100.0,
                    slo_violated: 0.0,
                    failed: 0.0,
                    p50: None,
                    p95: None,
                    p99: None,
                    rate_limit: f64::INFINITY,
                })
                .collect(),
            api_paths: vec![vec![ServiceId(0)], vec![ServiceId(0)]],
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        };
        let raise = |fair: bool| {
            let mut tf = TopFull::new(TopFullConfig {
                fair_group_steps: fair,
                ..TopFullConfig::default()
            });
            tf.limits = vec![300.0, 100.0]; // 3:1 skew
            tf.headroom_ticks = vec![0, 0];
            let mut ups = Vec::new();
            tf.apply_group_action(&obs, &[ApiId(0), ApiId(1)], 0.2, &mut ups);
            (tf.limits[0], tf.limits[1])
        };
        let (fa, fb) = raise(true);
        let (ua, ub) = raise(false);
        // Fair: equal absolute gains shrink the relative skew.
        assert!(fa / fb < 3.0, "fair steps reduce the ratio: {fa}/{fb}");
        // Unfair: multiplicative raise keeps the 3:1 ratio exactly.
        assert!((ua / ub - 3.0).abs() < 1e-9, "unfair keeps 3:1: {ua}/{ub}");
    }
}
