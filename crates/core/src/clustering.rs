//! API clustering for parallel load control (§4.2).
//!
//! Equation 2: APIs *i* and *j* belong to the same cluster iff some
//! overloaded microservice lies on both of their execution paths; the
//! relation is closed transitively ("even if API 1 and API 3 do not
//! directly share any overloaded microservices, they are clustered
//! together if there exists API 2 that shares overloaded microservices
//! with both"). Branching APIs already contribute *every* possible path
//! to `api_paths` (the engine exports the union), so they are handled as
//! "an API that is involved in every microservice in its possible
//! execution paths".
//!
//! Clustering runs from scratch each control interval — re-clustering is
//! how the controller tracks the changing overloaded set (§4.2
//! "Re-clustering dynamically").

use cluster::types::{ApiId, ServiceId};

/// One independent sub-problem: APIs tied together by shared overloaded
/// microservices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Member APIs, ascending.
    pub apis: Vec<ApiId>,
    /// Overloaded services on the members' paths, ascending.
    pub overloaded: Vec<ServiceId>,
}

/// Union–find with path compression.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

/// Cluster APIs over the currently overloaded services.
///
/// * `api_paths[i]` — every service on any possible path of API `i`.
/// * `overloaded` — services currently past the overload threshold.
///
/// Returns clusters ordered by their smallest member API; APIs whose
/// paths contain no overloaded service appear in no cluster.
pub fn cluster_apis(api_paths: &[Vec<ServiceId>], overloaded: &[ServiceId]) -> Vec<Cluster> {
    if overloaded.is_empty() {
        return Vec::new();
    }
    let over: std::collections::HashSet<ServiceId> = overloaded.iter().copied().collect();
    // APIs participating in the overload problem.
    let involved: Vec<usize> = api_paths
        .iter()
        .enumerate()
        .filter(|(_, path)| path.iter().any(|s| over.contains(s)))
        .map(|(i, _)| i)
        .collect();
    if involved.is_empty() {
        return Vec::new();
    }
    // Union APIs through each overloaded service they share.
    let mut dsu = Dsu::new(involved.len());
    let mut first_user: std::collections::HashMap<ServiceId, usize> =
        std::collections::HashMap::new();
    for (k, &api) in involved.iter().enumerate() {
        for s in &api_paths[api] {
            if !over.contains(s) {
                continue;
            }
            match first_user.entry(*s) {
                std::collections::hash_map::Entry::Occupied(e) => dsu.union(*e.get(), k),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(k);
                }
            }
        }
    }
    // Materialize clusters.
    let mut by_root: std::collections::BTreeMap<usize, Cluster> = std::collections::BTreeMap::new();
    for (k, &api) in involved.iter().enumerate() {
        let root = dsu.find(k);
        let c = by_root.entry(root).or_insert_with(|| Cluster {
            apis: Vec::new(),
            overloaded: Vec::new(),
        });
        c.apis.push(ApiId(api as u32));
        for s in &api_paths[api] {
            if over.contains(s) && !c.overloaded.contains(s) {
                c.overloaded.push(*s);
            }
        }
    }
    let mut out: Vec<Cluster> = by_root.into_values().collect();
    for c in out.iter_mut() {
        c.apis.sort();
        c.apis.dedup();
        c.overloaded.sort();
    }
    out.sort_by_key(|c| c.apis[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(xs: &[u32]) -> Vec<ServiceId> {
        xs.iter().map(|x| ServiceId(*x)).collect()
    }

    #[test]
    fn no_overload_no_clusters() {
        let paths = vec![sid(&[0, 1]), sid(&[1, 2])];
        assert!(cluster_apis(&paths, &[]).is_empty());
    }

    #[test]
    fn uninvolved_apis_are_excluded() {
        let paths = vec![sid(&[0, 1]), sid(&[2, 3])];
        let clusters = cluster_apis(&paths, &sid(&[0]));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].apis, vec![ApiId(0)]);
        assert_eq!(clusters[0].overloaded, sid(&[0]));
    }

    #[test]
    fn apis_sharing_an_overloaded_service_cluster_together() {
        // Figure 1: API0 → {A, B}, API1 → {A}; A overloaded.
        let paths = vec![sid(&[0, 1]), sid(&[0])];
        let clusters = cluster_apis(&paths, &sid(&[0]));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].apis, vec![ApiId(0), ApiId(1)]);
    }

    #[test]
    fn transitive_closure_merges_via_middle_api() {
        // The paper's example: API0–API1 share overloaded s0, API1–API2
        // share overloaded s1, so all three form one cluster although
        // API0 and API2 share nothing directly.
        let paths = vec![sid(&[0]), sid(&[0, 1]), sid(&[1])];
        let clusters = cluster_apis(&paths, &sid(&[0, 1]));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].apis, vec![ApiId(0), ApiId(1), ApiId(2)]);
        assert_eq!(clusters[0].overloaded, sid(&[0, 1]));
    }

    #[test]
    fn independent_overloads_form_separate_clusters() {
        let paths = vec![sid(&[0, 9]), sid(&[1, 9]), sid(&[2])];
        let clusters = cluster_apis(&paths, &sid(&[0, 1, 2]));
        // Service 9 is NOT overloaded, so APIs 0 and 1 stay apart.
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].apis, vec![ApiId(0)]);
        assert_eq!(clusters[1].apis, vec![ApiId(1)]);
        assert_eq!(clusters[2].apis, vec![ApiId(2)]);
    }

    #[test]
    fn cluster_inter_independence_invariant() {
        // Property: no overloaded service appears in two clusters.
        let paths = vec![
            sid(&[0, 1, 2]),
            sid(&[2, 3]),
            sid(&[4, 5]),
            sid(&[5, 6]),
            sid(&[7]),
        ];
        let overloaded = sid(&[2, 5, 7]);
        let clusters = cluster_apis(&paths, &overloaded);
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            for s in &c.overloaded {
                assert!(seen.insert(*s), "{s} appears in two clusters");
            }
        }
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn deterministic_ordering() {
        let paths = vec![sid(&[3]), sid(&[2]), sid(&[1])];
        let clusters = cluster_apis(&paths, &sid(&[1, 2, 3]));
        let firsts: Vec<ApiId> = clusters.iter().map(|c| c.apis[0]).collect();
        assert_eq!(firsts, vec![ApiId(0), ApiId(1), ApiId(2)]);
    }

    #[test]
    fn branching_api_unions_through_any_branch() {
        // API0's path union covers both branches {0,1} and {0,2};
        // overload on 2 clusters it with API1 even though branch 1
        // alone wouldn't.
        let paths = vec![sid(&[0, 1, 2]), sid(&[2, 5])];
        let clusters = cluster_apis(&paths, &sid(&[2]));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].apis, vec![ApiId(0), ApiId(1)]);
    }
}
