//! Virtual time for discrete-event simulation.
//!
//! [`SimTime`] is an absolute instant measured in nanoseconds since the
//! simulation epoch; [`SimDuration`] is a span between instants. Both are
//! thin `u64` newtypes: cheap to copy, totally ordered, and immune to the
//! wall clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An absolute instant on the simulation clock (nanoseconds since epoch).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds since epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds since epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Raw nanoseconds since epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for metrics and plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, saturating at zero for negative
    /// or non-finite inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, saturating at the representable range.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * NANOS_PER_MILLI);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500 * NANOS_PER_MILLI);
        assert_eq!(
            (t - SimTime::from_secs(1)).as_millis_f64() as u64,
            500,
            "instant difference is a duration"
        );
        // Saturating: subtracting a later instant gives zero, not underflow.
        assert_eq!(
            SimTime::from_secs(1).duration_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.25).as_nanos(),
            NANOS_PER_SEC / 4
        );
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis_f64() as u64, 30);
        assert_eq!((d / 2).as_millis_f64() as u64, 5);
        assert_eq!(d.mul_f64(2.5).as_millis_f64().round() as u64, 25);
    }
}
