//! Token-bucket rate limiter.
//!
//! TopFull enforces per-API rate limits at the entry gateway with a token
//! bucket (§5: "For load control, we use a rate limiter based on a token
//! bucket algorithm"). Tokens accrue continuously at `rate` per second up
//! to `burst`; admitting a request costs one token. The bucket is driven
//! by the virtual clock — callers pass `now` — so it composes with the
//! deterministic event queue.

use crate::time::{SimTime, NANOS_PER_SEC};
use serde::{Deserialize, Serialize};

/// A continuously-refilled token bucket over virtual time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TokenBucket {
    /// Refill rate in tokens (requests) per second.
    rate: f64,
    /// Maximum number of stored tokens.
    burst: f64,
    /// Tokens available as of `updated`.
    tokens: f64,
    updated: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/s with capacity `burst`,
    /// starting full at time `now`.
    ///
    /// Both `rate` and `burst` are clamped to be non-negative. A zero
    /// `burst` admits nothing ever — that is how a gateway expresses a
    /// true "admit zero" limit — so callers wanting a bucket that can
    /// always eventually admit must pass `burst ≥ 1` themselves.
    pub fn new(rate: f64, burst: f64, now: SimTime) -> Self {
        let rate = rate.max(0.0);
        let burst = burst.max(0.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            updated: now,
        }
    }

    /// Current refill rate (tokens per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Bucket capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Change the refill rate, first crediting tokens accrued at the old
    /// rate. Stored tokens above the (unchanged) burst cap are kept capped.
    pub fn set_rate(&mut self, rate: f64, now: SimTime) {
        self.refill(now);
        self.rate = rate.max(0.0);
    }

    /// Change both rate and burst (non-negative, like [`TokenBucket::new`]).
    pub fn set_rate_and_burst(&mut self, rate: f64, burst: f64, now: SimTime) {
        self.refill(now);
        self.rate = rate.max(0.0);
        self.burst = burst.max(0.0);
        self.tokens = self.tokens.min(self.burst);
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.updated {
            let dt = now.duration_since(self.updated).as_nanos() as f64 / NANOS_PER_SEC as f64;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.updated = now;
        }
    }

    /// Tokens available at `now` (refills as a side effect).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Try to admit one request at `now`: consumes a token and returns
    /// `true`, or returns `false` leaving the bucket unchanged.
    pub fn try_admit(&mut self, now: SimTime) -> bool {
        self.try_admit_n(now, 1.0)
    }

    /// Try to admit a request costing `n ≥ 0` tokens.
    pub fn try_admit_n(&mut self, now: SimTime, n: f64) -> bool {
        debug_assert!(n >= 0.0, "token cost must be non-negative");
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn starts_full_and_admits_burst() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(10.0, 5.0, t0);
        for i in 0..5 {
            assert!(b.try_admit(t0), "burst admit {i}");
        }
        assert!(!b.try_admit(t0), "burst exhausted");
    }

    #[test]
    fn refills_at_rate() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(10.0, 5.0, t0);
        while b.try_admit(t0) {}
        // After 0.3 s at 10 tok/s → 3 tokens.
        let t1 = t0 + SimDuration::from_millis(300);
        assert!((b.available(t1) - 3.0).abs() < 1e-9);
        assert!(b.try_admit(t1) && b.try_admit(t1) && b.try_admit(t1));
        assert!(!b.try_admit(t1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(1000.0, 4.0, t0);
        let later = t0 + SimDuration::from_secs(60);
        assert!((b.available(later) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_admission_matches_rate() {
        // Offered 1 req/ms for 10 s against a 100 rps bucket → ~1000 admits.
        let mut b = TokenBucket::new(100.0, 10.0, SimTime::ZERO);
        let mut admitted = 0u32;
        for ms in 0..10_000u64 {
            if b.try_admit(SimTime::from_millis(ms)) {
                admitted += 1;
            }
        }
        let expected = 100.0 * 10.0 + 10.0; // rate × time + initial burst
        assert!(
            (f64::from(admitted) - expected).abs() <= 1.0,
            "admitted {admitted}, expected ≈{expected}"
        );
    }

    #[test]
    fn set_rate_credits_elapsed_time_first() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(10.0, 20.0, t0);
        while b.try_admit(t0) {}
        let t1 = t0 + SimDuration::from_secs(1); // earns 10 at old rate
        b.set_rate(0.0, t1);
        assert!(
            (b.available(t1) - 10.0).abs() < 1e-9,
            "old-rate tokens kept"
        );
        let t2 = t1 + SimDuration::from_secs(5);
        assert!(
            (b.available(t2) - 10.0).abs() < 1e-9,
            "zero rate earns none"
        );
    }

    #[test]
    fn zero_rate_bucket_only_serves_initial_burst() {
        let mut b = TokenBucket::new(0.0, 2.0, SimTime::ZERO);
        assert!(b.try_admit(SimTime::from_secs(1)));
        assert!(b.try_admit(SimTime::from_secs(2)));
        assert!(!b.try_admit(SimTime::from_secs(100)));
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let mut b = TokenBucket::new(-5.0, -3.0, SimTime::ZERO);
        assert_eq!(b.rate(), 0.0);
        assert_eq!(b.burst(), 0.0);
        assert!(
            !b.try_admit(SimTime::ZERO),
            "zero-depth bucket admits nothing"
        );
        assert!(!b.try_admit(SimTime::from_secs(10)));
    }

    #[test]
    fn zero_burst_admits_nothing_even_with_positive_rate() {
        let mut b = TokenBucket::new(100.0, 0.0, SimTime::ZERO);
        assert!(!b.try_admit(SimTime::ZERO));
        // Refill is capped at the zero depth: still nothing later.
        assert!(!b.try_admit(SimTime::from_secs(100)));
        assert_eq!(b.available(SimTime::from_secs(200)), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conservation: admits over any horizon never exceed
        /// initial burst + rate × elapsed (within one token).
        #[test]
        fn admits_never_exceed_refill(
            rate in 1.0f64..2_000.0,
            burst in 1.0f64..100.0,
            offers in prop::collection::vec(0u64..10_000_000u64, 1..300),
        ) {
            let mut b = TokenBucket::new(rate, burst, SimTime::ZERO);
            let mut times: Vec<u64> = offers;
            times.sort_unstable();
            let mut admitted = 0u64;
            for &t in &times {
                if b.try_admit(SimTime::from_nanos(t)) {
                    admitted += 1;
                }
            }
            let elapsed = *times.last().unwrap() as f64 / 1e9;
            let bound = burst + rate * elapsed + 1.0;
            prop_assert!(
                (admitted as f64) <= bound,
                "admitted {} > bound {}", admitted, bound
            );
        }

        /// Tokens never go negative and never exceed burst (depth), for
        /// any depth including zero.
        #[test]
        fn tokens_stay_in_range(
            rate in 0.0f64..1_000.0,
            burst in 0.0f64..50.0,
            steps in prop::collection::vec((0u64..5_000_000u64, any::<bool>()), 1..200),
        ) {
            let mut b = TokenBucket::new(rate, burst, SimTime::ZERO);
            let mut now = 0u64;
            for (dt, do_admit) in steps {
                now += dt;
                let t = SimTime::from_nanos(now);
                if do_admit {
                    let _ = b.try_admit(t);
                }
                let avail = b.available(t);
                prop_assert!(avail >= -1e-9, "negative tokens: {avail}");
                prop_assert!(avail <= burst + 1e-9, "over burst: {avail}");
            }
        }

        /// Refill is monotone in elapsed time: observing the bucket at a
        /// sorted sequence of times (no admits in between) never shows
        /// the available tokens decreasing.
        #[test]
        fn refill_monotone_in_elapsed_time(
            rate in 0.0f64..1_000.0,
            burst in 0.0f64..50.0,
            drain in 0u32..60,
            times in prop::collection::vec(0u64..10_000_000_000u64, 2..100),
        ) {
            let mut b = TokenBucket::new(rate, burst, SimTime::ZERO);
            // Start from an arbitrary partial fill.
            for _ in 0..drain {
                let _ = b.try_admit(SimTime::ZERO);
            }
            let mut sorted = times;
            sorted.sort_unstable();
            let mut prev = b.available(SimTime::ZERO);
            for &t in &sorted {
                let avail = b.available(SimTime::from_nanos(t));
                prop_assert!(
                    avail >= prev - 1e-9,
                    "tokens decreased without an admit: {prev} -> {avail}"
                );
                prev = avail;
            }
        }
    }
}
