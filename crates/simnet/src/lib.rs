//! # simnet — discrete-event simulation substrate
//!
//! Deterministic building blocks for simulating networked systems:
//!
//! * [`time`] — a virtual clock ([`SimTime`], [`SimDuration`]) with
//!   nanosecond resolution.
//! * [`event`] — a binary-heap [`event::EventQueue`] with stable FIFO
//!   tie-breaking, so simulations are reproducible given a seed.
//! * [`histogram`] — log-bucketed latency histograms with bounded relative
//!   quantile error, used for end-to-end percentile latencies.
//! * [`token_bucket`] — the token-bucket rate limiter used by the entry
//!   gateway (the paper's rate limiter is a Go token bucket; §5).
//! * [`window`] — per-interval counters and rate meters for goodput
//!   accounting.
//! * [`rng`] — seeded RNG forking so every component draws from an
//!   independent, reproducible stream.
//! * [`stats`] — small numeric helpers (means, percentiles of samples).
//!
//! Everything here is pure computation over a virtual clock: no wall-clock
//! time, no threads, no I/O. Simulations built on `simnet` are functions of
//! their seed.

pub mod event;
pub mod histogram;
pub mod rng;
pub mod stats;
pub mod time;
pub mod token_bucket;
pub mod window;

pub use event::EventQueue;
pub use histogram::LatencyHistogram;
pub use time::{SimDuration, SimTime};
pub use token_bucket::TokenBucket;
pub use window::RateMeter;
