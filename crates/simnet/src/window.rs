//! Per-interval counters for rate accounting.
//!
//! The control plane observes the cluster once per second (§5). These
//! helpers turn discrete events ("a good response completed") into
//! per-window rates ("goodput this second"), and keep a short history for
//! smoothing.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counts events in fixed, consecutive windows of virtual time and reports
/// per-window rates.
///
/// `record(now)` adds an event; `rate(now)` returns events/second over the
/// most recently *completed* window (the in-progress window is excluded so
/// rates do not flap mid-window).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateMeter {
    window: SimDuration,
    /// Index of the window currently being filled.
    current_index: u64,
    current_count: u64,
    /// (window index, count) of recently completed windows, oldest first.
    history: VecDeque<(u64, u64)>,
    history_len: usize,
}

impl RateMeter {
    /// A meter with the given window size, keeping `history_len` completed
    /// windows (at least 1).
    pub fn new(window: SimDuration, history_len: usize) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        RateMeter {
            window,
            current_index: 0,
            current_count: 0,
            history: VecDeque::new(),
            history_len: history_len.max(1),
        }
    }

    fn index_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.window.as_nanos()
    }

    /// Roll the current window forward to contain `now`, completing (and
    /// archiving) any windows that have fully elapsed.
    fn roll(&mut self, now: SimTime) {
        let idx = self.index_of(now);
        while self.current_index < idx {
            self.history
                .push_back((self.current_index, self.current_count));
            while self.history.len() > self.history_len {
                self.history.pop_front();
            }
            self.current_index += 1;
            self.current_count = 0;
        }
    }

    /// Record one event at time `now`.
    pub fn record(&mut self, now: SimTime) {
        self.record_n(now, 1);
    }

    /// Record `n` events at time `now`.
    pub fn record_n(&mut self, now: SimTime, n: u64) {
        self.roll(now);
        self.current_count += n;
    }

    /// Events/second over the last completed window before `now`; 0 if that
    /// window saw no events (or none has completed yet).
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.roll(now);
        let want = self.current_index.wrapping_sub(1);
        let count = self
            .history
            .iter()
            .rev()
            .find(|(i, _)| *i == want)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        count as f64 / self.window.as_secs_f64()
    }

    /// Mean events/second over up to the last `n` completed windows.
    pub fn mean_rate(&mut self, now: SimTime, n: usize) -> f64 {
        self.roll(now);
        if n == 0 {
            return 0.0;
        }
        // Only count windows that actually elapsed (index < current).
        let first = self.current_index.saturating_sub(n as u64);
        let elapsed = (self.current_index - first) as f64;
        if elapsed == 0.0 {
            return 0.0;
        }
        let total: u64 = self
            .history
            .iter()
            .filter(|(i, _)| *i >= first)
            .map(|(_, c)| *c)
            .sum();
        total as f64 / (elapsed * self.window.as_secs_f64())
    }

    /// Raw count in the window currently being filled.
    pub fn in_progress_count(&self) -> u64 {
        self.current_count
    }

    /// The configured window size.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn rate_reports_last_completed_window() {
        let mut m = RateMeter::new(SimDuration::from_secs(1), 8);
        for _ in 0..50 {
            m.record(SimTime::from_millis(100));
        }
        // Window 0 not yet complete.
        assert_eq!(m.rate(SimTime::from_millis(900)), 0.0);
        // After t=1s window 0 completes with 50 events → 50 rps.
        assert_eq!(m.rate(sec(1)), 50.0);
        // Window 1 empty → at t=2s the rate drops to 0.
        assert_eq!(m.rate(sec(2)), 0.0);
    }

    #[test]
    fn mean_rate_smooths_over_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1), 8);
        m.record_n(SimTime::from_millis(500), 10); // window 0
        m.record_n(SimTime::from_millis(1500), 30); // window 1
        let mean = m.mean_rate(sec(2), 2);
        assert!(
            (mean - 20.0).abs() < 1e-9,
            "mean of 10 and 30 rps, got {mean}"
        );
    }

    #[test]
    fn mean_rate_counts_empty_elapsed_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1), 8);
        m.record_n(SimTime::from_millis(500), 40);
        // Windows 0..4 elapsed by t=4; three were empty.
        let mean = m.mean_rate(sec(4), 4);
        assert!((mean - 10.0).abs() < 1e-9, "40 events over 4 s, got {mean}");
    }

    #[test]
    fn history_is_bounded() {
        let mut m = RateMeter::new(SimDuration::from_secs(1), 3);
        for s in 0..100u64 {
            m.record_n(sec(s), 1);
        }
        assert!(m.history.len() <= 3);
    }

    #[test]
    fn sub_second_windows_scale_rates() {
        let mut m = RateMeter::new(SimDuration::from_millis(100), 4);
        m.record_n(SimTime::from_millis(50), 5);
        // 5 events in a 0.1 s window → 50 events/s.
        assert_eq!(m.rate(SimTime::from_millis(150)), 50.0);
    }
}
