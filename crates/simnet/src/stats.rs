//! Small numeric helpers over sample slices.
//!
//! The experiment harness reports means, percentiles and simple summaries
//! of per-second series (goodput timelines, latency series). These are
//! exact computations over in-memory samples, unlike the streaming
//! [`crate::histogram::LatencyHistogram`].

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Exact `q`-quantile (nearest-rank) of the samples; `None` when empty.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Some(v[rank - 1])
}

/// Minimum; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Summary of a sample series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p50: f64,
    pub p95: f64,
    pub max: f64,
}

/// Compute a [`Summary`]; `None` when empty.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    Some(Summary {
        count: xs.len(),
        mean: mean(xs),
        std_dev: std_dev(xs),
        min: min(xs).unwrap(),
        p50: quantile(xs, 0.5).unwrap(),
        p95: quantile(xs, 0.95).unwrap(),
        max: max(xs).unwrap(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert!(quantile(&[], 0.5).is_none());
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&xs, 0.5), Some(50.0));
        assert_eq!(quantile(&xs, 0.95), Some(95.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(100.0));
    }

    #[test]
    fn quantile_does_not_mutate_input_order() {
        let xs = [3.0, 1.0, 2.0];
        let _ = quantile(&xs, 0.5);
        assert_eq!(xs, [3.0, 1.0, 2.0]);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = summarize(&xs).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
    }
}
