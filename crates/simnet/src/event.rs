//! Deterministic event queue for discrete-event simulation.
//!
//! A simulation is a loop that pops the earliest scheduled event, advances
//! the virtual clock to its timestamp, and handles it (possibly scheduling
//! more events). [`EventQueue`] guarantees *stable* ordering: events with
//! equal timestamps pop in the order they were pushed, so a simulation is a
//! pure function of its inputs and seed — no heap-order nondeterminism.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a time, ordered for a min-heap with FIFO
/// tie-breaking.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-pushed) event is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with a built-in clock.
///
/// The queue tracks `now`, the timestamp of the most recently popped event.
/// Scheduling an event in the past is a logic error and panics in debug
/// builds; in release builds the event is clamped to `now` to keep the
/// clock monotonic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (simulation progress counter).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// `at` must not precede the current clock; see the type-level docs.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "clock went backwards");
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Pop the earliest event only if it fires at or before `limit`.
    ///
    /// Returns `None` (leaving the event queued and the clock untouched)
    /// when the next event is beyond the limit. This is the primitive for
    /// running a simulation up to a horizon.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_secs(10), "late");
        assert_eq!(q.pop_until(SimTime::from_secs(5)).unwrap().1, "early");
        assert!(q.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(q.len(), 1, "late event still queued");
        assert_eq!(q.now(), SimTime::from_secs(1), "clock stays at last pop");
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two runs with the same operations produce identical sequences.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_millis(10), 0u32);
            q.schedule(SimTime::from_millis(10), 1);
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if e < 4 {
                    q.schedule(t + SimDuration::from_millis(1), e + 2);
                    q.schedule(t + SimDuration::from_millis(1), e + 100);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }
}
