//! Seeded RNG forking.
//!
//! Every stochastic component in the simulator owns an RNG forked from a
//! root seed via a distinct label, so (a) a run is a pure function of its
//! seed and (b) adding draws in one component never perturbs another —
//! experiments stay comparable across code changes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a child seed from `root` and a label using the SplitMix64
/// finalizer (good avalanche, stable across platforms).
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = root ^ 0x9E37_79B9_7F4A_7C15;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = splitmix64(h);
    }
    splitmix64(h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fork an independent RNG stream for the component named `label`.
pub fn fork(root: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(root, label))
}

/// Fork an independent RNG stream for the `i`-th instance of a component.
pub fn fork_indexed(root: u64, label: &str, i: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(derive_seed(root, label) ^ i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let a: Vec<u32> = fork(7, "svc")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = fork(7, "svc")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let a: u64 = fork(7, "svc-a").gen();
        let b: u64 = fork(7, "svc-b").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_roots_different_streams() {
        let a: u64 = fork(1, "svc").gen();
        let b: u64 = fork(2, "svc").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_forks_are_distinct() {
        let a: u64 = fork_indexed(7, "pod", 0).gen();
        let b: u64 = fork_indexed(7, "pod", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_avalanches() {
        // Not a statistical test, just a sanity check that adjacent labels
        // don't produce adjacent seeds.
        let s1 = derive_seed(0, "a");
        let s2 = derive_seed(0, "b");
        assert!(s1.abs_diff(s2) > 1 << 32);
    }
}
