//! Log-bucketed latency histogram with bounded relative error.
//!
//! End-to-end percentile latency is one of the two state features of the
//! paper's RL rate controller (§4.3), and latency SLO accounting decides
//! what counts as *goodput*. Recording must be O(1) and quantile queries
//! cheap at a 1-second control cadence, so we use geometric buckets: each
//! bucket spans a fixed ratio, giving a configurable worst-case relative
//! error (default 5%) independent of the latency range.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Smallest latency tracked exactly; anything below lands in bucket 0.
const MIN_TRACKED_NANOS: f64 = 1_000.0; // 1 µs

/// A histogram of durations with geometrically sized buckets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `counts[i]` covers `[min * growth^i, min * growth^(i+1))`.
    counts: Vec<u64>,
    total: u64,
    /// Natural log of the per-bucket growth ratio.
    ln_growth: f64,
    max_seen: SimDuration,
    min_seen: SimDuration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Histogram with the default 5% relative-error buckets.
    pub fn new() -> Self {
        Self::with_relative_error(0.05)
    }

    /// Histogram whose quantile estimates have at most `err` relative
    /// error (`0 < err < 1`).
    pub fn with_relative_error(err: f64) -> Self {
        assert!(err > 0.0 && err < 1.0, "relative error must be in (0, 1)");
        let growth = 1.0 + 2.0 * err; // midpoint estimate halves the span
        LatencyHistogram {
            counts: Vec::new(),
            total: 0,
            ln_growth: growth.ln(),
            max_seen: SimDuration::ZERO,
            min_seen: SimDuration::from_nanos(u64::MAX),
        }
    }

    fn bucket_of(&self, d: SimDuration) -> usize {
        let ns = d.as_nanos() as f64;
        if ns <= MIN_TRACKED_NANOS {
            return 0;
        }
        ((ns / MIN_TRACKED_NANOS).ln() / self.ln_growth).floor() as usize
    }

    /// Lower edge of bucket `i` in nanoseconds.
    fn bucket_floor(&self, i: usize) -> f64 {
        MIN_TRACKED_NANOS * (self.ln_growth * i as f64).exp()
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        let b = self.bucket_of(d);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.max_seen = self.max_seen.max(d);
        self.min_seen = self.min_seen.min(d);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<SimDuration> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<SimDuration> {
        (self.total > 0).then_some(self.min_seen)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with the histogram's relative error,
    /// or `None` when empty. `quantile(0.99)` is the p99 latency.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Midpoint of the bucket (geometric mean of its edges),
                // clamped to actually-observed extremes.
                let lo = self.bucket_floor(i);
                let hi = self.bucket_floor(i + 1);
                let est = (lo * hi).sqrt();
                let est = SimDuration::from_nanos(est as u64);
                return Some(est.clamp(self.min_seen, self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// Fraction of samples at or below `limit` (0 when empty).
    ///
    /// Used for "how many responses met the SLO" style queries; resolution
    /// is one bucket.
    pub fn fraction_below(&self, limit: SimDuration) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = self.bucket_of(limit);
        let below: u64 = self.counts.iter().take(b + 1).sum();
        below as f64 / self.total as f64
    }

    /// Merge another histogram into this one. Both must have been created
    /// with the same relative error.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(
            (self.ln_growth - other.ln_growth).abs() < 1e-12,
            "merging histograms with different bucket growth"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_seen = self.max_seen.max(other.max_seen);
        self.min_seen = self.min_seen.min(other.min_seen);
    }

    /// Iterate occupied buckets as `(upper_edge_nanos, count)` pairs.
    ///
    /// Empty buckets are skipped; the upper edge is the exclusive bound
    /// of the bucket, so cumulative sums over the returned pairs yield a
    /// valid `le`-style (Prometheus) bucket series.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_floor(i + 1), c))
    }

    /// Forget all samples, keeping the bucket configuration.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.max_seen = SimDuration::ZERO;
        self.min_seen = SimDuration::from_nanos(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert!(h.quantile(0.5).is_none());
        assert!(h.max().is_none());
        assert_eq!(h.count(), 0);
        assert_eq!(h.fraction_below(SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        let d = SimDuration::from_millis(42);
        h.record(d);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(d), "q={q}");
        }
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::with_relative_error(0.05);
        // 1..=1000 ms uniform.
        for ms in 1..=1000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        for (q, want_ms) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q).unwrap().as_millis_f64();
            let rel = (got - want_ms).abs() / want_ms;
            assert!(rel < 0.06, "q={q}: got {got}ms want {want_ms}ms rel={rel}");
        }
    }

    #[test]
    fn fraction_below_tracks_slo() {
        let mut h = LatencyHistogram::new();
        for ms in [100u64, 200, 300, 1500, 2000] {
            h.record(SimDuration::from_millis(ms));
        }
        let f = h.fraction_below(SimDuration::from_secs(1));
        assert!((f - 0.6).abs() < 0.01, "3 of 5 under the 1s SLO, got {f}");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(10));
        b.record(SimDuration::from_millis(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(SimDuration::from_millis(1000)));
        assert_eq!(a.min(), Some(SimDuration::from_millis(10)));
    }

    #[test]
    fn reset_clears_samples() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(5));
        h.reset();
        assert!(h.is_empty());
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn buckets_enumerate_occupied_ranges() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(1));
        h.record(SimDuration::from_millis(1));
        h.record(SimDuration::from_millis(100));
        let bs: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(bs.len(), 2, "two occupied buckets");
        assert_eq!(bs.iter().map(|(_, c)| c).sum::<u64>(), 3);
        assert!(bs.windows(2).all(|w| w[0].0 < w[1].0), "edges ascend");
        // The first bucket's upper edge bounds the 1ms samples with the
        // histogram's relative error.
        assert!(bs[0].0 >= 0.9e6 && bs[0].0 <= 1.2e6, "edge {}", bs[0].0);
    }

    #[test]
    fn tiny_samples_fall_into_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).unwrap() <= SimDuration::from_micros(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantile estimates always lie within the observed extremes and
        /// are monotone in q.
        #[test]
        fn quantiles_bounded_and_monotone(
            samples in prop::collection::vec(1u64..10_000_000, 1..200),
        ) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(SimDuration::from_nanos(s));
            }
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            let mut prev = SimDuration::ZERO;
            for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let est = h.quantile(q).unwrap();
                prop_assert!(est.as_nanos() >= lo.min(est.as_nanos()));
                prop_assert!(est >= SimDuration::from_nanos(lo).min(est));
                prop_assert!(est <= SimDuration::from_nanos(hi));
                prop_assert!(est >= prev, "quantiles must be monotone in q");
                prev = est;
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
        }

        /// `fraction_below` is monotone in the limit and hits 0/1 at the
        /// extremes (within one bucket of resolution).
        #[test]
        fn fraction_below_is_monotone(
            samples in prop::collection::vec(1_000u64..1_000_000, 1..100),
        ) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(SimDuration::from_nanos(s));
            }
            let mut prev = -1.0;
            for limit in [1u64, 10_000, 100_000, 500_000, 10_000_000] {
                let f = h.fraction_below(SimDuration::from_nanos(limit));
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f >= prev);
                prev = f;
            }
            prop_assert!(
                h.fraction_below(SimDuration::from_secs(10)) == 1.0,
                "everything is below a huge limit"
            );
        }

        /// Merging histograms is equivalent to recording the union.
        #[test]
        fn merge_equals_union(
            a in prop::collection::vec(1u64..1_000_000, 1..50),
            b in prop::collection::vec(1u64..1_000_000, 1..50),
        ) {
            let mut ha = LatencyHistogram::new();
            let mut hb = LatencyHistogram::new();
            let mut hu = LatencyHistogram::new();
            for &s in &a {
                ha.record(SimDuration::from_nanos(s));
                hu.record(SimDuration::from_nanos(s));
            }
            for &s in &b {
                hb.record(SimDuration::from_nanos(s));
                hu.record(SimDuration::from_nanos(s));
            }
            ha.merge(&hb);
            prop_assert_eq!(ha.count(), hu.count());
            for q in [0.25, 0.5, 0.9] {
                prop_assert_eq!(ha.quantile(q), hu.quantile(q));
            }
        }
    }
}
