//! A slow-reading client must cost the gateway a bounded buffer, not a
//! stalled event loop.
//!
//! The scenario: one client pipelines a large burst of requests and
//! never reads a byte of its replies. Its socket send path fills, the
//! gateway's per-connection output buffer hits the configured cap, and
//! the gateway drops the connection — while a healthy connection on the
//! same event loop keeps getting prompt replies and the control tick
//! keeps closing windows. This is the live-plane version of TopFull's
//! isolation premise: one misbehaving consumer must not become
//! head-of-line blocking for the rest of the front door.

use cluster::{ApiSpec, CallNode, NoControl, ServiceSpec, Topology};
use liveserve::{LiveConfig, LiveServer};
use simnet::SimDuration;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Pipelined requests the slow client sends without ever reading.
/// Minimal replies (`OK 1 0\n`, 8 bytes) total ~6 MB — far beyond the
/// clamped socket buffering below, so the per-connection cap must trip.
const SLOW_BURST: usize = 800_000;
/// Deliberately tiny output cap so the overflow path is exercised fast.
const OUT_CAP: usize = 4096;

/// Clamp the socket's kernel receive buffer. Without this, loopback TCP
/// autotunes its window into the tens of megabytes and swallows the
/// whole reply stream before the gateway's userspace cap can matter.
/// Setting `SO_RCVBUF` explicitly also switches autotuning off. Same
/// std-only FFI style as the crate's poller.
fn shrink_rcvbuf(stream: &TcpStream) {
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    let val: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            std::ptr::from_ref(&val).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(
        rc,
        0,
        "setsockopt(SO_RCVBUF): {}",
        std::io::Error::last_os_error()
    );
}

fn topo() -> Topology {
    let mut t = Topology::default();
    // Small queue: most of the burst answers ERR immediately, which is
    // exactly what piles output onto the non-reading connection.
    let s = t.add_service(ServiceSpec::new("svc", 4).queue_capacity(64));
    t.add_api(ApiSpec::single(
        "ping",
        CallNode::leaf(s, SimDuration::from_micros(10)),
    ));
    t
}

#[test]
fn slow_reader_is_bounded_and_dropped_while_others_proceed() {
    let cfg = LiveConfig {
        event_loops: 1, // one loop: the victim and the healthy conn share it
        max_conn_output: OUT_CAP,
        ..LiveConfig::default()
    };
    let mut server = LiveServer::start(&topo(), cfg).expect("start");
    let addr = server.addr();

    // The misbehaving client: a big pipelined burst, no reads.
    let slow = TcpStream::connect(addr).expect("connect slow");
    shrink_rcvbuf(&slow);
    slow.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    slow.set_write_timeout(Some(Duration::from_secs(10)))
        .expect("write timeout");
    let mut slow_writer = slow.try_clone().expect("clone slow");
    let writer = std::thread::spawn(move || {
        let mut sent = 0usize;
        for id in 0..SLOW_BURST {
            // An error here is the expected endgame: the gateway dropped
            // us once our replies overflowed the cap.
            if slow_writer
                .write_all(format!("REQ {id} 0\n").as_bytes())
                .is_err()
            {
                break;
            }
            sent += 1;
        }
        sent
    });

    // Meanwhile, on the same event loop: a healthy connection gets
    // prompt replies and the control tick keeps closing windows.
    let healthy = TcpStream::connect(addr).expect("connect healthy");
    healthy
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut healthy_writer = healthy.try_clone().expect("clone healthy");
    let mut healthy_reader = BufReader::new(healthy);
    for round in 0..10 {
        let started = Instant::now();
        healthy_writer
            .write_all(format!("REQ {} 0\n", 1_000_000 + round).as_bytes())
            .expect("healthy send");
        let mut line = String::new();
        healthy_reader.read_line(&mut line).expect("healthy reply");
        let verdict = line.split_whitespace().next().unwrap_or("");
        assert!(
            matches!(verdict, "OK" | "REJ" | "ERR"),
            "healthy conn got {line:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "healthy roundtrip stalled behind the slow reader"
        );
        let tick_started = Instant::now();
        let _ = server.tick(&mut NoControl);
        assert!(
            tick_started.elapsed() < Duration::from_secs(2),
            "control tick stalled behind the slow reader"
        );
    }

    let sent = writer.join().expect("writer thread");
    assert!(sent > 0, "slow client sent something");

    // Now read the slow connection out: it must end (EOF or reset) well
    // short of the full reply stream — the gateway held at most the cap,
    // not one reply per request.
    let mut delivered = 0usize;
    let mut buf = [0u8; 64 * 1024];
    let mut slow_reader = slow;
    let deadline = Instant::now() + Duration::from_secs(30);
    let dropped = loop {
        assert!(Instant::now() < deadline, "slow conn never closed");
        match slow_reader.read(&mut buf) {
            Ok(0) => break true,
            Ok(n) => delivered += n,
            Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) => {
                break true
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => panic!("unexpected slow-read error: {e}"),
        }
    };
    assert!(dropped, "slow connection must be disconnected");
    // Minimal reply is 8 bytes; had the gateway buffered and delivered
    // one reply per request, we would have read ~8 bytes per sent
    // request. The clamped socket plus OUT_CAP sit far below that:
    // per-connection buffering stayed bounded and the rest was dropped
    // with the connection.
    assert!(
        delivered < SLOW_BURST * 8,
        "delivered {delivered} bytes for {sent} requests — output was not bounded"
    );

    server.shutdown();
}
