//! Live-mode closed-loop control test: a real TCP surge against a real
//! CPU-burning worker, with the unmodified TopFull controller (MIMD
//! step policy) cutting the entry rate limit and then restoring it once
//! the surge passes.
//!
//! Runs on an ephemeral port in a few seconds of wall clock — small
//! enough for tier-1, real enough to exercise sockets, threads, the
//! shared admission bank and the wall-clock metric windows end to end.

use cluster::{ApiSpec, CallNode, ServiceSpec, Topology};
use liveserve::{LiveConfig, LiveServer, LoadGen, OpenLoopArm};
use simnet::SimDuration;
use std::time::{Duration, Instant};
use topfull::{TopFull, TopFullConfig};

#[test]
fn controller_cuts_then_restores_rate_limit_under_surge() {
    // One service, one replica, 500µs per request → capacity ≈ 2k rps.
    let mut topo = Topology::default();
    let s = topo.add_service(ServiceSpec::new("api", 1).queue_capacity(512));
    topo.add_api(ApiSpec::single(
        "hit",
        CallNode::leaf(s, SimDuration::from_micros(500)),
    ));

    let cfg = LiveConfig {
        slo: Duration::from_millis(50),
        control_interval: Duration::from_millis(100),
        ..LiveConfig::default()
    };
    let mut server = LiveServer::start(&topo, cfg).expect("start live server");
    let mut ctrl = TopFull::new(TopFullConfig::default().with_mimd());

    // Open-loop surge at ~2.5× capacity for 1.2s, then silence.
    let gen = LoadGen::start(
        server.addr(),
        None,
        vec![OpenLoopArm {
            api: 0,
            rate_steps: vec![(0.0, 5000.0), (1.2, 0.0)],
            key_space: 0,
        }],
    )
    .expect("start load");

    // Phase A — overload: the controller must impose a finite limit.
    let started = Instant::now();
    let mut cut = None;
    while started.elapsed() < Duration::from_millis(1200) {
        std::thread::sleep(Duration::from_millis(100));
        server.tick(&mut ctrl);
        let limit = server.rate_limit(0);
        if limit.is_finite() {
            cut = Some(cut.map_or(limit, |c: f64| c.min(limit)));
        }
    }
    let cut = cut.expect("controller never cut the rate limit under a 2.5x surge");
    assert!(cut >= 1.0, "cut respects the min-rate floor, got {cut}");

    // Phase B — quiet: recovery must raise the limit well past the cut
    // or release it entirely, within 2s of the surge ending.
    let quiet = Instant::now();
    let mut restored = false;
    let mut last = cut;
    while quiet.elapsed() < Duration::from_millis(2000) {
        std::thread::sleep(Duration::from_millis(100));
        server.tick(&mut ctrl);
        last = server.rate_limit(0);
        if last.is_infinite() || last > cut * 1.5 {
            restored = true;
            break;
        }
    }
    assert!(
        restored,
        "rate limit never recovered after the surge: cut={cut}, last={last}"
    );

    gen.stop();
    server.shutdown();
}
