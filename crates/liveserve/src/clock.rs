//! Wall-clock → [`SimTime`] mapping.
//!
//! The shared admission bank ([`cluster::EntryAdmission`]) and every
//! other reused component speak [`SimTime`]. The live plane feeds them
//! wall-clock nanoseconds since server start, so token-bucket refill
//! arithmetic is *identical* between the simulator (virtual nanoseconds)
//! and the live gateway (real nanoseconds) — the Sim2Real admission
//! parity rests on this one conversion.

use simnet::SimTime;
use std::time::Instant;

/// A monotonic clock anchored at server start.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Anchor a new clock at the current instant.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the anchor, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    /// The anchor instant (for latency math in native [`Instant`] terms).
    pub fn origin(&self) -> Instant {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_starts_near_zero() {
        let c = WallClock::start();
        let a = c.now();
        assert!(a.as_secs_f64() < 1.0, "fresh clock reads near zero");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "wall clock advances");
    }
}
