//! Minimal std-only HTTP exposition endpoint.
//!
//! One acceptor thread (same non-blocking poll style as the gateway's)
//! serves two read-only routes over HTTP/1.1, one request per
//! connection:
//!
//! * `GET /metrics` — Prometheus text exposition format 0.0.4 rendered
//!   from the server's [`obs::Registry`];
//! * `GET /spans` — the live [`TraceCollector`] raw span buffer as
//!   JSONL (`application/x-ndjson`).
//!
//! Anything else answers 404. Requests are parsed from the request line
//! only; headers are drained and ignored. This is an operator/debug
//! surface, not a general web server — no keep-alive, no TLS, loopback
//! binding only.
//!
//! [`TraceCollector`]: cluster::tracing::TraceCollector

use crate::metrics::LiveMetrics;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// State the exposition endpoint reads from.
pub struct MetricsHttp {
    pub registry: Arc<obs::Registry>,
    pub metrics: Arc<LiveMetrics>,
    pub shutdown: Arc<AtomicBool>,
}

/// Spawn the exposition acceptor for a bound listener.
pub fn start_metrics_server(listener: TcpListener, shared: Arc<MetricsHttp>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("live-metrics-http".into())
        .spawn(move || serve_loop(&listener, &shared))
        .expect("spawn metrics http")
}

fn serve_loop(listener: &TcpListener, shared: &MetricsHttp) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking metrics listener");
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            // Scrapes are rare and tiny; serve inline on the acceptor.
            Ok((stream, _)) => handle_conn(stream, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &MetricsHttp) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so the peer is not mid-write when we close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let (status, content_type, body) = route(&request_line, shared);
    respond(stream, status, content_type, &body);
}

/// Map a request line to `(status, content-type, body)`.
fn route(request_line: &str, shared: &MetricsHttp) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.registry.render_prometheus(),
        ),
        "/spans" => (
            "200 OK",
            "application/x-ndjson; charset=utf-8",
            shared.metrics.spans_jsonl(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    }
}

fn respond(mut stream: TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> MetricsHttp {
        let registry = Arc::new(obs::Registry::new());
        registry.counter("t_total", &[]).add(3);
        MetricsHttp {
            registry,
            metrics: Arc::new(LiveMetrics::new(1, 1)),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn routes_metrics_spans_and_404() {
        let s = shared();
        let (status, ctype, body) = route("GET /metrics HTTP/1.1\r\n", &s);
        assert_eq!(status, "200 OK");
        assert!(ctype.starts_with("text/plain; version=0.0.4"));
        assert!(body.contains("t_total 3"), "{body}");
        let (status, _, _) = route("GET /spans HTTP/1.1\r\n", &s);
        assert_eq!(status, "200 OK");
        let (status, _, _) = route("GET /nope HTTP/1.1\r\n", &s);
        assert_eq!(status, "404 Not Found");
        let (status, _, _) = route("POST /metrics HTTP/1.1\r\n", &s);
        assert_eq!(status, "405 Method Not Allowed");
    }
}
