//! Minimal std-only HTTP exposition routes.
//!
//! Read-only routes, one request per connection, served by the
//! gateway's event loop 0 (the exposition listener is just another
//! registration on that loop's poller — see [`crate::gateway`]):
//!
//! * `GET /metrics` — Prometheus text exposition format 0.0.4 rendered
//!   from the server's [`obs::Registry`] (latency buckets carry
//!   OpenMetrics exemplars linking to trace ids);
//! * `GET /spans` — the live [`TraceCollector`] raw span buffer as
//!   JSONL (`application/x-ndjson`);
//! * `GET /trace` — the causal [`obs::TraceLog`] event buffer as JSONL;
//! * `GET /trace/<id>` — only the events of one trace id.
//!
//! Anything else answers 404. Requests are parsed from the request line
//! only; headers are buffered until the blank line and ignored. This is
//! an operator/debug surface, not a general web server — no keep-alive,
//! no TLS, loopback binding only.
//!
//! [`TraceCollector`]: cluster::tracing::TraceCollector

use crate::metrics::LiveMetrics;
use std::sync::Arc;

/// State the exposition routes read from.
pub struct MetricsHttp {
    pub registry: Arc<obs::Registry>,
    pub metrics: Arc<LiveMetrics>,
}

/// Map a request line to `(status, content-type, body)`.
pub fn route(request_line: &str, shared: &MetricsHttp) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.registry.render_prometheus(),
        ),
        "/spans" => (
            "200 OK",
            "application/x-ndjson; charset=utf-8",
            shared.metrics.spans_jsonl(),
        ),
        "/trace" => (
            "200 OK",
            "application/x-ndjson; charset=utf-8",
            shared.metrics.traces_jsonl(None),
        ),
        _ => {
            // `/trace/<id>`: one trace's events as JSONL.
            if let Some(id) = path
                .strip_prefix("/trace/")
                .and_then(|id| id.parse::<u64>().ok())
            {
                return (
                    "200 OK",
                    "application/x-ndjson; charset=utf-8",
                    shared.metrics.traces_jsonl(Some(id)),
                );
            }
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".into(),
            )
        }
    }
}

/// Serialize a full `HTTP/1.1` response (head + body) for the event
/// loop to queue on the connection's output buffer.
pub fn response_bytes(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> MetricsHttp {
        let registry = Arc::new(obs::Registry::new());
        registry.counter("t_total", &[]).add(3);
        MetricsHttp {
            registry,
            metrics: Arc::new(LiveMetrics::new(1, 1)),
        }
    }

    #[test]
    fn routes_metrics_spans_and_404() {
        let s = shared();
        let (status, ctype, body) = route("GET /metrics HTTP/1.1\r\n", &s);
        assert_eq!(status, "200 OK");
        assert!(ctype.starts_with("text/plain; version=0.0.4"));
        assert!(body.contains("t_total 3"), "{body}");
        let (status, _, _) = route("GET /spans HTTP/1.1\r\n", &s);
        assert_eq!(status, "200 OK");
        let (status, _, _) = route("GET /nope HTTP/1.1\r\n", &s);
        assert_eq!(status, "404 Not Found");
        let (status, _, _) = route("POST /metrics HTTP/1.1\r\n", &s);
        assert_eq!(status, "405 Method Not Allowed");
    }

    #[test]
    fn trace_routes_filter_by_id() {
        let s = shared();
        for trace in [7u64, 9] {
            s.metrics.record_trace(obs::TraceEvent {
                trace,
                request: trace * 10,
                api: 0,
                shard: 0,
                stage: "front_door".into(),
                outcome: "admitted".into(),
                at: 1.0,
                dur: 0.0,
            });
        }
        let (status, ctype, body) = route("GET /trace HTTP/1.1\r\n", &s);
        assert_eq!(status, "200 OK");
        assert!(ctype.starts_with("application/x-ndjson"));
        assert_eq!(body.lines().count(), 2, "{body}");
        let (status, _, body) = route("GET /trace/7 HTTP/1.1\r\n", &s);
        assert_eq!(status, "200 OK");
        assert_eq!(body.lines().count(), 1, "{body}");
        assert!(body.contains("\"trace\":7"), "{body}");
        let (status, _, _) = route("GET /trace/oops HTTP/1.1\r\n", &s);
        assert_eq!(status, "404 Not Found");
    }

    #[test]
    fn response_bytes_carry_length_and_body() {
        let bytes = response_bytes("200 OK", "text/plain; charset=utf-8", "hello\n");
        let text = String::from_utf8(bytes).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 6\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello\n"), "{text}");
    }
}
