//! The loopback TCP gateway: real sockets in front of the shared
//! admission bank.
//!
//! ## Wire protocol (line-based, one session per connection)
//!
//! ```text
//! client → REQ <id> <api_idx>\n
//! server → OK <id> <latency_us>\n     request completed end-to-end
//!          REJ <id>\n                 shed at the entry token bucket
//!          ERR <id>\n                 dropped at a full service queue
//!                                     (or the line was malformed; id 0)
//! ```
//!
//! Responses are **not** ordered with respect to requests: a client may
//! pipeline many `REQ` lines and match replies by id.
//!
//! ## Threads
//!
//! One acceptor polls a non-blocking listener. Each connection gets a
//! reader thread (parses `REQ` lines, consults the [`EntryAdmission`]
//! bank under a mutex, hands admitted jobs to the worker pool) and a
//! writer thread (drains an `mpsc` channel of response lines, batching
//! writes so 10k+ responses/sec do not mean 10k+ syscalls). Connection
//! threads exit when the peer closes or the shutdown flag rises; they
//! are deliberately not joined — the sockets they own are loopback and
//! die with the process.

use crate::clock::WallClock;
use crate::executors::{Job, Routing};
use crate::metrics::LiveMetrics;
use cluster::EntryAdmission;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared state every connection thread needs. The shutdown flag is the
/// same `Arc` the worker pool polls, so one store stops the world.
pub struct GatewayShared {
    pub admission: Mutex<EntryAdmission>,
    pub clock: WallClock,
    pub metrics: Arc<LiveMetrics>,
    pub routing: Arc<Routing>,
    pub shutdown: Arc<AtomicBool>,
}

/// The accept loop. Owns the listener; spawns reader/writer threads per
/// connection.
pub fn acceptor(listener: TcpListener, shared: Arc<GatewayShared>) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection(stream, &shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn spawn_connection(stream: TcpStream, shared: &Arc<GatewayShared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::<String>();
    {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("live-conn-writer".into())
            .spawn(move || writer_loop(stream, &reply_rx, &shared))
            .expect("spawn writer");
    }
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("live-conn-reader".into())
        .spawn(move || reader_loop(read_half, &reply_tx, &shared))
        .expect("spawn reader");
}

/// Batch response lines: wake at most every 5ms, drain whatever is
/// queued, write it in one buffered flush.
fn writer_loop(stream: TcpStream, replies: &Receiver<String>, shared: &GatewayShared) {
    let mut out = BufWriter::new(stream);
    loop {
        let first = match replies.recv_timeout(Duration::from_millis(5)) {
            Ok(line) => Some(line),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if let Some(line) = first {
            if out.write_all(line.as_bytes()).is_err() {
                return;
            }
            while let Ok(line) = replies.try_recv() {
                if out.write_all(line.as_bytes()).is_err() {
                    return;
                }
            }
            if out.flush().is_err() {
                return;
            }
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

fn reader_loop(stream: TcpStream, replies: &Sender<String>, shared: &GatewayShared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => handle_line(line.trim_end(), replies, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Parse one request line and run it through admission.
fn handle_line(line: &str, replies: &Sender<String>, shared: &GatewayShared) {
    if line.is_empty() {
        return;
    }
    let Some((id, api)) = parse_request(line) else {
        let _ = replies.send("ERR 0\n".into());
        return;
    };
    let num_apis = shared.metrics_num_apis();
    if api >= num_apis {
        let _ = replies.send(format!("ERR {id}\n"));
        return;
    }
    shared.metrics.on_offered(api);
    let admitted = shared
        .admission
        .lock()
        .expect("admission lock")
        .try_admit(cluster::ApiId(api as u32), shared.clock.now());
    if !admitted {
        shared.metrics.on_rejected(api);
        // Zero-duration rejection marker at the API's entry service —
        // the same span the simulator's gateway records, so the sim2real
        // overlay can compare admission decisions span-for-span.
        if let Some(entry) = shared.routing.stages[api].first() {
            let t = shared.clock.now();
            shared.metrics.record_span(cluster::tracing::Span {
                request: id,
                api: cluster::ApiId(api as u32),
                service: cluster::ServiceId(entry.service as u32),
                parent: None,
                start: t,
                end: t,
                verdict: cluster::tracing::SpanVerdict::RejectedAtEntry,
            });
        }
        let _ = replies.send(format!("REJ {id}\n"));
        return;
    }
    shared.metrics.on_admitted(api);
    let now = Instant::now();
    shared.routing.submit(
        Job {
            id,
            api,
            accepted: now,
            enqueued: now,
            stage: 0,
            reply: replies.clone(),
        },
        &shared.metrics,
    );
}

impl GatewayShared {
    fn metrics_num_apis(&self) -> usize {
        self.routing.stages.len()
    }
}

/// Parse `REQ <id> <api_idx>` → `(id, api)`.
pub fn parse_request(line: &str) -> Option<(u64, usize)> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "REQ" {
        return None;
    }
    let id = parts.next()?.parse().ok()?;
    let api = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((id, api))
}

/// Spawn the acceptor thread for a bound listener.
pub fn start_acceptor(listener: TcpListener, shared: Arc<GatewayShared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("live-acceptor".into())
        .spawn(move || acceptor(listener, shared))
        .expect("spawn acceptor")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_strictly() {
        assert_eq!(parse_request("REQ 7 2"), Some((7, 2)));
        assert_eq!(parse_request("REQ 0 0"), Some((0, 0)));
        assert_eq!(parse_request("REQ  12   1"), Some((12, 1)));
        assert_eq!(parse_request("GET 7 2"), None);
        assert_eq!(parse_request("REQ 7"), None);
        assert_eq!(parse_request("REQ 7 2 9"), None);
        assert_eq!(parse_request("REQ x 2"), None);
        assert_eq!(parse_request(""), None);
    }
}
